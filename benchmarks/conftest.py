"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure through
:mod:`repro.experiments` and asserts the paper's *shape* (who wins, rough
factors, where knees fall) on the returned data.  Absolute times are
reported by pytest-benchmark for the host machine; the virtual Blue Gene
times live inside the experiment results.
"""

from __future__ import annotations

import pytest

from repro.experiments import Scale


@pytest.fixture(scope="session")
def smoke() -> Scale:
    return Scale.SMOKE


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under the benchmark timer and return it."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
