"""Bench: regenerate paper Table III (all 16 memory-one strategies)."""

from repro.experiments import Scale, get


def test_table3(benchmark):
    result = benchmark(lambda: get("table3").run(Scale.SMOKE))
    assert result.data["count"] == 16
    assert result.data["distinct"] == 16
    print("\n" + result.rendered)
