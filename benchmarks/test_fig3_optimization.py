"""Bench: paper Figure 3 — optimisation levels vs runtime.

Shape assertions: runtimes drop monotonically through the optimisation
sequence; the communication step is small relative to the compiler step
(paper: "This change only reduces the average communication time by a
small factor"); the compiler step roughly halves the runtime.
"""

from conftest import run_once

from repro.experiments import Scale, get


def test_fig3_optimization(benchmark):
    result = run_once(benchmark, lambda: get("fig3").run(Scale.SMOKE))
    t = result.data["times"]
    assert t["original"] >= t["nonblocking"] > t["compiler"] > t["intrinsics"]
    # The comm-only step saves less than 15%; the compiler step is large.
    assert (t["original"] - t["nonblocking"]) / t["original"] < 0.15
    assert t["nonblocking"] / t["compiler"] > 1.5
    # Non-blocking communication reduces the average comm time.
    c = result.data["comms"]
    assert c["nonblocking"] < c["original"]
    print("\n" + result.rendered)
