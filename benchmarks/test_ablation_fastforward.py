"""Ablation: event-driven fast-forward vs the faithful per-generation loop.

Both walk the identical Markov chain (pinned by the test suite); the
event-driven driver skips the ~85% of generations with no PC/mutation event
and batches the RNG, which is what makes the paper's 10^7-generation
validation run feasible.
"""

from repro.core import EvolutionConfig, run_event_driven, run_serial

CFG = EvolutionConfig(n_ssets=64, generations=20_000, rounds=200, seed=9)


def test_faithful_loop(benchmark):
    result = benchmark.pedantic(lambda: run_serial(CFG), rounds=1, iterations=1)
    assert result.generations_run == CFG.generations


def test_event_driven_fastforward(benchmark):
    result = benchmark(lambda: run_event_driven(CFG))
    assert result.generations_run == CFG.generations


def test_payoff_cache_effectiveness():
    # Ablation of the *legacy* payoff cache, so pin engine=False: nearly
    # all pair evaluations are cache hits after warm-up.
    result = run_event_driven(CFG.with_updates(engine=False))
    assert result.cache_hits > 20 * result.cache_misses


def test_engine_evaluation_volume():
    # The dense engine's analogue: pair evaluations (misses) are batched
    # row fills, bounded by interns x live strategies — far below the
    # event count x population volume a cacheless evaluator would replay.
    result = run_event_driven(CFG)
    naive_games = 2 * result.n_pc_events * CFG.n_ssets
    assert result.cache_misses < naive_games
