"""Bench: paper Figure 6b — strong scaling to 262,144 processors.

Shape assertions: ~99 % linear scaling through 16,384 processors, 82 %
efficiency at 262,144 where split SSets leave half an SSet per processor.
"""

import pytest
from conftest import run_once

from repro.experiments import Scale, get


def test_fig6b_strong_scaling(benchmark):
    result = run_once(benchmark, lambda: get("fig6b").run(Scale.SMOKE))
    procs = result.data["processors"]
    effs = dict(zip(procs, result.data["efficiencies"]))
    assert effs[16384] > 97.0  # paper: "99% linear scaling"
    assert effs[262144] == pytest.approx(82.0, abs=4)  # paper: 82%
    # Speedup is monotone.
    speedups = result.data["speedups"]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    print("\n" + result.rendered)
