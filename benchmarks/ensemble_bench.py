#!/usr/bin/env python
"""Lane-batched ensemble throughput harness: the ensemble backend's scorecard.

Writes ``BENCH_ensemble.json`` with one record per scenario.  Each scenario
runs the same seeded replicate ensemble twice —
``run_sweep(workers=1, backend="event")`` (the legacy one-run-at-a-time
path) and ``run_sweep(backend="ensemble")`` (all replicates as one array
program) — checks the science fingerprints match (every lane is
bit-identical to its serial run, pinned by the test suite), and records
both aggregate throughputs plus the speedup ratio.

The acceptance scenario is ``wm-m2-n16``: a 64-replicate well-mixed
memory-2 ensemble, where lane batching clears the >= 3x bar.  The wider
rows map how the advantage scales with population size and memory depth —
the shared pool/matrix wins biggest when the per-event work is small
relative to the interpreter dispatch it replaces.

CI runs ``--smoke`` (one scenario, few replicates, short horizon) so the
harness cannot rot; developers run it bare before/after ensemble work and
commit the JSON.

Usage::

    python benchmarks/ensemble_bench.py                 # full scenario grid
    python benchmarks/ensemble_bench.py --smoke         # 1 scenario (CI)
    python benchmarks/ensemble_bench.py --out my.json --generations 20000
"""

from __future__ import annotations

import argparse
import sys
import time

from common import (  # bootstraps sys.path
    REPO_ROOT,
    build_payload,
    checkpoint_provenance,
    write_payload,
)

from repro import EvolutionConfig, run_sweep  # noqa: E402
from repro.xp import KNOWN_BACKENDS, get_array_backend  # noqa: E402

#: (label, structure, memory_steps, n_ssets, paymat_block) — wm-m2-n16 is
#: the acceptance scenario; the rest map the scaling surface.  The ``-b16``
#: rows rerun a scenario with the shared engine's pair matrix in on-demand
#: 16x16 blocks (distinct labels, so ``bench_gate.py`` tracks blocked and
#: dense rows as separate series); their ``shared_engine`` stats carry the
#: resident/peak paymat bytes the blocked store is bounded by.
SCENARIOS = (
    ("wm-m2-n16", "well-mixed", 2, 16, 0),
    ("wm-m2-n16-b16", "well-mixed", 2, 16, 16),
    ("wm-m2-n32", "well-mixed", 2, 32, 0),
    ("wm-m2-n64", "well-mixed", 2, 64, 0),
    ("wm-m1-n64", "well-mixed", 1, 64, 0),
    ("ring-m2-n16", "ring:k=4", 2, 16, 0),
    ("ring-m2-n16-b16", "ring:k=4", 2, 16, 16),
)
DEFAULT_REPLICATES = 64
DEFAULT_GENERATIONS = 10_000
SMOKE_REPLICATES = 8
SMOKE_GENERATIONS = 2_000


def fingerprint(result) -> tuple:
    _, share = result.dominant()
    return (
        result.n_pc_events,
        result.n_adoptions,
        result.n_mutations,
        round(share, 6),
    )


def bench_scenario(
    label: str,
    structure: str,
    memory_steps: int,
    n_ssets: int,
    replicates: int,
    generations: int,
    paymat_block: int = 0,
    array_backend: str = "numpy",
) -> dict:
    """Time one seeded replicate ensemble on both paths.

    ``paymat_block``/``array_backend`` ride in on the configs, so *both*
    paths run under them — the serial event reference is the parity oracle
    for exactly the mode being measured, and the scenario label stays
    unchanged so ``bench_gate.py`` lines blocked rows up against dense
    baselines.
    """
    configs = [
        EvolutionConfig(
            memory_steps=memory_steps,
            n_ssets=n_ssets,
            generations=generations,
            structure=structure,
            seed=2013 + i,
            record_events=False,
            paymat_block=paymat_block,
            array_backend=array_backend,
        )
        for i in range(replicates)
    ]
    record: dict = {
        "scenario": label,
        "structure": structure,
        "memory_steps": memory_steps,
        "n_ssets": n_ssets,
        "replicates": replicates,
        "generations": generations,
        "paymat_block": paymat_block,
    }
    total_generations = replicates * generations

    # Warm both paths (allocator, import, kernel caches) so neither side
    # pays first-run costs inside the timed region; then time each path
    # twice and keep the faster pass (standard noise mitigation — shared
    # or thermally-throttled hosts can halve a single pass's speed).
    warm = [c.with_updates(generations=min(1000, generations or 1))
            for c in configs[: min(4, replicates)]]
    run_sweep(warm, backend="ensemble")
    run_sweep(warm, backend="event", workers=1)

    ensemble_seconds = float("inf")
    event_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        ensemble = run_sweep(configs, backend="ensemble")
        ensemble_seconds = min(
            ensemble_seconds, time.perf_counter() - started
        )
        started = time.perf_counter()
        event = run_sweep(configs, backend="event", workers=1)
        event_seconds = min(event_seconds, time.perf_counter() - started)

    for a, b in zip(ensemble, event):
        if fingerprint(a) != fingerprint(b):
            raise AssertionError(
                f"{label}: ensemble lane diverged from the serial event run "
                f"({fingerprint(a)} vs {fingerprint(b)}, seed {a.config.seed})"
            )

    record["event_seconds"] = round(event_seconds, 4)
    record["event_generations_per_sec"] = round(
        total_generations / event_seconds, 1
    )
    record["ensemble_seconds"] = round(ensemble_seconds, 4)
    record["ensemble_generations_per_sec"] = round(
        total_generations / ensemble_seconds, 1
    )
    record["speedup"] = round(event_seconds / ensemble_seconds, 2)
    report = ensemble[0].backend_report
    if report is not None and report.shared_engine is not None:
        record["shared_engine"] = dict(report.shared_engine)
    if report is not None and report.array_backend is not None:
        record["array_backend"] = report.array_backend
    return record


def bench_checkpoint_cadence(
    replicates: int, generations: int, array_backend: str = "numpy"
) -> dict:
    """Time the acceptance ensemble with mid-run checkpointing on vs off.

    Measures what ``checkpoint_every`` costs on the lane-batched fast
    path: the same seeded replicates run once without a sink and once
    snapshotting 4 times over the horizon into a throwaway directory
    (fresh per pass, so no pass resumes another's snapshots).  The
    trajectories must stay bit-identical — checkpointing is provenance,
    not science.
    """
    import shutil
    import tempfile

    from repro.core.runstate import checkpoint_scope
    from repro.io.run_checkpoint import RunCheckpointer

    cadence = max(1, generations // 4)
    configs = [
        EvolutionConfig(
            memory_steps=2,
            n_ssets=16,
            generations=generations,
            seed=2013 + i,
            record_events=False,
            array_backend=array_backend,
        )
        for i in range(replicates)
    ]
    ckpt_configs = [
        c.with_updates(checkpoint_every=cadence) for c in configs
    ]
    total_generations = replicates * generations

    warm = [c.with_updates(generations=min(1000, generations or 1))
            for c in configs[: min(4, replicates)]]
    run_sweep(warm, backend="ensemble")

    off_seconds = float("inf")
    on_seconds = float("inf")
    baseline = checkpointed = None
    for _ in range(2):
        started = time.perf_counter()
        baseline = run_sweep(configs, backend="ensemble")
        off_seconds = min(off_seconds, time.perf_counter() - started)
        root = tempfile.mkdtemp(prefix="bench-ckpt-")
        try:
            with checkpoint_scope(RunCheckpointer(root)):
                started = time.perf_counter()
                checkpointed = run_sweep(ckpt_configs, backend="ensemble")
                on_seconds = min(
                    on_seconds, time.perf_counter() - started
                )
        finally:
            shutil.rmtree(root, ignore_errors=True)

    for a, b in zip(baseline, checkpointed):
        if fingerprint(a) != fingerprint(b):
            raise AssertionError(
                f"checkpoint cadence changed the science "
                f"({fingerprint(a)} vs {fingerprint(b)}, seed "
                f"{a.config.seed})"
            )

    return {
        "scenario": "wm-m2-n16-ckpt",
        "structure": "well-mixed",
        "memory_steps": 2,
        "n_ssets": 16,
        "replicates": replicates,
        "generations": generations,
        "checkpoint_every": cadence,
        "off_seconds": round(off_seconds, 4),
        "off_generations_per_sec": round(
            total_generations / off_seconds, 1
        ),
        "on_seconds": round(on_seconds, 4),
        "on_generations_per_sec": round(total_generations / on_seconds, 1),
        "checkpoint_overhead": round(on_seconds / off_seconds, 3),
        "checkpoints": checkpoint_provenance(checkpointed),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one scenario at a short horizon (CI anti-rot)")
    parser.add_argument("--replicates", type=int, default=None,
                        help=f"ensemble lanes per scenario (default "
                             f"{DEFAULT_REPLICATES}; smoke "
                             f"{SMOKE_REPLICATES})")
    parser.add_argument("--generations", type=int, default=None,
                        help=f"generations per replicate (default "
                             f"{DEFAULT_GENERATIONS:,}; smoke "
                             f"{SMOKE_GENERATIONS:,})")
    parser.add_argument("--paymat-block", type=int, default=None,
                        dest="paymat_block", metavar="B",
                        help="override paymat_block on every scenario "
                             "(power of two >= 4; 0 = dense) — labels stay "
                             "unchanged so bench_gate.py lines the rows up "
                             "against a dense baseline")
    parser.add_argument("--array-backend", default="numpy",
                        dest="array_backend",
                        choices=list(KNOWN_BACKENDS),
                        help="array namespace for the shared-engine hot path "
                             "(falls back to numpy with a note if the "
                             "requested stack is unavailable)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_ensemble.json"),
                        metavar="PATH", help="output JSON path")
    args = parser.parse_args(argv)

    replicates = (
        args.replicates
        if args.replicates is not None
        else (SMOKE_REPLICATES if args.smoke else DEFAULT_REPLICATES)
    )
    generations = (
        args.generations
        if args.generations is not None
        else (SMOKE_GENERATIONS if args.smoke else DEFAULT_GENERATIONS)
    )
    scenarios = SCENARIOS[:1] if args.smoke else SCENARIOS

    results = []
    for label, structure, memory, n_ssets, block in scenarios:
        if args.paymat_block is not None:
            block = args.paymat_block
        record = bench_scenario(
            label, structure, memory, n_ssets, replicates, generations,
            paymat_block=block,
            array_backend=args.array_backend,
        )
        results.append(record)
        print(f"{label:<12} event "
              f"{record['event_generations_per_sec']:>11,.1f} gen/s   "
              f"ensemble {record['ensemble_generations_per_sec']:>11,.1f} "
              f"gen/s   x{record['speedup']}")

    ckpt = bench_checkpoint_cadence(
        replicates, generations, array_backend=args.array_backend
    )
    results.append(ckpt)
    print(f"{ckpt['scenario']:<12} off   "
          f"{ckpt['off_generations_per_sec']:>11,.1f} gen/s   "
          f"on       {ckpt['on_generations_per_sec']:>11,.1f} gen/s   "
          f"overhead x{ckpt['checkpoint_overhead']}")

    payload = build_payload(
        "ensemble",
        smoke=args.smoke,
        results=results,
        array_backend=get_array_backend(args.array_backend).describe(),
        paymat_block=args.paymat_block if args.paymat_block is not None else 0,
    )
    write_payload(args.out, payload, label="scenarios")
    return 0


if __name__ == "__main__":
    sys.exit(main())
