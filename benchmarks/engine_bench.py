#!/usr/bin/env python
"""Legacy-vs-engine throughput harness: the FitnessEngine's scorecard.

Writes ``BENCH_engine.json`` with one record per scenario, each timing the
same seeded run twice — ``engine=False`` (legacy PayoffCache path) and
``engine=True`` (interned-strategy dense payoff matrix) — plus the speedup
ratio.  Trajectories are bit-identical between the two (pinned by the test
suite), so the science fingerprints double as a cross-check here.

CI runs ``--smoke`` (one scenario, short horizon) so the harness cannot
rot; developers run it bare before/after engine work and commit the JSON.

Usage::

    python benchmarks/engine_bench.py                 # full scenario grid
    python benchmarks/engine_bench.py --smoke         # 1 scenario (CI)
    python benchmarks/engine_bench.py --out my.json --generations 50000
"""

from __future__ import annotations

import argparse
import sys
import time

from common import REPO_ROOT, build_payload, write_payload  # bootstraps sys.path

from repro import EvolutionConfig, Simulation  # noqa: E402

N_SSETS = 64

#: (label, structure, memory_steps) — the event-driven scenarios the ISSUE's
#: acceptance targets name, plus the memory-3 deep-memory cell.
SCENARIOS = (
    ("well-mixed-m1", "well-mixed", 1),
    ("well-mixed-m2", "well-mixed", 2),
    ("well-mixed-m3", "well-mixed", 3),
    ("ring-m2", "ring:k=4", 2),
    ("grid-m2", "grid:rows=8,cols=8", 2),
    ("complete-m2", "complete", 2),
)
DEFAULT_GENERATIONS = 100_000
SMOKE_GENERATIONS = 4_000


def bench_scenario(
    label: str, structure: str, memory_steps: int, generations: int
) -> dict:
    """Time one seeded run with the engine off, then on."""
    record: dict = {
        "scenario": label,
        "structure": structure,
        "memory_steps": memory_steps,
        "n_ssets": N_SSETS,
        "generations": generations,
    }
    fingerprints = {}
    for mode, engine in (("legacy", False), ("engine", True)):
        config = EvolutionConfig(
            memory_steps=memory_steps,
            n_ssets=N_SSETS,
            generations=generations,
            structure=structure,
            seed=2013,
            engine=engine,
            record_events=False,
        )
        started = time.perf_counter()
        result = Simulation(config).run()
        elapsed = time.perf_counter() - started
        _, share = result.dominant()
        record[f"{mode}_seconds"] = round(elapsed, 4)
        record[f"{mode}_generations_per_sec"] = round(generations / elapsed, 1)
        fingerprints[mode] = (
            result.n_pc_events,
            result.n_mutations,
            round(share, 6),
        )
    if fingerprints["legacy"] != fingerprints["engine"]:
        raise AssertionError(
            f"{label}: engine trajectory diverged from legacy "
            f"({fingerprints['engine']} vs {fingerprints['legacy']})"
        )
    record["pc_events"], record["mutations"], record["dominant_share"] = (
        fingerprints["engine"]
    )
    record["speedup"] = round(
        record["engine_generations_per_sec"]
        / record["legacy_generations_per_sec"],
        2,
    )
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one scenario at a short horizon (CI anti-rot)")
    parser.add_argument("--generations", type=int, default=None,
                        help=f"generations per scenario (default "
                             f"{DEFAULT_GENERATIONS:,}; smoke "
                             f"{SMOKE_GENERATIONS:,})")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_engine.json"),
                        metavar="PATH", help="output JSON path")
    args = parser.parse_args(argv)

    generations = (
        args.generations
        if args.generations is not None
        else (SMOKE_GENERATIONS if args.smoke else DEFAULT_GENERATIONS)
    )
    scenarios = SCENARIOS[:1] if args.smoke else SCENARIOS

    results = []
    for label, structure, memory in scenarios:
        record = bench_scenario(label, structure, memory, generations)
        results.append(record)
        print(f"{label:<15} legacy "
              f"{record['legacy_generations_per_sec']:>11,.1f} gen/s   "
              f"engine {record['engine_generations_per_sec']:>11,.1f} gen/s   "
              f"x{record['speedup']}")

    payload = build_payload(
        "engine", smoke=args.smoke, results=results, backend="event"
    )
    write_payload(args.out, payload, label="scenarios")
    return 0


if __name__ == "__main__":
    sys.exit(main())
