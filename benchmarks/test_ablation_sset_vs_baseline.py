"""Ablation: the SSet framework vs the traditional serial baseline.

The paper's central abstraction groups agents into Strategy Sets; combined
with our payoff cache + event-driven fast-forward this collapses the cost
of the same trajectory by orders of magnitude relative to the
one-agent-per-strategy serial algorithm the paper describes as the state
of the art (Section IV.A).
"""

import numpy as np

from repro.core import EvolutionConfig, run_baseline, run_event_driven

CFG = EvolutionConfig(n_ssets=16, generations=400, rounds=100, seed=42)


def test_baseline_traditional(benchmark):
    result = benchmark.pedantic(
        lambda: run_baseline(CFG), rounds=1, iterations=1
    )
    assert result.generations_run == CFG.generations


def test_sset_framework(benchmark):
    result = benchmark(lambda: run_event_driven(CFG))
    assert result.generations_run == CFG.generations


def test_same_science_either_way():
    fast = run_event_driven(CFG)
    slow = run_baseline(CFG)
    assert fast.events == slow.events
    assert np.array_equal(
        fast.population.strategy_matrix(), slow.population.strategy_matrix()
    )
