"""Ablation: the hybrid MPI+threads model (paper Section VI.C).

The paper found 32 ranks/node x 2 threads on BG/Q reduced runtime ~2 %
(threads land on SMT siblings), while threads on dedicated cores scale the
per-SSet game loop nearly linearly.
"""

import pytest

from repro.core import EvolutionConfig
from repro.framework import ParallelConfig, run_parallel_simulation
from repro.machine import BLUEGENE_Q

EVO = EvolutionConfig(n_ssets=32, generations=60, rounds=100, seed=12)


def _run(threads: int, ranks_per_node: int):
    return run_parallel_simulation(
        EVO,
        ParallelConfig(
            machine=BLUEGENE_Q,
            n_ranks=5,
            threads_per_rank=threads,
            ranks_per_node=ranks_per_node,
            executable=False,
        ),
    )


def test_flat_mpi(benchmark):
    result = benchmark(lambda: _run(threads=1, ranks_per_node=32))
    assert result.makespan > 0


def test_hybrid_smt_threads(benchmark):
    result = benchmark(lambda: _run(threads=2, ranks_per_node=32))
    assert result.makespan > 0


def test_paper_smt_gain_is_small():
    flat = _run(threads=1, ranks_per_node=32).makespan
    smt = _run(threads=2, ranks_per_node=32).makespan
    gain = (flat - smt) / flat
    assert gain == pytest.approx(0.02, abs=0.01)  # "reducing the time 2%"


def test_dedicated_cores_scale():
    flat = _run(threads=1, ranks_per_node=4).makespan
    quad = _run(threads=4, ranks_per_node=4).makespan
    assert flat / quad > 3.0
