"""Bench: paper Figure 5 — runtime breakdown vs memory steps.

Shape assertions: computation rises steeply (memory-six ~20x memory-one,
paper shows ~10 s -> ~220 s) while communication stays small and flat.
"""

import pytest
from conftest import run_once

from repro.experiments import Scale, get


def test_fig5_memory_steps(benchmark):
    result = run_once(benchmark, lambda: get("fig5").run(Scale.SMOKE))
    comp = result.data["compute"]
    comm = result.data["comm"]
    # Monotone growth of computation with memory steps.
    assert all(comp[n] < comp[n + 1] for n in range(1, 6))
    # Paper's absolute scale: memory-one ~10 s, memory-six ~220 s.
    assert comp[1] == pytest.approx(11.0, rel=0.3)
    assert comp[6] == pytest.approx(220.0, rel=0.3)
    # Communication nearly flat across memory steps and small vs mem-6 compute.
    assert comm[6] < 1.5 * comm[1]
    assert comm[6] < 0.1 * comp[6]
    print("\n" + result.rendered)
