"""Bench: regenerate paper Table IV (strategy-space size per memory step)."""

from repro.experiments import Scale, get


def test_table4(benchmark):
    result = benchmark(lambda: get("table4").run(Scale.SMOKE))
    exps = result.data["exponents"]
    # numStates = 4^n, strategies = 2^numStates.
    assert exps == {1: 4, 2: 16, 3: 64, 4: 256, 5: 1024, 6: 4096}
    assert result.data["memory_six_matches_paper"] is True
    print("\n" + result.rendered)
