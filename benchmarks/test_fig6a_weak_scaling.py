"""Bench: paper Figure 6a — weak scaling to 294,912 processors.

Shape assertions: weak-scaling efficiency stays near-perfect (paper: 99 %)
on BG/P to 294,912 processors and on BG/Q to 16,384.
"""

from conftest import run_once

from repro.experiments import Scale, get


def test_fig6a_weak_scaling(benchmark):
    result = run_once(benchmark, lambda: get("fig6a").run(Scale.SMOKE))
    curves = result.data["curves"]
    bgp = dict(curves["BG/P"])
    bgq = dict(curves["BG/Q"])
    assert bgp[294912] > 98.0  # paper: "99% weak scaling up to 294,912"
    assert all(eff > 98.0 for eff in bgp.values())
    assert bgq[16384] > 98.0
    print("\n" + result.rendered)
