#!/usr/bin/env python
"""Batched sampled-fitness throughput harness: the noise regime's scorecard.

Writes ``BENCH_sampled.json`` with one record per scenario.  Each scenario
runs the same seeded noisy replicate ensemble on both sampled paths —
``run_sweep(workers=1, backend="event")`` with the scalar legacy evaluator
(one :func:`repro.core.game.play_game` per sampled payoff) and
``run_sweep(backend="ensemble")`` with ``sampled_batched=True`` (every
event generation's sampled games fused into one
:func:`repro.core.vectorgame.play_pairs_uniforms` kernel call across
lanes) — and records both aggregate throughputs plus the speedup ratio.

The two paths are *statistically* equivalent, not bitwise (the batched
mode draws from its own dedicated stream; the distribution tests in
``tests/ensemble/test_sampled_batched.py`` pin the agreement), so the
in-harness parity oracle is the batched mode against itself: every
ensemble lane must be bit-identical to its same-seed serial
``sampled_batched`` event run.

The acceptance scenario is ``wm-m2-n16-e01``: a 64-replicate noisy
(``noise=0.01``) well-mixed memory-2 ensemble, where the batched kernel
must clear the >= 3x bar over the scalar path (asserted in full mode,
recorded either way).

CI runs ``--smoke`` (one scenario, few replicates, short horizon) so the
harness cannot rot; developers run it bare before/after sampled-path work
and commit the JSON.

Usage::

    python benchmarks/sampled_bench.py                 # full scenario grid
    python benchmarks/sampled_bench.py --smoke         # 1 scenario (CI)
    python benchmarks/sampled_bench.py --out my.json --generations 20000
"""

from __future__ import annotations

import argparse
import sys
import time

from common import (  # bootstraps sys.path
    REPO_ROOT,
    build_payload,
    write_payload,
)

from repro import EvolutionConfig, run_sweep  # noqa: E402
from repro.xp import KNOWN_BACKENDS, get_array_backend  # noqa: E402

#: Speedup bar for the acceptance scenario (asserted in full runs only —
#: smoke horizons are too short for stable ratios).
ACCEPTANCE_SCENARIO = "wm-m2-n16-e01"
ACCEPTANCE_SPEEDUP = 3.0

#: (label, structure, memory_steps, n_ssets, noise) — wm-m2-n16-e01 is the
#: acceptance scenario; the rest map how the batched advantage moves with
#: noise level, memory depth, and structure.
SCENARIOS = (
    ("wm-m2-n16-e01", "well-mixed", 2, 16, 0.01),
    ("wm-m2-n16-e05", "well-mixed", 2, 16, 0.05),
    ("wm-m1-n32-e01", "well-mixed", 1, 32, 0.01),
    ("ring-m2-n16-e01", "ring:k=4", 2, 16, 0.01),
)
DEFAULT_REPLICATES = 64
DEFAULT_GENERATIONS = 10_000
SMOKE_REPLICATES = 8
SMOKE_GENERATIONS = 2_000


def fingerprint(result) -> tuple:
    _, share = result.dominant()
    return (
        result.n_pc_events,
        result.n_adoptions,
        result.n_mutations,
        round(share, 6),
    )


def bench_scenario(
    label: str,
    structure: str,
    memory_steps: int,
    n_ssets: int,
    noise: float,
    replicates: int,
    generations: int,
    array_backend: str = "numpy",
) -> dict:
    """Time one seeded noisy replicate ensemble on both sampled paths."""
    base = dict(
        memory_steps=memory_steps,
        n_ssets=n_ssets,
        generations=generations,
        structure=structure,
        noise=noise,
        record_events=False,
        array_backend=array_backend,
    )
    scalar_configs = [
        EvolutionConfig(seed=2013 + i, **base) for i in range(replicates)
    ]
    batched_configs = [
        c.with_updates(sampled_batched=True) for c in scalar_configs
    ]
    record: dict = {
        "scenario": label,
        "structure": structure,
        "memory_steps": memory_steps,
        "n_ssets": n_ssets,
        "noise": noise,
        "replicates": replicates,
        "generations": generations,
    }
    total_generations = replicates * generations

    # Warm both paths (allocator, import, kernel caches), then time each
    # twice and keep the faster pass (standard noise mitigation).
    warm_scalar = [c.with_updates(generations=min(1000, generations or 1))
                   for c in scalar_configs[: min(4, replicates)]]
    warm_batched = [c.with_updates(generations=min(1000, generations or 1))
                    for c in batched_configs[: min(4, replicates)]]
    run_sweep(warm_batched, backend="ensemble")
    run_sweep(warm_scalar, backend="event", workers=1)

    batched_seconds = float("inf")
    scalar_seconds = float("inf")
    batched = None
    for _ in range(2):
        started = time.perf_counter()
        batched = run_sweep(batched_configs, backend="ensemble")
        batched_seconds = min(
            batched_seconds, time.perf_counter() - started
        )
        started = time.perf_counter()
        run_sweep(scalar_configs, backend="event", workers=1)
        scalar_seconds = min(scalar_seconds, time.perf_counter() - started)

    # Parity oracle: each ensemble lane must be bit-identical to its
    # same-seed serial batched run (scalar-vs-batched agreement is
    # statistical and lives in the test suite, not a timing harness).
    serial_batched = run_sweep(
        batched_configs[: min(4, replicates)], backend="event", workers=1
    )
    for a, b in zip(batched, serial_batched):
        if fingerprint(a) != fingerprint(b):
            raise AssertionError(
                f"{label}: batched ensemble lane diverged from its serial "
                f"batched run ({fingerprint(a)} vs {fingerprint(b)}, seed "
                f"{a.config.seed})"
            )

    record["scalar_seconds"] = round(scalar_seconds, 4)
    record["scalar_generations_per_sec"] = round(
        total_generations / scalar_seconds, 1
    )
    record["sampled_seconds"] = round(batched_seconds, 4)
    record["sampled_generations_per_sec"] = round(
        total_generations / batched_seconds, 1
    )
    record["speedup"] = round(scalar_seconds / batched_seconds, 2)
    report = batched[0].backend_report
    if report is not None and report.array_backend is not None:
        record["array_backend"] = report.array_backend
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one scenario at a short horizon (CI anti-rot)")
    parser.add_argument("--replicates", type=int, default=None,
                        help=f"ensemble lanes per scenario (default "
                             f"{DEFAULT_REPLICATES}; smoke "
                             f"{SMOKE_REPLICATES})")
    parser.add_argument("--generations", type=int, default=None,
                        help=f"generations per replicate (default "
                             f"{DEFAULT_GENERATIONS:,}; smoke "
                             f"{SMOKE_GENERATIONS:,})")
    parser.add_argument("--array-backend", default="numpy",
                        dest="array_backend",
                        choices=list(KNOWN_BACKENDS),
                        help="array namespace for the batched game kernel "
                             "(falls back to numpy with a note if the "
                             "requested stack is unavailable)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_sampled.json"),
                        metavar="PATH", help="output JSON path")
    args = parser.parse_args(argv)

    replicates = (
        args.replicates
        if args.replicates is not None
        else (SMOKE_REPLICATES if args.smoke else DEFAULT_REPLICATES)
    )
    generations = (
        args.generations
        if args.generations is not None
        else (SMOKE_GENERATIONS if args.smoke else DEFAULT_GENERATIONS)
    )
    scenarios = SCENARIOS[:1] if args.smoke else SCENARIOS

    results = []
    for label, structure, memory, n_ssets, noise in scenarios:
        record = bench_scenario(
            label, structure, memory, n_ssets, noise, replicates,
            generations, array_backend=args.array_backend,
        )
        results.append(record)
        print(f"{label:<16} scalar "
              f"{record['scalar_generations_per_sec']:>11,.1f} gen/s   "
              f"batched {record['sampled_generations_per_sec']:>11,.1f} "
              f"gen/s   x{record['speedup']}")
        if (
            not args.smoke
            and label == ACCEPTANCE_SCENARIO
            and record["speedup"] < ACCEPTANCE_SPEEDUP
        ):
            raise AssertionError(
                f"{label}: batched sampled fitness reached only "
                f"x{record['speedup']} over the scalar path "
                f"(acceptance bar: x{ACCEPTANCE_SPEEDUP})"
            )

    payload = build_payload(
        "sampled",
        smoke=args.smoke,
        results=results,
        array_backend=get_array_backend(args.array_backend).describe(),
    )
    write_payload(args.out, payload, label="scenarios")
    return 0


if __name__ == "__main__":
    sys.exit(main())
