"""Bench: paper Figure 2 — the validation run.

Shape assertions: a cooperative *retaliatory* strategy dominates the final
population (measured: GRIM, one bit from the paper's WSLS — the deviation
is documented in EXPERIMENTS.md), and WSLS's error robustness (the study's
motivation) holds: WSLS-vs-WSLS cooperation under errors far exceeds
TFT-vs-TFT.
"""

from conftest import run_once

from repro.experiments import Scale, get


def test_fig2_validation(benchmark):
    result = run_once(benchmark, lambda: get("fig2").run(Scale.SMOKE))
    # A single strategy dominates after evolution (paper: 85%).
    assert result.data["dominant_share"] > 0.35
    # The dominant strategy is cooperative-retaliatory: it cooperates after
    # mutual cooperation and defects after unilateral defection, i.e. its
    # first three (natural-order) moves match WSLS/GRIM: 0, 1, 1.
    assert result.data["dominant_bits"][:3] == "011"
    # Error robustness (Section III.F): WSLS self-play corrects errors.
    assert result.data["wsls_coop_under_noise"] > 0.9
    assert result.data["tft_coop_under_noise"] < 0.7
    # Dynamics actually ran: events at the configured rates.
    assert result.data["n_pc_events"] > 0
    assert result.data["n_mutations"] > 0
    print("\n" + result.rendered)
