#!/usr/bin/env python
"""Bench regression gate: fail when throughput drops against a baseline.

Compares a freshly emitted benchmark JSON (``structured_bench.py`` /
``engine_bench.py`` format) against a committed baseline and exits
non-zero when any matching row's ``generations_per_sec`` dropped by more
than ``--threshold`` (default 30%).  Rows are matched on
``(structure, memory_steps)``; rows present in only one file are reported
but never fail the gate (new scenarios must be allowed to land).

Absolute gen/s is hardware-dependent, so the 30% default is meant for
like-for-like machines (a developer diffing before/after a perf change on
one box).  CI runners differ from the machines that produced the committed
baselines — there the gate runs with a loose ``--threshold`` as a
catastrophic-regression tripwire only.

Usage::

    python benchmarks/structured_bench.py --out /tmp/fresh.json
    python benchmarks/bench_gate.py --baseline BENCH_structured.json \
        --candidate /tmp/fresh.json
    python benchmarks/bench_gate.py ... --threshold 0.5   # allow 50% drop
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _rate_key(record: dict) -> str:
    """The throughput field: plain benches emit ``generations_per_sec``,
    the engine bench ``engine_generations_per_sec``, the ensemble bench
    ``ensemble_generations_per_sec`` (aggregate over all lanes), the
    sampled bench ``sampled_generations_per_sec`` (batched sampled
    fitness, aggregate over all lanes)."""
    for key in (
        "generations_per_sec",
        "engine_generations_per_sec",
        "ensemble_generations_per_sec",
        "sampled_generations_per_sec",
    ):
        if key in record:
            return key
    raise KeyError(f"no throughput field in record {sorted(record)}")


def load_rows(path: Path) -> dict[tuple[str, int], float]:
    """``(scenario-or-structure, memory_steps) -> generations_per_sec``.

    Keyed on the scenario label when one is present (the ensemble bench
    repeats a structure across population sizes), falling back to the
    structure spec for older files.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"bench_gate: no such file: {path}")
    except json.JSONDecodeError as err:
        raise SystemExit(f"bench_gate: unreadable JSON in {path}: {err}")
    rows = {}
    for record in payload.get("results", []):
        label = str(record.get("scenario", record["structure"]))
        rows[(label, int(record["memory_steps"]))] = float(
            record[_rate_key(record)]
        )
    if not rows:
        raise SystemExit(f"bench_gate: {path} contains no result rows")
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, metavar="JSON",
                        help="committed benchmark file (the reference)")
    parser.add_argument("--candidate", required=True, metavar="JSON",
                        help="freshly emitted benchmark file to check")
    parser.add_argument("--threshold", type=float, default=0.30,
                        metavar="FRACTION",
                        help="maximum tolerated generations_per_sec drop "
                             "per row (default 0.30 = 30%%)")
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error(f"--threshold must lie in (0, 1), got {args.threshold}")

    baseline = load_rows(Path(args.baseline))
    candidate = load_rows(Path(args.candidate))

    failures = []
    for key in sorted(baseline):
        structure, memory = key
        if key not in candidate:
            print(f"  [skip] {structure} memory={memory}: "
                  "not in candidate (row not benched)")
            continue
        base, cand = baseline[key], candidate[key]
        change = (cand - base) / base
        status = "FAIL" if change < -args.threshold else "ok"
        print(f"  [{status:>4}] {structure:<20} memory={memory}  "
              f"{base:>12,.1f} -> {cand:>12,.1f} gen/s  ({change:+.1%})")
        if status == "FAIL":
            failures.append(key)
    for key in sorted(set(candidate) - set(baseline)):
        print(f"  [new ] {key[0]} memory={key[1]}: no baseline row")

    if failures:
        print(f"bench_gate: {len(failures)} row(s) regressed more than "
              f"{args.threshold:.0%}: "
              + ", ".join(f"{s}/m{m}" for s, m in failures))
        return 1
    print(f"bench_gate: all matched rows within {args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
