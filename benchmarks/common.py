"""Shared scaffolding for the benchmark harnesses.

Every harness in ``benchmarks/`` used to carry its own copy of the same
three chores: put ``src/`` on ``sys.path`` so the harness runs without an
install, assemble the provenance envelope around its ``results`` list, and
write the JSON artifact.  They drifted (the service bench forgot the
``backend`` field; none recorded thread counts), so the chores live here
once.

Importing this module bootstraps ``sys.path`` as a side effect — harnesses
do ``import common`` (or ``from common import ...``) *before* importing
``repro``.

The payload schema is shared across all four harnesses::

    {
      "benchmark": "<engine|ensemble|structured|service>",
      "created_unix": ...,
      "mode": "smoke" | "full",
      "python": "3.x.y",
      "platform": "...",
      "repro_version": "...",
      "array_backend": "numpy" | "cupy" | ...,   # xp-seam provenance
      "cpu_count": ...,                          # host parallelism
      "thread_env": {"OMP_NUM_THREADS": ...},    # BLAS/OpenMP pinning, if set
      ...harness extras (e.g. "backend": "event"),
      "results": [...],
    }
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # runnable without installation
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Thread-pinning variables that change NumPy/BLAS throughput; recorded so a
#: regression hunt can rule out "the box was pinned differently" first.
THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def thread_env() -> dict[str, str]:
    """The thread-pinning environment variables that are actually set."""
    return {k: os.environ[k] for k in THREAD_ENV_VARS if k in os.environ}


def build_payload(
    benchmark: str,
    *,
    smoke: bool,
    results: list[dict],
    array_backend: str | None = None,
    **extra: object,
) -> dict:
    """Assemble the shared provenance envelope around ``results``.

    ``array_backend`` is the resolved xp-seam description
    (:meth:`repro.xp.ArrayBackend.describe`); ``None`` records the seam's
    default resolution so every artifact carries the field.  ``extra``
    key/values (e.g. ``backend="event"``) land between the provenance
    block and ``results``.
    """
    from repro import __version__
    from repro.xp import get_array_backend

    if array_backend is None:
        array_backend = get_array_backend().describe()
    payload: dict = {
        "benchmark": benchmark,
        "created_unix": int(time.time()),
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repro_version": __version__,
        "array_backend": array_backend,
        "cpu_count": os.cpu_count(),
        "thread_env": thread_env(),
    }
    payload.update(extra)
    payload["results"] = results
    return payload


def checkpoint_provenance(results: list) -> dict:
    """Resume provenance of a result list, for bench records.

    Folds each run's ``BackendReport.resumed_from_generation`` into one
    dict — how many runs were restored from a mid-run snapshot and the
    deepest restore point — so an artifact row states whether its timings
    cover full executions or resumed tails.
    """
    resumed = [
        r.backend_report.resumed_from_generation
        for r in results
        if r.backend_report is not None
        and r.backend_report.resumed_from_generation is not None
    ]
    return {
        "runs": len(results),
        "resumed_runs": len(resumed),
        "max_resumed_from_generation": max(resumed) if resumed else None,
    }


def write_payload(out: str | Path, payload: dict, *, label: str) -> Path:
    """Write the artifact and print the one-line receipt every harness ends on."""
    out = Path(out)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(payload['results'])} {label})")
    return out
