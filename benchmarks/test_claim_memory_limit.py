"""Bench: the paper's memory-capacity claim — memory-six is the limit."""

from repro.experiments import Scale, get


def test_claim_memory_limit(benchmark):
    result = benchmark(lambda: get("claim-mem6").run(Scale.SMOKE))
    assert result.data["limits"]["BG/P"] == 6
    assert result.data["limits"]["BG/Q"] == 6
    print("\n" + result.rendered)
