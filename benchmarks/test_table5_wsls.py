"""Bench: regenerate paper Table V (WSLS state table)."""

from repro.experiments import Scale, get


def test_table5(benchmark):
    result = benchmark(lambda: get("table5").run(Scale.SMOKE))
    # The paper's Gray-code row order makes WSLS read 0101.
    assert result.data["moves_in_paper_order"] == [0, 1, 0, 1]
    assert result.data["wsls_bits_paper_order"] == "0101"
    assert result.data["wsls_bits_natural"] == "0110"
    print("\n" + result.rendered)
