#!/usr/bin/env python
"""Sweep-service latency harness: cold vs. cache-hit, warm pools, jobs/sec.

Writes ``BENCH_service.json`` with one record per scenario, measured
through the real HTTP front door (an in-process
:class:`~repro.service.SweepServer` on a loopback port — the full
submit/queue/execute/cache path, network stack included).

Three questions, one record each:

* ``cold-vs-hit`` — the acceptance scenario: a 16-replicate well-mixed
  memory-2 ensemble sweep submitted cold, then resubmitted bit-identically.
  The duplicate must be served from the result cache at >= 50x lower
  latency, with a byte-identical result payload (both asserted in-bench).
* ``warm-pool`` — two distinct-seed memory-one sweeps back to back: the
  second runs against the server-lifetime warm engine-pair store and its
  latency is reported alongside the first's.
* ``throughput`` — a burst of small distinct jobs, reported as sustained
  jobs/sec through submit -> execute -> done.

CI runs ``--smoke`` (short horizon) so the harness cannot rot; developers
run it bare and commit the JSON.

Usage::

    python benchmarks/service_bench.py                  # full horizon
    python benchmarks/service_bench.py --smoke          # CI anti-rot
    python benchmarks/service_bench.py --out my.json --generations 20000
"""

from __future__ import annotations

import argparse
import sys
import time

from common import REPO_ROOT, build_payload, write_payload  # bootstraps sys.path

from repro import EvolutionConfig  # noqa: E402
from repro.service import (  # noqa: E402
    JobQueue,
    JobSpec,
    ResultStore,
    SweepClient,
    SweepServer,
    WarmEnginePool,
)

ACCEPTANCE_REPLICATES = 16
DEFAULT_GENERATIONS = 10_000
SMOKE_GENERATIONS = 2_000
MIN_CACHE_SPEEDUP = 50.0


def make_spec(
    *, memory_steps: int, generations: int, replicates: int, seed0: int
) -> JobSpec:
    return JobSpec(
        configs=tuple(
            EvolutionConfig(
                memory_steps=memory_steps,
                n_ssets=16,
                generations=generations,
                structure="well-mixed",
                seed=seed0 + i,
                record_events=False,
            )
            for i in range(replicates)
        ),
    )


def submit_and_wait(client: SweepClient, spec: JobSpec) -> tuple[float, dict]:
    """Submit through HTTP and block to completion; returns (seconds, status)."""
    started = time.perf_counter()
    status = client.submit(spec)
    if status["state"] != "done":
        status = client.wait(status["job_id"], timeout=3600, poll_interval=0.01)
    elapsed = time.perf_counter() - started
    if status["state"] != "done":
        raise AssertionError(f"job did not finish: {status}")
    return elapsed, status


def bench_cold_vs_hit(client: SweepClient, generations: int) -> dict:
    spec = make_spec(
        memory_steps=2,
        generations=generations,
        replicates=ACCEPTANCE_REPLICATES,
        seed0=2013,
    )
    cold_seconds, cold_status = submit_and_wait(client, spec)
    assert not cold_status["cache_hit"], "first submission must execute"

    # Resubmit the bit-identical spec: served from cache, measured through
    # the same HTTP path (several passes; keep the fastest, standard noise
    # mitigation for a ~ms-scale measurement).
    hit_seconds = float("inf")
    for _ in range(5):
        elapsed, hit_status = submit_and_wait(client, spec)
        assert hit_status["cache_hit"], "duplicate must be a cache hit"
        hit_seconds = min(hit_seconds, elapsed)

    cold_payload = client.result(cold_status["job_id"])
    hit_payload = client.result(hit_status["job_id"])
    if cold_payload["results"] != hit_payload["results"]:
        raise AssertionError("cache hit returned a different result payload")

    speedup = cold_seconds / hit_seconds
    if speedup < MIN_CACHE_SPEEDUP:
        raise AssertionError(
            f"cache-hit speedup x{speedup:.1f} is below the "
            f"x{MIN_CACHE_SPEEDUP:.0f} acceptance bar "
            f"(cold {cold_seconds:.3f}s, hit {hit_seconds * 1e3:.1f}ms)"
        )
    return {
        "scenario": "cold-vs-hit",
        "replicates": ACCEPTANCE_REPLICATES,
        "memory_steps": 2,
        "generations": generations,
        "cold_seconds": round(cold_seconds, 4),
        "cache_hit_seconds": round(hit_seconds, 6),
        "cache_hit_ms": round(hit_seconds * 1e3, 3),
        "speedup": round(speedup, 1),
        "payload_bit_identical": True,
    }


def bench_warm_pool(client: SweepClient, generations: int) -> dict:
    # Memory-one sweeps share deterministic pair evaluations; the second
    # job starts from the server's warm store (distinct seeds, so it is a
    # genuine execution, not a cache hit).
    first = make_spec(
        memory_steps=1, generations=generations, replicates=8, seed0=5000
    )
    second = make_spec(
        memory_steps=1, generations=generations, replicates=8, seed0=6000
    )
    first_seconds, first_status = submit_and_wait(client, first)
    second_seconds, second_status = submit_and_wait(client, second)
    assert not second_status["cache_hit"]
    return {
        "scenario": "warm-pool",
        "replicates": 8,
        "memory_steps": 1,
        "generations": generations,
        "cold_pool_seconds": round(first_seconds, 4),
        "warm_pool_seconds": round(second_seconds, 4),
        "warm_over_cold": round(second_seconds / first_seconds, 3),
    }


def bench_throughput(client: SweepClient, generations: int, jobs: int) -> dict:
    specs = [
        make_spec(
            memory_steps=1,
            generations=generations,
            replicates=1,
            seed0=9000 + i,
        )
        for i in range(jobs)
    ]
    started = time.perf_counter()
    submitted = [client.submit(s) for s in specs]
    finals = [
        s
        if s["state"] == "done"
        else client.wait(s["job_id"], timeout=3600, poll_interval=0.01)
        for s in submitted
    ]
    elapsed = time.perf_counter() - started
    assert all(s["state"] == "done" for s in finals)
    return {
        "scenario": "throughput",
        "jobs": jobs,
        "replicates_per_job": 1,
        "generations": generations,
        "total_seconds": round(elapsed, 4),
        "jobs_per_sec": round(jobs / elapsed, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short horizon (CI anti-rot)")
    parser.add_argument("--generations", type=int, default=None,
                        help=f"generations per replicate (default "
                             f"{DEFAULT_GENERATIONS:,}; smoke "
                             f"{SMOKE_GENERATIONS:,})")
    parser.add_argument("--jobs", type=int, default=None,
                        help="burst size for the throughput scenario "
                             "(default 32; smoke 8)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_service.json"),
                        metavar="PATH", help="output JSON path")
    args = parser.parse_args(argv)

    generations = (
        args.generations
        if args.generations is not None
        else (SMOKE_GENERATIONS if args.smoke else DEFAULT_GENERATIONS)
    )
    jobs = args.jobs if args.jobs is not None else (8 if args.smoke else 32)

    queue = JobQueue(workers=2, store=ResultStore(), pool=WarmEnginePool())
    results = []
    with SweepServer(port=0, queue=queue) as server:
        client = SweepClient(server.url, timeout=120)
        for record in (
            bench_cold_vs_hit(client, generations),
            bench_warm_pool(client, generations),
            bench_throughput(client, generations, jobs),
        ):
            results.append(record)
            extras = {
                k: v
                for k, v in record.items()
                if k.endswith(("seconds", "ms", "speedup", "per_sec"))
            }
            line = "   ".join(f"{k}={v}" for k, v in extras.items())
            print(f"{record['scenario']:<12} {line}")
    queue.close()

    payload = build_payload("service", smoke=args.smoke, results=results)
    write_payload(args.out, payload, label="scenarios")
    return 0


if __name__ == "__main__":
    sys.exit(main())
