"""Bench: paper Figure 4 — strong scaling vs population size.

Shape assertions: every curve is ~100 % while processors hold >= 2 SSets;
the 1024-SSet curve collapses to ~50 % at 2048 processors (R = 0.5) while
larger populations stay saturated — the paper's crossover structure.
"""

import pytest
from conftest import run_once

from repro.experiments import Scale, get


def test_fig4_strong_scaling(benchmark):
    result = run_once(benchmark, lambda: get("fig4").run(Scale.SMOKE))
    curves = result.data["curves"]
    processors = result.data["processors"]
    last = processors.index(2048)
    # Small population collapses at 2048 procs...
    assert curves[1024][last] == pytest.approx(50.0, abs=5)
    # ... the knee point (R = 1) lands near the paper's 55% ...
    assert curves[2048][last] == pytest.approx(55.0, abs=3)
    # ... big populations stay near-perfect.
    assert curves[8192][last] > 97.0
    # All curves are ~100% at 16 processors.
    for series in curves.values():
        assert series[0] == pytest.approx(100.0, abs=1)
    print("\n" + result.rendered)
