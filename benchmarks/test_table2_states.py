"""Bench: regenerate paper Table II (memory-one game states)."""

from repro.experiments import Scale, get


def test_table2(benchmark):
    result = benchmark(lambda: get("table2").run(Scale.SMOKE))
    assert result.data["states"] == ["CC", "CD", "DC", "DD"]
    print("\n" + result.rendered)
