#!/usr/bin/env python
"""Machine-readable perf harness: generations/sec across population structures.

Writes ``BENCH_structured.json`` — the repo's perf trajectory file — with
one record per (structure, memory_steps) cell at N=64 SSets on the event
backend.  CI runs ``--smoke`` (one cell, short horizon) so the harness
cannot rot; developers run it bare before/after perf work and diff the
JSON.

Usage::

    python benchmarks/structured_bench.py                 # full grid
    python benchmarks/structured_bench.py --smoke         # 1 cell (CI)
    python benchmarks/structured_bench.py --out my.json --generations 200000
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # runnable without installation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import EvolutionConfig, Simulation, __version__  # noqa: E402

N_SSETS = 64
STRUCTURES = ("well-mixed", "ring:k=4", "grid:rows=8,cols=8")
MEMORY_STEPS = (1, 2)
DEFAULT_GENERATIONS = 100_000
SMOKE_GENERATIONS = 5_000


def bench_one(structure: str, memory_steps: int, generations: int) -> dict:
    """Time one seeded run; report generations/sec and science fingerprints."""
    config = EvolutionConfig(
        memory_steps=memory_steps,
        n_ssets=N_SSETS,
        generations=generations,
        structure=structure,
        seed=2013,
    )
    started = time.perf_counter()
    result = Simulation(config).run()
    elapsed = time.perf_counter() - started
    _, share = result.dominant()
    return {
        "structure": structure,
        "memory_steps": memory_steps,
        "n_ssets": N_SSETS,
        "generations": generations,
        "seconds": round(elapsed, 4),
        "generations_per_sec": round(generations / elapsed, 1),
        "pc_events": result.n_pc_events,
        "mutations": result.n_mutations,
        "dominant_share": round(share, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one cell at a short horizon (CI anti-rot mode)")
    parser.add_argument("--generations", type=int, default=None,
                        help=f"generations per cell (default "
                             f"{DEFAULT_GENERATIONS:,}; smoke "
                             f"{SMOKE_GENERATIONS:,})")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_structured.json"),
                        metavar="PATH", help="output JSON path")
    args = parser.parse_args(argv)

    generations = (
        args.generations
        if args.generations is not None
        else (SMOKE_GENERATIONS if args.smoke else DEFAULT_GENERATIONS)
    )
    cells = (
        [(STRUCTURES[0], MEMORY_STEPS[0])]
        if args.smoke
        else [(s, m) for m in MEMORY_STEPS for s in STRUCTURES]
    )

    results = []
    for structure, memory in cells:
        record = bench_one(structure, memory, generations)
        results.append(record)
        print(f"{structure:<18} memory={memory}  "
              f"{record['generations_per_sec']:>12,.1f} gen/s  "
              f"({record['seconds']:.2f}s)")

    payload = {
        "benchmark": "structured",
        "created_unix": int(time.time()),
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repro_version": __version__,
        "backend": "event",
        "results": results,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(results)} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
