#!/usr/bin/env python
"""Machine-readable perf harness: generations/sec across population structures.

Writes ``BENCH_structured.json`` — the repo's perf trajectory file — with
one record per (structure, memory_steps) cell at N=64 SSets on the event
backend, plus scenario-keyed **lane-batched ensemble rows**: a whole
replicate sweep of a graph-structured scenario run through
``run_sweep(backend="ensemble")`` and compared against the same sweep on
``run_sweep(workers=1, backend="event")`` (the PR acceptance records the
64-replicate ring-lattice memory-2 speedup here; the ensemble lanes are
cross-checked bit-identical against their serial runs while we have both
results in hand).  CI runs ``--smoke`` (one serial cell + one small
ensemble row, short horizons) so the harness cannot rot; developers run it
bare before/after perf work and diff the JSON.

Usage::

    python benchmarks/structured_bench.py                 # full grid
    python benchmarks/structured_bench.py --smoke         # CI anti-rot mode
    python benchmarks/structured_bench.py --out my.json --generations 200000
"""

from __future__ import annotations

import argparse
import sys
import time

from common import REPO_ROOT, build_payload, write_payload  # bootstraps sys.path

from repro import EvolutionConfig, Simulation  # noqa: E402
from repro.api import run_sweep  # noqa: E402

N_SSETS = 64
STRUCTURES = ("well-mixed", "ring:k=4", "grid:rows=8,cols=8")
MEMORY_STEPS = (1, 2)
DEFAULT_GENERATIONS = 100_000
SMOKE_GENERATIONS = 5_000

#: Lane-batched ensemble scenarios: (scenario key, structure, memory,
#: replicates, generations-divisor vs the serial cells — ensembles run R
#: lanes, so a shorter per-lane horizon keeps the wallclock comparable —
#: and paymat_block).  ``ring-ens-r64-b16`` is the blocked-paymat graph
#: row: same workload as ``ring-ens-r64`` but the shared engine backs the
#: pair matrix with on-demand 16x16 blocks, so its ``shared_engine`` stats
#: record how far resident paymat bytes drop on a sparse-touch topology.
ENSEMBLE_SCENARIOS = (
    ("ring-ens-r64", "ring:k=4", 2, 64, 5, 0),
    ("ring-ens-r64-b16", "ring:k=4", 2, 64, 5, 16),
    ("smallworld-ens-r64", "smallworld:k=4,p=0.1,seed=1", 2, 64, 5, 0),
)
SMOKE_ENSEMBLE_SCENARIOS = (("ring-ens-r8", "ring:k=4", 2, 8, 5, 0),)


def bench_one(structure: str, memory_steps: int, generations: int) -> dict:
    """Time one seeded run; report generations/sec and science fingerprints."""
    config = EvolutionConfig(
        memory_steps=memory_steps,
        n_ssets=N_SSETS,
        generations=generations,
        structure=structure,
        seed=2013,
    )
    started = time.perf_counter()
    result = Simulation(config).run()
    elapsed = time.perf_counter() - started
    _, share = result.dominant()
    return {
        "structure": structure,
        "memory_steps": memory_steps,
        "n_ssets": N_SSETS,
        "generations": generations,
        "seconds": round(elapsed, 4),
        "generations_per_sec": round(generations / elapsed, 1),
        "pc_events": result.n_pc_events,
        "mutations": result.n_mutations,
        "dominant_share": round(share, 4),
    }


def bench_ensemble(
    scenario: str,
    structure: str,
    memory_steps: int,
    replicates: int,
    generations: int,
    paymat_block: int = 0,
) -> dict:
    """Time one graph-structured replicate sweep lane-batched vs serial.

    ``ensemble_generations_per_sec`` aggregates over all lanes (R *
    generations / seconds) — the figure the bench gate tracks;
    ``speedup_vs_event`` is the headline acceptance ratio.  Lane parity is
    asserted on the final populations while both result sets are in hand.
    ``paymat_block`` rides in on the configs so the serial event reference
    is the parity oracle for exactly the mode being measured.
    """
    configs = [
        EvolutionConfig(
            memory_steps=memory_steps,
            n_ssets=N_SSETS,
            generations=generations,
            structure=structure,
            record_events=False,
            seed=2013 + i,
            paymat_block=paymat_block,
        )
        for i in range(replicates)
    ]
    started = time.perf_counter()
    ensemble = run_sweep(configs, backend="ensemble", workers=1)
    ens_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    serial = run_sweep(configs, backend="event", workers=1)
    event_elapsed = time.perf_counter() - started
    for a, b in zip(ensemble, serial):
        if (
            a.population.strategy_matrix().tobytes()
            != b.population.strategy_matrix().tobytes()
        ):
            raise SystemExit(
                f"structured_bench: lane-parity violation in {scenario} "
                f"(seed {a.config.seed}): ensemble final population differs "
                "from the serial event run"
            )
    total = replicates * generations
    record = {
        "scenario": scenario,
        "structure": structure,
        "memory_steps": memory_steps,
        "n_ssets": N_SSETS,
        "replicates": replicates,
        "generations": generations,
        "paymat_block": paymat_block,
        "seconds": round(ens_elapsed, 4),
        "event_seconds": round(event_elapsed, 4),
        "ensemble_generations_per_sec": round(total / ens_elapsed, 1),
        "event_generations_per_sec": round(total / event_elapsed, 1),
        "speedup_vs_event": round(event_elapsed / ens_elapsed, 2),
    }
    report = ensemble[0].backend_report
    if report is not None and report.shared_engine is not None:
        record["shared_engine"] = dict(report.shared_engine)
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one serial cell + one small ensemble row at a "
                             "short horizon (CI anti-rot mode)")
    parser.add_argument("--generations", type=int, default=None,
                        help=f"generations per serial cell (default "
                             f"{DEFAULT_GENERATIONS:,}; smoke "
                             f"{SMOKE_GENERATIONS:,}; ensemble rows run a "
                             "fraction of this per lane)")
    parser.add_argument("--paymat-block", type=int, default=None,
                        dest="paymat_block", metavar="B",
                        help="override paymat_block on every ensemble row "
                             "(power of two >= 4; 0 = dense) — scenario "
                             "labels stay unchanged so bench_gate.py lines "
                             "the rows up against a dense baseline")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_structured.json"),
                        metavar="PATH", help="output JSON path")
    args = parser.parse_args(argv)

    generations = (
        args.generations
        if args.generations is not None
        else (SMOKE_GENERATIONS if args.smoke else DEFAULT_GENERATIONS)
    )
    cells = (
        [(STRUCTURES[0], MEMORY_STEPS[0])]
        if args.smoke
        else [(s, m) for m in MEMORY_STEPS for s in STRUCTURES]
    )
    scenarios = SMOKE_ENSEMBLE_SCENARIOS if args.smoke else ENSEMBLE_SCENARIOS

    results = []
    for structure, memory in cells:
        record = bench_one(structure, memory, generations)
        results.append(record)
        print(f"{structure:<18} memory={memory}  "
              f"{record['generations_per_sec']:>12,.1f} gen/s  "
              f"({record['seconds']:.2f}s)")
    for scenario, structure, memory, replicates, divisor, block in scenarios:
        if args.paymat_block is not None:
            block = args.paymat_block
        record = bench_ensemble(
            scenario, structure, memory, replicates,
            max(1000, generations // divisor),
            paymat_block=block,
        )
        results.append(record)
        print(f"{scenario:<18} memory={memory}  "
              f"{record['ensemble_generations_per_sec']:>12,.1f} gen/s  "
              f"({record['seconds']:.2f}s, x{record['speedup_vs_event']:.2f} "
              f"vs event)")

    payload = build_payload(
        "structured", smoke=args.smoke, results=results, backend="event"
    )
    write_payload(args.out, payload, label="cells")
    return 0


if __name__ == "__main__":
    sys.exit(main())
