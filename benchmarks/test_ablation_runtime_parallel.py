"""Ablation: real multiprocessing speedup of the fitness kernel.

Measures the host-machine payoff-matrix kernel serially and across a
process pool (the runnable analogue of the paper's thread level).  The
result must be bit-identical either way.
"""

import numpy as np
import pytest

from repro.core import random_pure
from repro.rng import make_rng
from repro.runtime import ParallelKernel

RNG = make_rng(2024)
STRATEGIES = [random_pure(RNG, 3) for _ in range(48)]
ROUNDS = 200


@pytest.fixture(scope="module")
def serial_matrix():
    with ParallelKernel(n_workers=1, rounds=ROUNDS) as kernel:
        return kernel.payoff_matrix(STRATEGIES)


def test_kernel_serial(benchmark, serial_matrix):
    with ParallelKernel(n_workers=1, rounds=ROUNDS) as kernel:
        result = benchmark.pedantic(
            kernel.payoff_matrix, args=(STRATEGIES,), rounds=1, iterations=1
        )
    np.testing.assert_array_equal(result, serial_matrix)


def test_kernel_two_processes(benchmark, serial_matrix):
    with ParallelKernel(n_workers=2, rounds=ROUNDS) as kernel:
        kernel.payoff_matrix(STRATEGIES)  # warm the pool before timing
        result = benchmark.pedantic(
            kernel.payoff_matrix, args=(STRATEGIES,), rounds=1, iterations=1
        )
    np.testing.assert_array_equal(result, serial_matrix)
