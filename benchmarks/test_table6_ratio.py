"""Bench: paper Table VI — efficiency vs SSets-per-processor ratio.

Shape assertions against the paper's row:
R    = 0.5  1.0  2.0  3.0  4.0  5.0  6.0  7.0  8.0
P.E. =  50   55  99.7 99.7 99.9 99.9 99.9 100  100
"""

import pytest
from conftest import run_once

from repro.experiments import Scale, get


def test_table6_ratio(benchmark):
    result = run_once(benchmark, lambda: get("table6").run(Scale.SMOKE))
    eff = result.data["efficiency_by_ratio"]
    assert eff[0.5] == pytest.approx(50.0, abs=3)
    assert eff[1.0] == pytest.approx(55.0, abs=3)
    for ratio in (2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0):
        assert eff[ratio] > 99.0
    # The knee is sharp: R=2 gains almost 45 points over R=1.
    assert eff[2.0] - eff[1.0] > 40.0
    print("\n" + result.rendered)
