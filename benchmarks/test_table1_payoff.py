"""Bench: regenerate paper Table I (PD payoff matrix)."""

from repro.experiments import Scale, get


def test_table1(benchmark):
    result = benchmark(lambda: get("table1").run(Scale.SMOKE))
    assert result.data["R"] == 3
    assert result.data["S"] == 0
    assert result.data["T"] == 4
    assert result.data["P"] == 1
    assert result.data["dilemma_ordering"] is True
    print("\n" + result.rendered)
