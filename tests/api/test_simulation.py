"""The Simulation front-end: legacy-shim equivalence and checkpoint hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EventBackend, Simulation
from repro.core import (
    EvolutionConfig,
    run_baseline,
    run_event_driven,
    run_serial,
)
from repro.errors import CheckpointError, ConfigurationError


def tiny_config(**overrides) -> EvolutionConfig:
    base = dict(n_ssets=8, generations=400, rounds=16, seed=23)
    base.update(overrides)
    return EvolutionConfig(**base)


class TestLegacyShimEquivalence:
    """The legacy entry points and the front-end are bit-identical."""

    @pytest.mark.parametrize(
        "backend,legacy",
        [
            ("serial", run_serial),
            ("event", run_event_driven),
            ("baseline", run_baseline),
        ],
    )
    def test_bit_identical_trajectory(self, backend, legacy):
        cfg = tiny_config()
        via_api = Simulation(cfg, backend=backend).run()
        via_legacy = legacy(cfg)
        assert via_api.events == via_legacy.events
        assert np.array_equal(
            via_api.population.strategy_matrix(),
            via_legacy.population.strategy_matrix(),
        )
        for a, b in zip(via_api.snapshots, via_legacy.snapshots):
            assert a.generation == b.generation
            assert np.array_equal(a.strategy_matrix, b.strategy_matrix)
        assert via_api.n_pc_events == via_legacy.n_pc_events
        assert via_api.n_adoptions == via_legacy.n_adoptions
        assert via_api.n_mutations == via_legacy.n_mutations
        # The front-end adds the report; the legacy shims leave it unset.
        assert via_api.backend_report is not None
        assert via_legacy.backend_report is None

    def test_snapshot_recording_matches(self):
        cfg = tiny_config(record_every=50)
        via_api = Simulation(cfg).run()
        via_legacy = run_event_driven(cfg)
        assert [s.generation for s in via_api.snapshots] == [
            s.generation for s in via_legacy.snapshots
        ]


class TestFrontEnd:
    def test_backend_instance_accepted(self):
        cfg = tiny_config()
        result = Simulation(cfg, backend=EventBackend(batch_size=64)).run()
        assert result.events == run_event_driven(cfg).events

    def test_backend_class_accepted(self):
        result = Simulation(tiny_config(), backend=EventBackend).run()
        assert result.backend_report.backend == "event"

    def test_instance_plus_opts_rejected(self):
        with pytest.raises(ConfigurationError, match="backend_opts"):
            Simulation(tiny_config(), backend=EventBackend(), batch_size=4)

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            Simulation(tiny_config(), backend="event", bogus_option=1)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            Simulation(tiny_config(), backend="warp-drive")

    def test_initial_population_used(self):
        from repro.core import Population, tft

        cfg = tiny_config(generations=0)
        population = Population.uniform(tft(1), cfg.n_ssets)
        result = Simulation(cfg, initial_population=population).run()
        strategy, share = result.dominant()
        assert share == 1.0 and strategy == tft(1)


class TestCheckpointHooks:
    def test_save_and_resume(self, tmp_path):
        path = tmp_path / "pop.npz"
        cfg = tiny_config()
        first = Simulation(cfg, checkpoint_path=path).run()
        assert path.exists()
        resumed = Simulation(cfg, checkpoint_path=path, resume=True).run()
        assert np.array_equal(
            resumed.snapshots[0].strategy_matrix,
            first.population.strategy_matrix(),
        )

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "absent.npz"
        cfg = tiny_config()
        result = Simulation(cfg, checkpoint_path=path, resume=True).run()
        assert result.events == run_serial(cfg).events
        assert path.exists()  # saved at the end

    def test_resume_without_path_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint_path"):
            Simulation(tiny_config(), resume=True)

    def test_incompatible_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "pop.npz"
        Simulation(tiny_config(), checkpoint_path=path).run()
        with pytest.raises(CheckpointError, match="SSets"):
            Simulation(
                tiny_config(n_ssets=16), checkpoint_path=path, resume=True
            ).run()
        with pytest.raises(CheckpointError, match="memory_steps"):
            Simulation(
                tiny_config(memory_steps=2), checkpoint_path=path, resume=True
            ).run()

    def test_des_resume_rejected(self, tmp_path):
        path = tmp_path / "pop.npz"
        Simulation(tiny_config(), checkpoint_path=path).run()
        with pytest.raises(ConfigurationError, match="initial populations"):
            Simulation(
                tiny_config(), backend="des", n_ranks=4,
                checkpoint_path=path, resume=True,
            ).run()
