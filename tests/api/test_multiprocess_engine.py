"""Multiprocess backend on the engine's sid arrays (PR 3 follow-on)."""

from __future__ import annotations

import numpy as np

from repro.api import Simulation
from repro.core import EvolutionConfig


def config(**overrides) -> EvolutionConfig:
    base = dict(memory_steps=2, n_ssets=8, generations=400, rounds=16, seed=3)
    base.update(overrides)
    return EvolutionConfig(**base)


class TestMultiprocessEngine:
    def test_engine_path_matches_event(self):
        """Default (engine on): pooled fills land in the dense matrix and
        the trajectory — including the engine's hit/miss accounting — is
        identical to the in-process event backend."""
        mp = Simulation(config(), backend="multiprocess", workers=2).run()
        evt = Simulation(config(), backend="event").run()
        assert mp.events == evt.events
        assert np.array_equal(
            mp.population.strategy_matrix(), evt.population.strategy_matrix()
        )
        assert (mp.cache_hits, mp.cache_misses) == (
            evt.cache_hits, evt.cache_misses
        )

    def test_legacy_cache_path_still_available(self):
        """engine=False keeps the historical pooled PayoffCache fan-out."""
        cfg = config(engine=False)
        mp = Simulation(cfg, backend="multiprocess", workers=2).run()
        evt = Simulation(cfg, backend="event").run()
        assert mp.events == evt.events
        assert np.array_equal(
            mp.population.strategy_matrix(), evt.population.strategy_matrix()
        )

    def test_single_worker_inline(self):
        mp = Simulation(config(), backend="multiprocess", workers=1).run()
        evt = Simulation(config(), backend="event").run()
        assert mp.events == evt.events
