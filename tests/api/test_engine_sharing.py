"""Cross-run sharing of deterministic engine pair evaluations."""

from __future__ import annotations

import numpy as np

from repro.api import Simulation, run_sweep
from repro.core import EvolutionConfig
from repro.core.engine import _PAIR_SHARE, shared_engine_pairs


def config(seed: int, **overrides) -> EvolutionConfig:
    base = dict(memory_steps=1, n_ssets=16, generations=1500, rounds=20)
    base.update(overrides)
    return EvolutionConfig(seed=seed, **base)


class TestSharedEnginePairs:
    def test_second_run_reuses_pairs(self):
        iso = [Simulation(config(s)).run() for s in (7, 8)]
        with shared_engine_pairs():
            first = Simulation(config(7)).run()
            second = Simulation(config(8)).run()
        # Trajectories identical to isolated runs; evaluations shrink.
        assert first.events == iso[0].events
        assert second.events == iso[1].events
        assert second.cache_misses < iso[1].cache_misses

    def test_store_cleared_on_exit(self):
        with shared_engine_pairs() as store:
            Simulation(config(7)).run()
            assert store
        assert not _PAIR_SHARE.enabled
        assert not _PAIR_SHARE.store

    def test_nested_keeps_outer_store(self):
        with shared_engine_pairs() as outer:
            Simulation(config(7)).run()
            before = sum(len(v) for v in outer.values())
            with shared_engine_pairs() as inner:
                assert inner is outer
            assert _PAIR_SHARE.enabled
            assert sum(len(v) for v in outer.values()) == before

    def test_signature_separation(self):
        """Different (memory, rounds, payoff) never share entries."""
        with shared_engine_pairs() as store:
            Simulation(config(7)).run()
            Simulation(config(7, rounds=24)).run()
            assert len(store) == 2

    def test_expected_regime_not_shared(self):
        with shared_engine_pairs() as store:
            Simulation(
                config(7, noise=0.02, expected_fitness=True, generations=200)
            ).run()
            assert not store


class TestRunSweepSharing:
    def test_serial_sweep_shares(self):
        configs = [config(100 + i) for i in range(3)]
        iso = [Simulation(c).run() for c in configs]
        swept = run_sweep(configs, backend="event")
        for a, b in zip(swept, iso):
            assert a.events == b.events
            assert np.array_equal(
                a.population.strategy_matrix(), b.population.strategy_matrix()
            )
        assert sum(r.cache_misses for r in swept) < sum(
            r.cache_misses for r in iso
        )

    def test_sweep_leaves_no_global_state(self):
        run_sweep([config(7)], backend="event")
        assert not _PAIR_SHARE.enabled
        assert not _PAIR_SHARE.store

    def test_pooled_sweep_trajectories_unchanged(self):
        configs = [config(100 + i, generations=600) for i in range(3)]
        serial = run_sweep(configs, backend="event")
        pooled = run_sweep(configs, backend="event", workers=2)
        for a, b in zip(serial, pooled):
            assert a.events == b.events

    def test_auto_rule_skips_deep_memory(self):
        """Memory >= 2 draws mostly-distinct mutants, so the store would
        cost more than it saves; the default keeps it off there."""
        configs = [
            config(100 + i, memory_steps=2, generations=400)
            for i in range(2)
        ]
        iso = [Simulation(c).run() for c in configs]
        swept = run_sweep(configs, backend="event")
        assert [r.cache_misses for r in swept] == [
            r.cache_misses for r in iso
        ]

    def test_share_engine_flag_forces(self):
        configs = [
            config(100 + i, memory_steps=2, generations=400)
            for i in range(2)
        ]
        iso = [Simulation(c).run() for c in configs]
        forced = run_sweep(configs, backend="event", share_engine=True)
        assert forced[1].events == iso[1].events
        assert forced[1].cache_misses <= iso[1].cache_misses
        off = run_sweep(
            [config(100), config(101)], backend="event", share_engine=False
        )
        assert off[1].cache_misses == Simulation(config(101)).run().cache_misses
