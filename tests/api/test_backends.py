"""Backend registry and cross-backend trajectory equivalence."""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np
import pytest

from repro.api import (
    Backend,
    Simulation,
    available_backends,
    get_backend,
    register_backend,
)
from repro.api.backends import _REGISTRY
from repro.core import EvolutionConfig, run_serial
from repro.errors import ConfigurationError

BUILTINS = ["baseline", "des", "ensemble", "event", "multiprocess", "serial"]


def tiny_config(**overrides) -> EvolutionConfig:
    base = dict(n_ssets=8, generations=400, rounds=16, seed=11)
    base.update(overrides)
    return EvolutionConfig(**base)


class TestRegistry:
    def test_builtins_registered(self):
        assert available_backends() == BUILTINS

    def test_get_backend_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("nonexistent")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):

            @register_backend
            @dataclass
            class Duplicate(Backend):
                name: ClassVar[str] = "event"
                summary: ClassVar[str] = "clash"

                def run(self, config, population=None):
                    raise AssertionError

    def test_nameless_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):

            @register_backend
            @dataclass
            class Nameless(Backend):
                summary: ClassVar[str] = "no name"

                def run(self, config, population=None):
                    raise AssertionError

    def test_custom_backend_pluggable(self):
        @dataclass
        class Custom(Backend):
            name: ClassVar[str] = "custom-test-backend"
            summary: ClassVar[str] = "delegates to serial"

            def run(self, config, population=None):
                return self._report(run_serial(config, population))

        register_backend(Custom)
        try:
            cfg = tiny_config()
            result = Simulation(cfg, backend="custom-test-backend").run()
            assert result.events == run_serial(cfg).events
            assert result.backend_report.backend == "custom-test-backend"
        finally:
            del _REGISTRY["custom-test-backend"]

    def test_summaries_exist(self):
        for name in available_backends():
            assert get_backend(name).summary


class TestAllBackendsRun:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_backend_runs_and_reports(self, name):
        opts = {"multiprocess": {"workers": 2}, "des": {"n_ranks": 4}}.get(
            name, {}
        )
        result = Simulation(tiny_config(), backend=name, **opts).run()
        assert result.generations_run == 400
        report = result.backend_report
        assert report is not None
        assert report.backend == name
        assert report.wallclock_seconds >= 0.0
        if name == "multiprocess":
            assert report.workers == 2
        if name == "des":
            assert report.n_ranks == 4
            assert report.makespan_seconds > 0.0


class TestCrossBackendTrajectory:
    """Acceptance: identical trajectories across backends for any seed."""

    @pytest.mark.parametrize("seed", [11, 99, 2013])
    def test_serial_event_baseline_identical(self, seed):
        cfg = tiny_config(seed=seed)
        reference = Simulation(cfg, backend="serial").run()
        for name in ("event", "baseline"):
            other = Simulation(cfg, backend=name).run()
            assert other.events == reference.events, name
            assert np.array_equal(
                other.population.strategy_matrix(),
                reference.population.strategy_matrix(),
            ), name
            assert [s.generation for s in other.snapshots] == [
                s.generation for s in reference.snapshots
            ], name

    def test_multiprocess_identical(self):
        cfg = tiny_config()
        reference = Simulation(cfg, backend="event").run()
        pooled = Simulation(cfg, backend="multiprocess", workers=2).run()
        assert pooled.events == reference.events
        assert np.array_equal(
            pooled.population.strategy_matrix(),
            reference.population.strategy_matrix(),
        )

    def test_des_same_events_and_population(self):
        cfg = tiny_config()
        reference = Simulation(cfg, backend="serial").run()
        des = Simulation(cfg, backend="des", n_ranks=4).run()
        assert des.events == reference.events
        assert np.array_equal(
            des.population.strategy_matrix(),
            reference.population.strategy_matrix(),
        )
        assert des.n_pc_events == reference.n_pc_events
        assert des.n_adoptions == reference.n_adoptions
        assert des.n_mutations == reference.n_mutations


class TestBackendValidation:
    def test_multiprocess_rejects_stochastic(self):
        with pytest.raises(ConfigurationError, match="multiprocess"):
            Simulation(
                tiny_config(noise=0.1), backend="multiprocess", workers=2
            ).run()

    def test_multiprocess_rejects_expected_fitness(self):
        with pytest.raises(ConfigurationError, match="multiprocess"):
            Simulation(
                tiny_config(noise=0.01, expected_fitness=True),
                backend="multiprocess",
            ).run()

    def test_baseline_rejects_stochastic(self):
        with pytest.raises(ConfigurationError):
            Simulation(tiny_config(noise=0.1), backend="baseline").run()

    @pytest.mark.parametrize("name", ["baseline", "des", "multiprocess"])
    def test_noisy_expected_fitness_rejected(self, name):
        """Noise+expected_fitness isn't `is_stochastic`, but these backends
        would silently drop the noise model — they must refuse it."""
        cfg = tiny_config(noise=0.01, expected_fitness=True)
        with pytest.raises(ConfigurationError, match=name):
            Simulation(cfg, backend=name).run()

    @pytest.mark.parametrize("name", ["baseline", "des", "multiprocess"])
    def test_expected_fitness_rejected(self, name):
        cfg = tiny_config(expected_fitness=True)
        with pytest.raises(ConfigurationError, match=name):
            Simulation(cfg, backend=name).run()

    @pytest.mark.parametrize("name", ["event", "multiprocess"])
    def test_nonpositive_batch_size_rejected(self, name):
        """batch_size <= 0 would loop forever in run_event_driven."""
        with pytest.raises(ConfigurationError, match="batch_size"):
            Simulation(tiny_config(), backend=name, batch_size=0).run()

    def test_des_rejects_record_every(self):
        with pytest.raises(ConfigurationError, match="record_every"):
            Simulation(
                tiny_config(record_every=50), backend="des", n_ranks=4
            ).run()

    @pytest.mark.parametrize("name", ["baseline", "des", "multiprocess"])
    def test_direct_run_also_validates(self, name):
        """The guard holds for bare Backend.run(), not just Simulation."""
        cfg = tiny_config(noise=0.01, expected_fitness=True)
        with pytest.raises(ConfigurationError, match=name):
            get_backend(name)().run(cfg)

    def test_multiprocess_rejects_non_integer_payoff(self):
        """Bit-identity to serial holds only for integer payoffs."""
        from repro.core import PayoffMatrix

        cfg = tiny_config(
            payoff=PayoffMatrix(reward=3.0, sucker=0.0, temptation=5.1,
                                punishment=1.0)
        )
        with pytest.raises(ConfigurationError, match="integer-valued"):
            Simulation(cfg, backend="multiprocess").run()

    def test_des_rejects_cost_only_parallel(self):
        from repro.framework import ParallelConfig

        with pytest.raises(ConfigurationError, match="executable"):
            Simulation(
                tiny_config(),
                backend="des",
                parallel=ParallelConfig(n_ranks=4, executable=False),
            ).run()

    def test_event_accepts_stochastic(self):
        result = Simulation(
            tiny_config(noise=0.01, expected_fitness=True), backend="event"
        ).run()
        assert result.generations_run == 400
