"""run_sweep: pool/serial parity, seed derivation, callbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import derive_sweep_seeds, run_sweep
from repro.core import EvolutionConfig
from repro.errors import ConfigurationError


def sweep_configs(n: int = 8) -> list[EvolutionConfig]:
    return [
        EvolutionConfig(n_ssets=8, generations=300, rounds=16, seed=100 + i)
        for i in range(n)
    ]


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_sweep_seeds(7, 5) == derive_sweep_seeds(7, 5)

    def test_distinct_per_index_and_base(self):
        seeds = derive_sweep_seeds(7, 8)
        assert len(set(seeds)) == 8
        assert set(seeds).isdisjoint(derive_sweep_seeds(8, 8))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_sweep_seeds(7, -1)


class TestRunSweep:
    def test_pool_matches_serial_loop(self):
        """Acceptance: 8 configs, workers=4 == the serial loop."""
        configs = sweep_configs(8)
        serial = run_sweep(configs, workers=None)
        pooled = run_sweep(configs, workers=4)
        assert len(serial) == len(pooled) == 8
        for a, b in zip(serial, pooled):
            assert a.config == b.config
            assert a.events == b.events
            assert np.array_equal(
                a.population.strategy_matrix(), b.population.strategy_matrix()
            )

    def test_base_seed_overrides_config_seeds(self):
        configs = [sweep_configs(1)[0]] * 4  # identical configs
        results = run_sweep(configs, base_seed=42)
        seeds = [r.config.seed for r in results]
        assert len(set(seeds)) == 4
        again = run_sweep(configs, base_seed=42)
        assert [r.config.seed for r in again] == seeds

    def test_results_in_config_order(self):
        configs = sweep_configs(4)
        results = run_sweep(configs, workers=2)
        assert [r.config.seed for r in results] == [c.seed for c in configs]

    def test_on_result_callback_order(self):
        calls: list[int] = []
        results = run_sweep(
            sweep_configs(4),
            workers=2,
            on_result=lambda i, r: calls.append(i),
        )
        assert calls == [0, 1, 2, 3]
        assert len(results) == 4

    def test_backend_report_attached(self):
        (result,) = run_sweep(sweep_configs(1))
        assert result.backend_report is not None
        assert result.backend_report.backend == "event"

    def test_backend_opts_forwarded(self):
        (result,) = run_sweep(sweep_configs(1), backend="event", batch_size=64)
        assert result.backend_report.options == {"batch_size": 64}

    def test_instance_plus_opts_rejected(self):
        from repro.api import EventBackend

        with pytest.raises(ConfigurationError, match="backend_opts"):
            run_sweep(sweep_configs(1), backend=EventBackend(), batch_size=4)

    def test_empty_sweep(self):
        assert run_sweep([]) == []


class TestDedupe:
    def test_duplicates_share_one_result_object(self):
        a, b = sweep_configs(2)
        results = run_sweep([a, b, a])
        assert results[0] is results[2]
        assert results[0] is not results[1]

    def test_on_result_fires_per_position_in_order(self):
        a, b = sweep_configs(2)
        calls: list[int] = []
        results = run_sweep(
            [a, b, a, b], on_result=lambda i, r: calls.append(i)
        )
        assert calls == [0, 1, 2, 3]
        assert results[1] is results[3]

    def test_escape_hatch_runs_independently(self):
        a, _ = sweep_configs(2)
        results = run_sweep([a, a], dedupe=False)
        assert results[0] is not results[1]
        # Still bit-identical trajectories — dedupe only changed identity.
        assert results[0].events == results[1].events
        assert np.array_equal(
            results[0].population.strategy_matrix(),
            results[1].population.strategy_matrix(),
        )

    def test_dedupe_matches_independent_execution(self):
        a, b = sweep_configs(2)
        deduped = run_sweep([a, b, a])
        independent = run_sweep([a, b, a], dedupe=False)
        for x, y in zip(deduped, independent):
            assert x.events == y.events
            assert np.array_equal(
                x.population.strategy_matrix(),
                y.population.strategy_matrix(),
            )

    def test_ensemble_fast_path_dedupes(self):
        a, b = sweep_configs(2)
        results = run_sweep([a, a, b], backend="ensemble")
        assert results[0] is results[1]
        assert results[0] is not results[2]

    def test_structure_instance_and_spec_collide(self):
        from repro.structure import build_structure

        spec_config = EvolutionConfig(
            n_ssets=8, generations=200, rounds=16, structure="ring:k=2",
            seed=42,
        )
        instance_config = spec_config.with_updates(
            structure=build_structure("ring:k=2", 8)
        )
        results = run_sweep([spec_config, instance_config])
        assert results[0] is results[1]

    def test_base_seed_defeats_duplicates(self):
        a, _ = sweep_configs(2)
        results = run_sweep([a, a], base_seed=9)
        assert results[0] is not results[1]
        assert results[0].config.seed != results[1].config.seed
