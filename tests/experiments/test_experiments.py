"""Tests for the experiment registry and the cheap experiment runners.

The expensive shape assertions live in ``benchmarks/``; here we pin the
registry mechanics and the fast tables.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import Scale, all_experiments, get
from repro.experiments.registry import ExperimentResult


class TestRegistry:
    def test_all_expected_ids_registered(self):
        ids = {e.experiment_id for e in all_experiments()}
        assert ids == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6a",
            "fig6b",
            "claim-mem6",
            "structures",
            "noise_memory",
        }

    def test_every_experiment_has_paper_ref(self):
        for exp in all_experiments():
            assert exp.paper_ref
            assert exp.title

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError):
            get("fig99")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import register

        with pytest.raises(ConfigurationError):

            @register("table1", "dup", "nowhere")
            def dup(scale):  # pragma: no cover
                raise AssertionError


class TestStaticTables:
    @pytest.mark.parametrize("eid", ["table1", "table2", "table3", "table4", "table5"])
    def test_runs_and_renders(self, eid):
        result = get(eid).run(Scale.SMOKE)
        assert isinstance(result, ExperimentResult)
        assert result.rendered
        assert result.paper_expectation
        assert str(result)  # __str__ works

    def test_table4_flags_paper_discrepancy(self):
        result = get("table4").run(Scale.SMOKE)
        assert "inconsistent" in result.rendered

    def test_table5_gray_order(self):
        result = get("table5").run(Scale.SMOKE)
        assert result.data["wsls_bits_paper_order"] == "0101"


class TestCheapModelExperiments:
    def test_claim_mem6(self):
        result = get("claim-mem6").run(Scale.SMOKE)
        assert result.data["limits"] == {"BG/P": 6, "BG/Q": 6}

    def test_table6_smoke(self):
        result = get("table6").run(Scale.SMOKE)
        eff = result.data["efficiency_by_ratio"]
        assert eff[0.5] < eff[1.0] < eff[2.0]

    def test_fig5_smoke(self):
        result = get("fig5").run(Scale.SMOKE)
        assert set(result.data["compute"]) == {1, 2, 3, 4, 5, 6}

    def test_fig6a_smoke(self):
        result = get("fig6a").run(Scale.SMOKE)
        assert set(result.data["curves"]) == {"BG/P", "BG/Q"}

    def test_fig6b_smoke(self):
        result = get("fig6b").run(Scale.SMOKE)
        assert len(result.data["efficiencies"]) == 5


class TestValidationConfig:
    def test_scales(self):
        from repro.experiments.validation import validation_config

        smoke = validation_config(Scale.SMOKE)
        full = validation_config(Scale.FULL)
        assert full.n_ssets == 5_000
        assert full.generations == 10_000_000
        assert smoke.generations < full.generations
        # Both use the paper's rates and errors-on expected fitness.
        for cfg in (smoke, full):
            assert cfg.pc_rate == 0.10
            assert cfg.mutation_rate == 0.05
            assert cfg.expected_fitness


class TestDefaultBackendRouting:
    def test_run_evolution_uses_default_backend(self):
        from repro.core import EvolutionConfig, run_serial
        from repro.experiments import (
            get_default_backend,
            run_evolution,
            set_default_backend,
        )

        cfg = EvolutionConfig(n_ssets=8, generations=300, rounds=16, seed=9)
        assert get_default_backend() == "event"
        set_default_backend("serial")
        try:
            result = run_evolution(cfg)
            assert result.backend_report.backend == "serial"
            assert result.events == run_serial(cfg).events
        finally:
            set_default_backend("event")

    def test_unknown_backend_rejected_eagerly(self):
        from repro.experiments import get_default_backend, set_default_backend

        with pytest.raises(ConfigurationError):
            set_default_backend("warp-drive")
        assert get_default_backend() == "event"
