"""Tests for the analytic scaling model and its DES calibration."""

import pytest

from repro.core import EvolutionConfig
from repro.errors import ConfigurationError
from repro.framework import OptimizationLevel, ParallelConfig
from repro.machine import BLUEGENE_P, BLUEGENE_Q
from repro.perfmodel import (
    AnalyticModel,
    assert_calibrated,
    ratio_sweep,
    strong_scaling,
    validate_against_des,
    weak_scaling,
)


@pytest.fixture
def evo() -> EvolutionConfig:
    return EvolutionConfig(memory_steps=1, n_ssets=64, generations=40, rounds=100)


@pytest.fixture
def par() -> ParallelConfig:
    return ParallelConfig(machine=BLUEGENE_P, executable=False)


class TestCalibration:
    def test_analytic_matches_des(self, evo, par):
        points = validate_against_des(
            evo, par, rank_counts=[3, 5, 9], sset_counts=[16, 64]
        )
        assert_calibrated(points, tolerance=0.10)

    def test_calibration_catches_drift(self, evo, par):
        points = validate_against_des(evo, par, rank_counts=[3], sset_counts=[16])
        # Corrupt a point to prove the guard works.
        import dataclasses

        bad = dataclasses.replace(points[0], analytic_makespan=points[0].des_makespan * 2)
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            assert_calibrated([bad], tolerance=0.15)


class TestTableVI:
    def test_ratio_sweep_reproduces_knee(self, par):
        evo = EvolutionConfig(memory_steps=1, n_ssets=2048, generations=20, rounds=200)
        rows = dict(ratio_sweep(evo, par, [0.5, 1.0, 2.0, 4.0, 8.0], n_workers=512))
        # Paper Table VI: 50, 55, 99.7, 99.9, 100.
        assert rows[0.5] == pytest.approx(50.0, abs=3)
        assert rows[1.0] == pytest.approx(55.0, abs=3)
        assert rows[2.0] > 99.0
        assert rows[8.0] > 99.5

    def test_monotone_above_one(self, par):
        evo = EvolutionConfig(memory_steps=1, n_ssets=2048, generations=20, rounds=200)
        rows = ratio_sweep(evo, par, [1.0, 1.25, 1.5, 1.75, 2.0], n_workers=256)
        effs = [e for _, e in rows]
        assert all(b >= a for a, b in zip(effs, effs[1:]))


class TestStrongScaling:
    def test_efficiency_degrades_below_saturation(self):
        # Fig. 4's story: small populations stop scaling once R < 2.
        evo = EvolutionConfig(memory_steps=1, n_ssets=1024, generations=20, rounds=200)
        par = ParallelConfig(machine=BLUEGENE_Q, executable=False)
        curve = strong_scaling(evo, par, [17, 65, 257, 1025, 2049])
        effs = curve.efficiencies_percent()
        assert effs[0] == pytest.approx(100.0)
        assert effs[-1] < 70.0  # R = 0.5 at 2048 workers
        # Larger populations keep near-perfect efficiency at 2048 workers.
        evo_big = evo.with_updates(n_ssets=32_768)
        curve_big = strong_scaling(evo_big, par, [17, 65, 257, 1025, 2049])
        assert curve_big.efficiencies_percent()[-1] > 97.0

    def test_split_mode_beats_idle_mode_below_one(self):
        evo = EvolutionConfig(
            memory_steps=6, n_ssets=1024, generations=10, rounds=200
        )
        whole = ParallelConfig(machine=BLUEGENE_P, executable=False)
        split = whole.with_updates(split_ssets=True)
        ranks = [1025, 2049]  # R = 1 then R = 0.5
        eff_whole = strong_scaling(evo, whole, ranks).efficiencies_percent()[-1]
        eff_split = strong_scaling(evo, split, ranks).efficiencies_percent()[-1]
        assert eff_split > eff_whole

    def test_fig6b_shape(self):
        # 131072 SSets, split mode: ~99% at 16k workers, ~82% at 262144
        # workers (R = 0.5, the paper's 82%).  Rank counts are P workers
        # plus the Nature Agent so the powers of two stay balanced.
        evo = EvolutionConfig(
            memory_steps=6, n_ssets=131_072, generations=5, rounds=200
        )
        par = ParallelConfig(
            machine=BLUEGENE_P, executable=False, split_ssets=True
        )
        curve = strong_scaling(evo, par, [1025, 16_385, 262_145])
        effs = curve.efficiencies_percent()
        assert effs[1] > 97.0
        assert effs[2] == pytest.approx(82.0, abs=4)

    def test_rank_counts_validated(self, evo, par):
        with pytest.raises(ConfigurationError):
            strong_scaling(evo, par, [])
        with pytest.raises(ConfigurationError):
            strong_scaling(evo, par, [64, 16])


class TestWeakScaling:
    def test_fig6a_near_perfect(self):
        evo = EvolutionConfig(memory_steps=6, n_ssets=2, generations=5, rounds=200)
        par = ParallelConfig(
            machine=BLUEGENE_P, executable=False, opponents_per_sset=8
        )
        curve = weak_scaling(
            evo, par, [1025, 16_385, 294_913], ssets_per_worker=64
        )
        effs = curve.efficiencies_percent()
        assert effs[0] == pytest.approx(100.0)
        assert all(e > 98.0 for e in effs)  # paper: "99% weak scaling"

    def test_requires_fixed_opponents(self):
        evo = EvolutionConfig(n_ssets=2, generations=5)
        par = ParallelConfig(machine=BLUEGENE_P, executable=False)
        with pytest.raises(ConfigurationError):
            weak_scaling(evo, par, [16, 64], ssets_per_worker=8)


class TestModelBehaviour:
    def test_total_time_positive_and_additive(self, evo, par):
        model = AnalyticModel(evo, par.with_updates(n_ranks=9))
        gen = model.generation_time()
        assert gen.compute > 0
        assert gen.network > 0
        assert model.total_time() > evo.generations * gen.compute

    def test_compute_comm_split(self, evo, par):
        model = AnalyticModel(evo, par.with_updates(n_ranks=9))
        comp, comm = model.compute_comm_split()
        assert comp > 0 and comm > 0
        assert comp + comm == pytest.approx(model.total_time())

    def test_memory_six_dominates_compute(self, par):
        # Fig. 5's story: compute grows ~n^2, communication stays flat-ish.
        base = EvolutionConfig(n_ssets=128, generations=20, rounds=200)
        comp, comm = {}, {}
        for n in (1, 6):
            model = AnalyticModel(
                base.with_updates(memory_steps=n),
                par.with_updates(n_ranks=129),
            )
            comp[n], comm[n] = model.compute_comm_split()
        assert comp[6] / comp[1] > 10
        assert comm[6] / comm[1] < 3

    def test_original_optimization_slower(self, evo, par):
        tuned = AnalyticModel(evo, par.with_updates(n_ranks=9)).total_time()
        orig = AnalyticModel(
            evo,
            par.with_updates(
                n_ranks=9, optimization=OptimizationLevel.ORIGINAL
            ),
        ).total_time()
        assert orig > 1.5 * tuned
