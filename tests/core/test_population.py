"""Tests for SSets, the strategy histogram, and the population container."""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    PayoffCache,
    Population,
    SSet,
    StrategyHistogram,
    all_c,
    all_d,
    play_game,
    random_pure,
    tft,
    wsls,
)
from repro.errors import ConfigurationError
from repro.rng import make_rng


class TestSSet:
    def test_adopt_and_mutate_count(self):
        """Counters update through the Population write path (the SSet
        record itself exposes no strategy-writing methods)."""
        pop = Population.from_strategies([tft(1), wsls(1)])
        pop.adopt(0, wsls(1))
        pop.mutate(0, all_d(1))
        assert pop[0].adoptions == 1
        assert pop[0].mutations == 1
        assert pop[0].strategy == all_d(1)

    def test_no_direct_strategy_write_methods(self):
        s = SSet(0, tft(1))
        assert not hasattr(s, "adopt") and not hasattr(s, "mutate")

    def test_games_per_agent_ceiling(self):
        s = SSet(0, tft(1), n_agents=4)
        assert s.games_per_agent(10) == 3  # ceil(10/4)

    def test_invalid_agents(self):
        with pytest.raises(ConfigurationError):
            SSet(0, tft(1), n_agents=0)


class TestHistogram:
    def test_counts_and_distinct(self):
        h = StrategyHistogram.from_strategies([tft(1), tft(1), wsls(1)])
        assert h.total == 3
        assert h.distinct == 2
        assert h.counts[tft(1).key()] == 2

    def test_replace_keeps_total(self):
        h = StrategyHistogram.from_strategies([tft(1), wsls(1)])
        h.replace(tft(1), all_d(1))
        assert h.total == 2
        assert tft(1).key() not in h.counts

    def test_remove_missing_raises(self):
        h = StrategyHistogram.from_strategies([tft(1)])
        with pytest.raises(KeyError):
            h.remove(all_c(1))

    def test_most_common_ordering(self):
        h = StrategyHistogram.from_strategies([tft(1), tft(1), wsls(1)])
        top = h.most_common()
        assert top[0][0] == tft(1) and top[0][1] == 2

    def test_fitness_matches_direct_sum(self):
        strategies = [tft(1), wsls(1), all_d(1), all_d(1)]
        h = StrategyHistogram.from_strategies(strategies)
        cache = PayoffCache(rounds=50)
        fit = h.fitness_of(tft(1), cache, include_self_play=False)
        expected = sum(
            play_game(tft(1), s, 50).payoff_a for s in strategies
        ) - play_game(tft(1), tft(1), 50).payoff_a
        assert fit == expected

    def test_fitness_with_self_play(self):
        strategies = [tft(1), all_d(1)]
        h = StrategyHistogram.from_strategies(strategies)
        cache = PayoffCache(rounds=50)
        with_self = h.fitness_of(tft(1), cache, include_self_play=True)
        without = h.fitness_of(tft(1), cache, include_self_play=False)
        assert with_self - without == play_game(tft(1), tft(1), 50).payoff_a


class TestPayoffCache:
    def test_cache_hit_counting(self):
        cache = PayoffCache(rounds=20)
        cache.pair_payoffs(tft(1), all_d(1))
        assert cache.misses == 1
        cache.pair_payoffs(tft(1), all_d(1))
        cache.pair_payoffs(all_d(1), tft(1))  # symmetric entry pre-filled
        assert cache.hits == 2
        assert len(cache) == 2

    def test_cache_matches_play_game(self):
        rng = make_rng(1)
        for _ in range(10):
            a, b = random_pure(rng, 2), random_pure(rng, 2)
            cache = PayoffCache(rounds=33)
            assert cache.pair_payoffs(a, b) == (
                play_game(a, b, 33).payoff_a,
                play_game(a, b, 33).payoff_b,
            )

    def test_stochastic_games_not_cached(self):
        cache = PayoffCache(rounds=20, noise=0.2, rng=make_rng(0))
        cache.pair_payoffs(tft(1), tft(1))
        cache.pair_payoffs(tft(1), tft(1))
        assert len(cache) == 0

    def test_clear(self):
        cache = PayoffCache(rounds=10)
        cache.pair_payoffs(tft(1), wsls(1))
        cache.clear()
        assert len(cache) == 0


class TestPopulation:
    def test_random_population_shape(self):
        cfg = EvolutionConfig(n_ssets=10, memory_steps=2, agents_per_sset=3)
        pop = Population.random(cfg, make_rng(0))
        assert len(pop) == 10
        assert pop.memory_steps == 2
        assert pop.n_agents == 30
        assert pop.strategy_matrix().shape == (10, 16)

    def test_ids_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            Population([SSet(1, tft(1))])

    def test_mixed_memories_rejected(self):
        with pytest.raises(ConfigurationError):
            Population([SSet(0, tft(1)), SSet(1, tft(2))])

    def test_adopt_updates_histogram(self):
        pop = Population.from_strategies([tft(1), wsls(1), all_d(1)])
        pop.adopt(0, wsls(1))
        assert pop.histogram.counts[wsls(1).key()] == 2
        assert tft(1).key() not in pop.histogram.counts
        assert pop[0].adoptions == 1

    def test_mutate_updates_histogram(self):
        pop = Population.from_strategies([tft(1), wsls(1)])
        pop.mutate(1, all_c(1))
        assert pop.share_of(all_c(1)) == 0.5

    def test_dominant_share(self):
        pop = Population.from_strategies([tft(1), tft(1), wsls(1)])
        strategy, share = pop.dominant_share()
        assert strategy == tft(1)
        assert share == pytest.approx(2 / 3)

    def test_uniform_population(self):
        pop = Population.uniform(wsls(1), 5, agents_per_sset=2)
        assert pop.share_of(wsls(1)) == 1.0
        assert pop.n_agents == 10

    def test_all_fitness_consistent_with_single(self):
        pop = Population.from_strategies([tft(1), wsls(1), all_d(1), all_d(1)])
        cache = PayoffCache(rounds=25)
        vec = pop.all_fitness(cache)
        for i in range(4):
            assert vec[i] == pop.fitness_of(i, cache)
        # Identical strategies share identical fitness.
        assert vec[2] == vec[3]
        # SSet records were updated.
        assert pop[0].fitness == vec[0]


class TestSetStrategyAndInvariants:
    def test_set_strategy_keeps_histogram_in_sync(self):
        pop = Population.from_strategies([tft(1), wsls(1), all_d(1)])
        pop.set_strategy(0, all_d(1))
        assert pop.share_of(all_d(1)) == pytest.approx(2 / 3)
        assert tft(1).key() not in pop.histogram.counts
        # set_strategy is the raw write path: no adoption/mutation counters.
        assert pop[0].adoptions == 0 and pop[0].mutations == 0
        pop.check_invariants()

    def test_adopt_and_mutate_route_through_set_strategy(self):
        pop = Population.from_strategies([tft(1), wsls(1)])
        pop.adopt(0, wsls(1))
        pop.mutate(1, all_c(1))
        assert pop[0].adoptions == 1
        assert pop[1].mutations == 1
        pop.check_invariants()

    def test_check_invariants_detects_bypassing_write(self):
        from repro.errors import SimulationError

        pop = Population.from_strategies([tft(1), wsls(1), all_d(1)])
        pop.check_invariants()
        # Write around the choke point: the histogram goes stale.
        pop.ssets[0].strategy = all_c(1)
        with pytest.raises(SimulationError):
            pop.check_invariants()

    def test_check_invariants_detects_desynced_counts(self):
        from repro.errors import SimulationError

        pop = Population.from_strategies([tft(1), tft(1), wsls(1)])
        pop.histogram.remove(tft(1))
        with pytest.raises(SimulationError):
            pop.check_invariants()

    def test_long_run_population_passes_invariants(self):
        from repro.core import EvolutionConfig, run_event_driven

        result = run_event_driven(
            EvolutionConfig(n_ssets=12, generations=3000, rounds=16, seed=3)
        )
        result.population.check_invariants()
