"""Tests for the interned-strategy FitnessEngine and its StrategyPool.

Two layers of guarantees:

* unit semantics — interning, refcounts, slot recycling vs retiring,
  insertion order, the batched cycle-exact kernel;
* cross-engine equivalence — FitnessEngine fitness equals the legacy
  PayoffCache/histogram fitness (bit-for-bit) across structures x
  {deterministic, expected, sampled} regimes x memory_steps 1-3, and whole
  trajectories are identical with the engine on or off.
"""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    FitnessEngine,
    PayoffCache,
    Population,
    StrategyPool,
    all_c,
    all_d,
    cycle_payoffs_pairs,
    exact_payoffs,
    is_integer_payoff,
    random_mixed,
    random_pure,
    run_event_driven,
    run_serial,
    tft,
    wsls,
)
from repro.core.payoff import PayoffMatrix
from repro.errors import ConfigurationError, SimulationError, StrategyError
from repro.structure import build_structure


def make_engine(config: EvolutionConfig) -> FitnessEngine:
    engine = FitnessEngine.from_config(config)
    assert engine is not None
    return engine


def legacy_cache(config: EvolutionConfig, rng=None) -> PayoffCache:
    return PayoffCache(
        rounds=config.rounds,
        payoff=config.payoff,
        noise=config.noise,
        rng=rng,
        expected=config.expected_fitness,
    )


class TestCycleKernel:
    @pytest.mark.parametrize("memory_steps", [1, 2, 3])
    @pytest.mark.parametrize("rounds", [1, 2, 7, 200, 100_000])
    def test_bit_identical_to_scalar_engine(self, memory_steps, rounds):
        rng = np.random.default_rng(5 * memory_steps + rounds)
        strategies = [random_pure(rng, memory_steps) for _ in range(12)]
        tables = np.stack([s.table for s in strategies])
        a = rng.integers(12, size=40)
        b = rng.integers(12, size=40)
        pay_a, pay_b = cycle_payoffs_pairs(tables, a, b, rounds)
        for i in range(40):
            exp_a, exp_b, _ = exact_payoffs(
                strategies[a[i]], strategies[b[i]], rounds
            )
            assert pay_a[i] == exp_a
            assert pay_b[i] == exp_b

    def test_self_pairs(self):
        strategies = [all_c(), all_d(), tft(), wsls()]
        tables = np.stack([s.table for s in strategies])
        idx = np.arange(4)
        pay_a, pay_b = cycle_payoffs_pairs(tables, idx, idx, 200)
        assert np.array_equal(pay_a, pay_b)  # self-play is symmetric
        # ALLC vs ALLC: 200 rounds of mutual cooperation.
        assert pay_a[0] == 200 * 3

    def test_rejects_mixed_tables_and_bad_shapes(self):
        tables = np.zeros((2, 4), dtype=np.float64)
        with pytest.raises(StrategyError):
            cycle_payoffs_pairs(tables, [0], [1], 10)
        tables = np.zeros((2, 4), dtype=np.uint8)
        with pytest.raises(ConfigurationError):
            cycle_payoffs_pairs(tables, [0, 1], [0], 10)
        with pytest.raises(ConfigurationError):
            cycle_payoffs_pairs(tables, [0], [1], 0)

    def test_empty_pairing(self):
        tables = np.zeros((1, 4), dtype=np.uint8)
        pay_a, pay_b = cycle_payoffs_pairs(tables, [], [], 10)
        assert pay_a.shape == (0,) and pay_b.shape == (0,)


class TestStrategyPool:
    def test_intern_release_recycle(self):
        pool = StrategyPool(1, np.dtype(np.uint8), capacity=2)
        sid_c, new_c = pool.acquire(all_c())
        assert new_c and pool.count(sid_c) == 1
        sid_c2, new_c2 = pool.acquire(all_c())
        assert sid_c2 == sid_c and not new_c2 and pool.count(sid_c) == 2
        sid_d, _ = pool.acquire(all_d())
        assert len(pool) == 2 and pool.total == 3
        assert not pool.release(sid_c)
        assert pool.release(sid_c)  # second release frees the slot
        assert all_c() not in pool
        # The freed slot is recycled for the next new strategy.
        sid_t, new_t = pool.acquire(tft())
        assert new_t and sid_t == sid_c
        assert pool.strategy(sid_t).key() == tft().key()
        assert pool.strategy(sid_d).key() == all_d().key()

    def test_retire_mode_remembers_dead_strategies(self):
        pool = StrategyPool(1, np.dtype(np.uint8), capacity=2, evict=False)
        sid_c, _ = pool.acquire(all_c())
        pool.acquire(all_d())
        assert pool.release(sid_c)
        # Retired, not forgotten: same slot on revival, appended at the
        # end of the live order like a histogram re-add.
        assert all_c() in pool
        sid_again, is_new = pool.acquire(all_c())
        assert sid_again == sid_c and not is_new
        assert list(pool.ordered_sids()) == [pool.sid_of(all_d()), sid_c]

    def test_capacity_growth_preserves_slots(self):
        pool = StrategyPool(2, np.dtype(np.uint8), capacity=2)
        rng = np.random.default_rng(0)
        strategies = [random_pure(rng, 2) for _ in range(40)]
        sids = [pool.acquire(s)[0] for s in strategies]
        assert pool.capacity >= 40
        for s, sid in zip(strategies, sids):
            assert pool.strategy(sid).key() == s.key()
            assert np.array_equal(pool.tables[sid], s.table)

    def test_order_mirrors_histogram_insertion(self):
        pool = StrategyPool(1, np.dtype(np.uint8), capacity=4)
        a, b, c = all_c(), all_d(), tft()
        sa = pool.acquire(a)[0]
        sb = pool.acquire(b)[0]
        sc = pool.acquire(c)[0]
        pool.acquire(a)
        assert list(pool.ordered_sids()) == [sa, sb, sc]
        pool.release(sb)
        assert list(pool.ordered_sids()) == [sa, sc]

    def test_errors(self):
        pool = StrategyPool(1, np.dtype(np.uint8), capacity=2)
        with pytest.raises(StrategyError):
            pool.acquire(random_pure(np.random.default_rng(0), 2))
        sid, _ = pool.acquire(all_c())
        pool.release(sid)
        with pytest.raises(SimulationError):
            pool.release(sid)
        with pytest.raises(SimulationError):
            pool.strategy(sid)


class TestFromConfig:
    def test_deterministic_supported(self):
        assert isinstance(make_engine(EvolutionConfig()), FitnessEngine)

    def test_expected_noisy_supported(self):
        engine = make_engine(
            EvolutionConfig(noise=0.02, expected_fitness=True)
        )
        assert engine.expected

    def test_pure_expected_uses_deterministic_kernel(self):
        # noise=0 + pure strategies: the legacy cache prefers the
        # cycle-exact engine even under expected_fitness, and so do we.
        engine = make_engine(EvolutionConfig(expected_fitness=True))
        assert not engine.expected

    def test_sampled_regimes_fall_back(self):
        assert FitnessEngine.from_config(EvolutionConfig(noise=0.1)) is None
        assert (
            FitnessEngine.from_config(EvolutionConfig(mixed_strategies=True))
            is None
        )

    def test_non_integer_payoff_falls_back(self):
        payoff = PayoffMatrix(reward=3.5, sucker=0.0, temptation=4.0,
                              punishment=1.0)
        assert not is_integer_payoff(payoff)
        assert FitnessEngine.from_config(EvolutionConfig(payoff=payoff)) is None
        with pytest.raises(ConfigurationError):
            FitnessEngine(memory_steps=1, rounds=10, payoff=payoff)

    def test_engine_false_falls_back(self):
        assert FitnessEngine.from_config(EvolutionConfig(engine=False)) is None

    def test_direct_construction_rejects_sampled(self):
        with pytest.raises(ConfigurationError):
            FitnessEngine(memory_steps=1, rounds=10, noise=0.1)


def population_for(config: EvolutionConfig, seed: int = 0) -> Population:
    rng = np.random.default_rng(seed)
    make = random_mixed if config.mixed_strategies else random_pure
    return Population.from_strategies(
        [make(rng, config.memory_steps) for _ in range(config.n_ssets)]
    )


STRUCTURES = ["well-mixed", "complete", "ring:k=4", "grid:rows=4,cols=5",
              "regular:d=3,seed=2"]


class TestFitnessEquivalence:
    """FitnessEngine fitness == legacy PayoffCache/histogram fitness."""

    @pytest.mark.parametrize("spec", STRUCTURES)
    @pytest.mark.parametrize("memory_steps", [1, 2, 3])
    def test_deterministic(self, spec, memory_steps):
        config = EvolutionConfig(
            n_ssets=20, memory_steps=memory_steps, rounds=64
        )
        structure = build_structure(spec, config.n_ssets)
        pop_engine = population_for(config, seed=memory_steps)
        pop_legacy = population_for(config, seed=memory_steps)
        engine = make_engine(config)
        pop_engine.bind_engine(engine)
        cache = legacy_cache(config)
        for sset_id in range(config.n_ssets):
            for self_play in (False, True):
                got = structure.fitness_of(
                    pop_engine, sset_id, engine, self_play
                )
                want = structure.fitness_of(
                    pop_legacy, sset_id, cache, self_play
                )
                assert got == want, (spec, memory_steps, sset_id, self_play)

    @pytest.mark.parametrize("spec", STRUCTURES)
    @pytest.mark.parametrize("memory_steps", [1, 2, 3])
    def test_expected(self, spec, memory_steps):
        config = EvolutionConfig(
            n_ssets=20, memory_steps=memory_steps, rounds=50,
            noise=0.02, expected_fitness=True,
        )
        structure = build_structure(spec, config.n_ssets)
        pop_engine = population_for(config, seed=memory_steps)
        pop_legacy = population_for(config, seed=memory_steps)
        engine = make_engine(config)
        pop_engine.bind_engine(engine)
        cache = legacy_cache(config)
        # Interleave queries so lazy fills and cache misses happen in the
        # same pattern on both sides (the legacy values are query-order
        # dependent in the last ulp — the engine must mirror that).
        for sset_id in range(config.n_ssets):
            for self_play in (False, True):
                got = structure.fitness_of(
                    pop_engine, sset_id, engine, self_play
                )
                want = structure.fitness_of(
                    pop_legacy, sset_id, cache, self_play
                )
                assert got == want, (spec, memory_steps, sset_id, self_play)

    @pytest.mark.parametrize("memory_steps", [1, 2])
    def test_expected_mixed(self, memory_steps):
        config = EvolutionConfig(
            n_ssets=12, memory_steps=memory_steps, rounds=40,
            mixed_strategies=True, expected_fitness=True,
        )
        structure = build_structure("ring:k=2", config.n_ssets)
        pop_engine = population_for(config, seed=7)
        pop_legacy = population_for(config, seed=7)
        engine = make_engine(config)
        pop_engine.bind_engine(engine)
        cache = legacy_cache(config)
        for sset_id in range(config.n_ssets):
            assert structure.fitness_of(
                pop_engine, sset_id, engine
            ) == structure.fitness_of(pop_legacy, sset_id, cache)

    def test_sampled_regime_is_legacy(self):
        """Sampled-stochastic fitness stays on the scalar legacy path (the
        engine declines), so equivalence is RNG-stream equality."""
        config = EvolutionConfig(n_ssets=8, rounds=16, noise=0.05)
        assert FitnessEngine.from_config(config) is None
        structure = build_structure("well-mixed", config.n_ssets)
        results = []
        for _ in range(2):
            pop = population_for(config, seed=3)
            cache = legacy_cache(config, rng=np.random.default_rng(11))
            results.append(
                [structure.fitness_of(pop, i, cache) for i in range(8)]
            )
        assert results[0] == results[1]

    def test_payoff_between_matches_cache(self):
        config = EvolutionConfig(n_ssets=4, rounds=32)
        engine = make_engine(config)
        cache = legacy_cache(config)
        strategies = [all_c(), all_d(), tft(), wsls()]
        sids = engine.intern_all(strategies)
        for i, a in enumerate(strategies):
            for j, b in enumerate(strategies):
                assert engine.payoff_between(
                    int(sids[i]), int(sids[j])
                ) == cache.payoff_to(a, b)


class TestPopulationEngineSync:
    def test_bind_and_set_strategy_keep_sids_in_sync(self):
        config = EvolutionConfig(n_ssets=10)
        population = population_for(config, seed=1)
        engine = make_engine(config)
        population.bind_engine(engine)
        population.check_invariants()
        rng = np.random.default_rng(2)
        for _ in range(200):
            sset_id = int(rng.integers(10))
            if rng.random() < 0.5:
                other = int(rng.integers(10))
                population.adopt(sset_id, population[other].strategy)
            else:
                population.mutate(sset_id, random_pure(rng, 1))
        population.check_invariants()
        assert engine.pool.total == 10

    def test_unbound_population_rejects_engine_evaluator(self):
        config = EvolutionConfig(n_ssets=6)
        population = population_for(config, seed=1)
        engine = make_engine(config)
        with pytest.raises(SimulationError):
            population.fitness_of(0, engine)
        other = population_for(config, seed=1)
        other.bind_engine(engine)
        with pytest.raises(SimulationError):
            population.fitness_of(0, engine)

    def test_unbind(self):
        config = EvolutionConfig(n_ssets=6)
        population = population_for(config, seed=1)
        population.bind_engine(make_engine(config))
        assert population.engine is not None
        population.bind_engine(None)
        assert population.engine is None
        with pytest.raises(SimulationError):
            population.sids

    def test_intern_all_validates(self):
        engine = make_engine(EvolutionConfig(memory_steps=2))
        with pytest.raises(StrategyError):
            engine.intern_all([all_c(1)])
        rng = np.random.default_rng(0)
        with pytest.raises(StrategyError):
            engine.intern_all([random_mixed(rng, 2)])

    def test_stats(self):
        config = EvolutionConfig(n_ssets=4)
        population = population_for(config, seed=1)
        engine = make_engine(config)
        population.bind_engine(engine)
        population.fitness_of(0, engine)
        stats = engine.stats()
        assert stats["hits"] == 1
        assert stats["misses"] > 0
        assert stats["distinct"] == len(engine.pool)


def trajectory_fingerprint(result):
    return (
        result.n_pc_events,
        result.n_adoptions,
        result.n_mutations,
        result.population.strategy_matrix().tobytes(),
        tuple(
            (e.generation, e.kind, e.source, e.target, e.applied,
             repr(e.teacher_fitness), repr(e.learner_fitness))
            for e in result.events
        ),
    )


class TestTrajectoryParity:
    """Engine-enabled runs are bit-identical to the legacy path."""

    @pytest.mark.parametrize("spec", ["well-mixed", "ring:k=4", "complete"])
    @pytest.mark.parametrize("memory_steps", [1, 2])
    def test_deterministic(self, spec, memory_steps):
        config = EvolutionConfig(
            n_ssets=24, generations=2500, seed=13,
            memory_steps=memory_steps, structure=spec,
        )
        on = run_event_driven(config)
        off = run_event_driven(config.with_updates(engine=False))
        assert trajectory_fingerprint(on) == trajectory_fingerprint(off)
        assert trajectory_fingerprint(run_serial(config)) == \
            trajectory_fingerprint(on)
        on.population.check_invariants()

    @pytest.mark.parametrize("spec", ["well-mixed", "grid:rows=4,cols=4"])
    def test_expected(self, spec):
        config = EvolutionConfig(
            n_ssets=16, generations=3000, seed=31, memory_steps=2,
            structure=spec, noise=0.02, expected_fitness=True,
        )
        on = run_event_driven(config)
        off = run_event_driven(config.with_updates(engine=False))
        assert trajectory_fingerprint(on) == trajectory_fingerprint(off)

    def test_expected_long_horizon_reappearance(self):
        """memory-1 strategies die and reappear constantly; the retired
        slots must serve the original cached payoffs (legacy semantics)."""
        config = EvolutionConfig(
            n_ssets=12, generations=6000, seed=5, memory_steps=1,
            noise=0.01, expected_fitness=True, structure="ring:k=2",
        )
        on = run_event_driven(config)
        off = run_event_driven(config.with_updates(engine=False))
        assert trajectory_fingerprint(on) == trajectory_fingerprint(off)

    def test_sampled(self):
        config = EvolutionConfig(
            n_ssets=8, generations=800, rounds=16, noise=0.05, seed=3
        )
        on = run_serial(config)
        off = run_serial(config.with_updates(engine=False))
        assert trajectory_fingerprint(on) == trajectory_fingerprint(off)

    def test_include_self_play(self):
        config = EvolutionConfig(
            n_ssets=12, generations=1500, seed=3, structure="ring:k=2",
            noise=0.01, expected_fitness=True, include_self_play=True,
        )
        on = run_serial(config)
        off = run_serial(config.with_updates(engine=False))
        assert trajectory_fingerprint(on) == trajectory_fingerprint(off)

    def test_all_fitness_matches(self):
        config = EvolutionConfig(n_ssets=16, generations=400, seed=2)
        on = run_event_driven(config)
        off = run_event_driven(config.with_updates(engine=False))
        from repro.core.evolution import _make_evaluator
        from repro.core.nature import NatureAgent
        from repro.rng import SeedSequenceTree

        ev_on = _make_evaluator(
            config, NatureAgent(config, SeedSequenceTree(0)), on.population
        )
        ev_off = _make_evaluator(
            config.with_updates(engine=False),
            NatureAgent(config, SeedSequenceTree(0)),
            off.population,
        )
        assert isinstance(ev_on, FitnessEngine)
        assert isinstance(ev_off, PayoffCache)
        assert np.array_equal(
            on.population.all_fitness(ev_on),
            off.population.all_fitness(ev_off),
        )


class TestRecordEvents:
    def test_disabled_keeps_counters_and_trajectory(self):
        config = EvolutionConfig(n_ssets=16, generations=2000, seed=5)
        full = run_event_driven(config)
        lean = run_event_driven(config.with_updates(record_events=False))
        assert lean.events == []
        assert len(full.events) > 0
        assert (full.n_pc_events, full.n_adoptions, full.n_mutations) == (
            lean.n_pc_events, lean.n_adoptions, lean.n_mutations
        )
        assert np.array_equal(
            full.population.strategy_matrix(),
            lean.population.strategy_matrix(),
        )

    def test_serial_and_baseline_honour_flag(self):
        from repro.core import run_baseline

        config = EvolutionConfig(
            n_ssets=8, generations=300, rounds=32, agents_per_sset=1,
            seed=5, record_events=False,
        )
        assert run_serial(config).events == []
        assert run_baseline(config).events == []

    def test_summary_marks_legacy_cache(self):
        assert "legacy-cache" in EvolutionConfig(engine=False).summary()
        assert "legacy-cache" not in EvolutionConfig().summary()
