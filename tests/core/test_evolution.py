"""Tests for the serial, event-driven, and baseline drivers."""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    Population,
    all_d,
    run_baseline,
    run_event_driven,
    run_serial,
    wsls,
)
from repro.errors import ConfigurationError


class TestConfigValidation:
    def test_defaults_are_paper_parameters(self):
        cfg = EvolutionConfig()
        assert cfg.rounds == 200
        assert cfg.pc_rate == 0.10
        assert cfg.mutation_rate == 0.05
        assert list(cfg.payoff.vector) == [3, 0, 4, 1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(memory_steps=0),
            dict(n_ssets=1),
            dict(generations=-1),
            dict(agents_per_sset=0),
            dict(rounds=0),
            dict(pc_rate=1.5),
            dict(mutation_rate=-0.1),
            dict(beta=-1),
            dict(noise=2),
            dict(record_every=-5),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EvolutionConfig(**kwargs)

    def test_with_updates(self):
        cfg = EvolutionConfig().with_updates(n_ssets=128)
        assert cfg.n_ssets == 128
        assert cfg.rounds == 200

    def test_population_size(self):
        cfg = EvolutionConfig(n_ssets=10, agents_per_sset=7)
        assert cfg.population_size == 70

    def test_is_stochastic(self):
        assert not EvolutionConfig().is_stochastic
        assert EvolutionConfig(noise=0.01).is_stochastic
        assert EvolutionConfig(mixed_strategies=True).is_stochastic


class TestTrajectoryEquivalence:
    """The paper-critical property: all drivers walk the same Markov chain."""

    @pytest.mark.parametrize("seed", [1, 7, 2013])
    def test_serial_equals_event_driven(self, seed, small_config):
        cfg = small_config.with_updates(seed=seed)
        r1 = run_serial(cfg)
        r2 = run_event_driven(cfg)
        assert r1.events == r2.events
        assert np.array_equal(
            r1.population.strategy_matrix(), r2.population.strategy_matrix()
        )
        assert r1.n_adoptions == r2.n_adoptions
        assert r1.n_mutations == r2.n_mutations

    def test_event_driven_batch_size_invariance(self, small_config):
        r1 = run_event_driven(small_config, batch_size=17)
        r2 = run_event_driven(small_config, batch_size=1 << 16)
        assert r1.events == r2.events
        assert np.array_equal(
            r1.population.strategy_matrix(), r2.population.strategy_matrix()
        )

    def test_baseline_matches_sset_drivers(self):
        # agents_per_sset=1 makes the traditional algorithm's population
        # identical; fitness values agree because games are deterministic.
        cfg = EvolutionConfig(
            n_ssets=8, generations=400, rounds=32, agents_per_sset=1, seed=5
        )
        ref = run_serial(cfg)
        base = run_baseline(cfg)
        assert ref.events == base.events
        assert np.array_equal(
            ref.population.strategy_matrix(), base.population.strategy_matrix()
        )

    def test_stochastic_equivalence_with_noise(self):
        # Lazy fitness means both drivers consume the games stream only at
        # events, so even noisy runs match exactly.
        cfg = EvolutionConfig(
            n_ssets=8, generations=500, rounds=16, noise=0.05, seed=3
        )
        r1 = run_serial(cfg)
        r2 = run_event_driven(cfg)
        assert r1.events == r2.events

    def test_mixed_strategy_equivalence(self):
        cfg = EvolutionConfig(
            n_ssets=8, generations=300, rounds=16, mixed_strategies=True, seed=4
        )
        r1 = run_serial(cfg)
        r2 = run_event_driven(cfg)
        assert r1.events == r2.events


class TestDynamicsBehaviour:
    def test_population_size_constant(self, small_config):
        result = run_event_driven(small_config)
        assert len(result.population) == small_config.n_ssets
        assert result.population.histogram.total == small_config.n_ssets

    def test_event_rates_match_configuration(self):
        cfg = EvolutionConfig(n_ssets=8, generations=20_000, rounds=8, seed=11)
        result = run_event_driven(cfg)
        # Binomial(20000, 0.1) and (20000, 0.05): allow 5 sigma.
        assert abs(result.n_pc_events - 2000) < 5 * np.sqrt(20_000 * 0.1 * 0.9)
        assert abs(result.n_mutations - 1000) < 5 * np.sqrt(20_000 * 0.05 * 0.95)

    def test_zero_rates_freeze_population(self):
        cfg = EvolutionConfig(
            n_ssets=8, generations=5_000, rounds=8, pc_rate=0, mutation_rate=0
        )
        result = run_event_driven(cfg)
        assert result.n_pc_events == 0
        assert result.n_mutations == 0
        first = result.snapshots[0].strategy_matrix
        last = result.snapshots[-1].strategy_matrix
        assert np.array_equal(first, last)

    def test_learner_adopts_fitter_teacher_only(self, small_config):
        result = run_event_driven(small_config)
        for ev in result.events:
            if ev.kind == "pc" and ev.applied:
                assert ev.teacher_fitness > ev.learner_fitness

    def test_selection_drives_out_weak_strategies(self):
        # Start from 4 ALLD vs 12 WSLS.  At that split WSLS is fitter
        # (11*300 + 4*50 = 3500 vs 3*100 + 12*250 = 3300 at 100 rounds) and
        # its advantage grows as it spreads, so selection should fix it.
        strategies = [all_d(1)] * 4 + [wsls(1)] * 12
        pop = Population.from_strategies(strategies)
        cfg = EvolutionConfig(
            n_ssets=16,
            generations=4_000,
            rounds=100,
            mutation_rate=0.0,
            pc_rate=0.2,
            beta=1.0,
            seed=21,
        )
        result = run_serial(cfg, population=pop)
        assert result.population.share_of(wsls(1)) > 0.5

    def test_snapshots_alignment(self):
        cfg = EvolutionConfig(
            n_ssets=8, generations=1_000, rounds=8, record_every=100, seed=2
        )
        r1 = run_serial(cfg)
        r2 = run_event_driven(cfg)
        gens1 = [s.generation for s in r1.snapshots]
        gens2 = [s.generation for s in r2.snapshots]
        assert gens1 == gens2
        for s1, s2 in zip(r1.snapshots, r2.snapshots):
            assert np.array_equal(s1.strategy_matrix, s2.strategy_matrix)

    def test_summary_mentions_dominant(self, small_config):
        result = run_event_driven(small_config)
        assert "dominant strategy" in result.summary()

    def test_zero_generations(self):
        cfg = EvolutionConfig(n_ssets=4, generations=0, rounds=8)
        result = run_serial(cfg)
        assert result.generations_run == 0
        assert result.events == []


class TestBaselineRestrictions:
    def test_baseline_rejects_stochastic(self):
        with pytest.raises(NotImplementedError):
            run_baseline(EvolutionConfig(noise=0.1, n_ssets=4, generations=10))

    def test_baseline_is_slower_than_cached_driver(self):
        cfg = EvolutionConfig(n_ssets=12, generations=300, rounds=100, seed=9)
        fast = run_event_driven(cfg)
        slow = run_baseline(cfg)
        # Same science...
        assert fast.events == slow.events
        # ... but the cached driver avoids replaying games.
        assert fast.cache_hits > 0
