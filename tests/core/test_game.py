"""Tests for the scalar game engine against known IPD results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PAPER_PAYOFF,
    GameResult,
    Strategy,
    all_c,
    all_d,
    grim,
    gtft,
    play_game,
    round_robin,
    tft,
    wsls,
)
from repro.errors import ConfigurationError, StrategyError
from repro.rng import make_rng


class TestKnownMatchups:
    def test_allc_vs_allc(self):
        r = play_game(all_c(1), all_c(1), 100)
        assert r.payoff_a == r.payoff_b == 300
        assert r.cooperation_rate == 1.0

    def test_alld_vs_alld(self):
        r = play_game(all_d(1), all_d(1), 100)
        assert r.payoff_a == r.payoff_b == 100
        assert r.cooperation_rate == 0.0

    def test_allc_vs_alld(self):
        r = play_game(all_c(1), all_d(1), 100)
        assert r.payoff_a == 0  # sucker every round
        assert r.payoff_b == 400  # temptation every round

    def test_tft_vs_alld_loses_only_first_round(self):
        # TFT cooperates once (S=0), then mutual defection (P=1).
        r = play_game(tft(1), all_d(1), 200)
        assert r.payoff_a == 199
        assert r.payoff_b == 4 + 199

    def test_tft_vs_tft_all_cooperate(self):
        r = play_game(tft(1), tft(1), 200)
        assert r.payoff_a == r.payoff_b == 600

    def test_wsls_vs_alld_alternates(self):
        # WSLS: C (S), shift to D (P), shift to C (S), ... vs ALLD.
        r = play_game(wsls(1), all_d(1), 4)
        assert r.payoff_a == 0 + 1 + 0 + 1
        assert r.payoff_b == 4 + 1 + 4 + 1

    def test_grim_punishes_forever(self):
        # Opponent defects once (via a one-shot defector built by hand).
        table = np.array([1, 0, 0, 0], dtype=np.uint8)  # defect only at start
        defect_once = Strategy(table, 1)
        r = play_game(grim(1), defect_once, 50, record_moves=True)
        # After the opening defection, grim defects for the rest of the game.
        assert (r.moves[2:, 0] == 1).all()

    def test_first_move_comes_from_state_zero(self):
        # A strategy that defects only in state 0 defects exactly on move 1
        # against ALLC (afterwards state is DC=2 -> cooperate, then CC=0 ...).
        table = np.array([1, 0, 0, 0], dtype=np.uint8)
        r = play_game(Strategy(table, 1), all_c(1), 4, record_moves=True)
        np.testing.assert_array_equal(r.moves[:, 0], [1, 0, 1, 0])


class TestResultMetadata:
    def test_mean_payoffs(self):
        r = play_game(all_c(1), all_c(1), 50)
        assert r.mean_payoff_a == pytest.approx(3.0)
        assert r.mean_payoff_b == pytest.approx(3.0)

    def test_moves_recorded_shape_and_readonly(self):
        r = play_game(tft(1), all_d(1), 10, record_moves=True)
        assert r.moves.shape == (10, 2)
        with pytest.raises(ValueError):
            r.moves[0, 0] = 0

    def test_moves_not_recorded_by_default(self):
        assert play_game(tft(1), all_d(1), 10).moves is None


class TestValidation:
    def test_memory_mismatch_rejected(self):
        with pytest.raises(StrategyError):
            play_game(tft(1), tft(2), 10)

    def test_zero_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            play_game(tft(1), tft(1), 0)

    def test_noise_needs_rng(self):
        with pytest.raises(ConfigurationError):
            play_game(tft(1), tft(1), 10, noise=0.1)

    def test_mixed_needs_rng(self):
        with pytest.raises(ConfigurationError):
            play_game(gtft(0.3, 1), tft(1), 10)

    def test_noise_out_of_range(self):
        with pytest.raises(ConfigurationError):
            play_game(tft(1), tft(1), 10, noise=1.5, rng=make_rng(0))


class TestNoise:
    def test_noise_one_inverts_alld_into_allc(self):
        # With noise=1 every move flips deterministically.
        r = play_game(all_d(1), all_d(1), 20, noise=1.0, rng=make_rng(0))
        assert r.cooperation_rate == 1.0
        assert r.payoff_a == 60

    def test_noise_breaks_tft_cooperation(self):
        # A single error locks TFT-vs-TFT into alternating/defecting play:
        # long-run cooperation drifts toward 50%.
        r = play_game(tft(1), tft(1), 2000, noise=0.01, rng=make_rng(42))
        assert 0.3 < r.cooperation_rate < 0.8

    def test_wsls_recovers_from_errors(self):
        r_wsls = play_game(wsls(1), wsls(1), 2000, noise=0.01, rng=make_rng(42))
        r_tft = play_game(tft(1), tft(1), 2000, noise=0.01, rng=make_rng(42))
        assert r_wsls.cooperation_rate > r_tft.cooperation_rate


class TestMemoryTwoPlus:
    def test_tf2t_forgives_single_defection(self):
        from repro.core import tf2t

        table = np.zeros(4, dtype=np.uint8)
        table[0] = 1  # defect at start only
        once = Strategy(table, 1).lift(2)
        r = play_game(tf2t(2), once, 30, record_moves=True)
        # TF2T never defects: single defections are forgiven.
        assert (r.moves[:, 0] == 0).all()

    @given(n=st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_lifted_strategies_play_identically(self, n):
        rng = make_rng(n)
        from repro.core import random_pure

        a = random_pure(rng, 1)
        b = random_pure(rng, 1)
        base = play_game(a, b, 60)
        lifted = play_game(a.lift(n), b.lift(n), 60)
        assert base.payoff_a == lifted.payoff_a
        assert base.payoff_b == lifted.payoff_b


class TestRoundRobin:
    def test_matrix_shape_and_diagonal(self):
        strategies = [all_c(1), all_d(1), tft(1)]
        m = round_robin(strategies, rounds=10)
        assert m.shape == (3, 3)
        assert m[0, 0] == 30  # ALLC self-play

    def test_exclude_self(self):
        m = round_robin([all_c(1), all_d(1)], rounds=10, include_self=False)
        assert m[0, 0] == 0 and m[1, 1] == 0
        assert m[1, 0] == 40

    def test_payoff_conservation_symmetry(self):
        # For deterministic play, m[i,j] + m[j,i] equals the game's total.
        strategies = [all_c(1), all_d(1), tft(1), wsls(1), grim(1)]
        m = round_robin(strategies, rounds=40)
        for i in range(5):
            for j in range(5):
                r = play_game(strategies[i], strategies[j], 40)
                assert m[i, j] == r.payoff_a
                assert m[j, i] == r.payoff_b


class TestPayoffBounds:
    @given(seed=st.integers(0, 2**32 - 1), rounds=st.integers(1, 80))
    @settings(max_examples=40, deadline=None)
    def test_payoffs_within_bounds(self, seed, rounds):
        from repro.core import random_pure

        rng = make_rng(seed)
        a = random_pure(rng, 2)
        b = random_pure(rng, 2)
        r = play_game(a, b, rounds)
        hi = PAPER_PAYOFF.max_per_round * rounds
        lo = PAPER_PAYOFF.min_per_round * rounds
        assert lo <= r.payoff_a <= hi
        assert lo <= r.payoff_b <= hi
        # Joint payoff per round is between 2P-ish bounds: min 2*? Actually
        # per-round sums are {6 (CC), 4 (CD/DC), 2 (DD)}.
        assert 2 * rounds <= r.payoff_a + r.payoff_b <= 6 * rounds
        assert isinstance(r, GameResult)
