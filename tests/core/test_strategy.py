"""Tests for strategies (paper Tables III, IV, V)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MEMORY_ONE_GRAY_ORDER,
    Strategy,
    all_c,
    all_d,
    all_memory_one_strategies,
    enumerate_pure_strategies,
    grim,
    gtft,
    num_states,
    paper_table_v_rows,
    random_mixed,
    random_pure,
    strategy_space_size,
    tf2t,
    tft,
    wsls,
)
from repro.errors import StrategyError
from repro.rng import make_rng


class TestConstruction:
    def test_pure_strategy_stored_uint8(self):
        s = Strategy(np.array([0, 1, 0, 1]), 1)
        assert s.is_pure
        assert s.table.dtype == np.uint8

    def test_mixed_strategy_stored_float(self):
        s = Strategy(np.array([0.5, 0.0, 1.0, 0.25]), 1)
        assert not s.is_pure

    def test_wrong_length_rejected(self):
        with pytest.raises(StrategyError):
            Strategy(np.zeros(5, dtype=np.uint8), 1)

    def test_bad_moves_rejected(self):
        with pytest.raises(StrategyError):
            Strategy(np.array([0, 1, 2, 0]), 1)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(StrategyError):
            Strategy(np.array([0.5, -0.1, 0.2, 0.3]), 1)
        with pytest.raises(StrategyError):
            Strategy(np.array([0.5, np.nan, 0.2, 0.3]), 1)

    def test_table_is_immutable(self):
        s = tft(1)
        with pytest.raises(ValueError):
            s.table[0] = 1

    def test_equality_and_hash(self):
        a = Strategy(np.array([0, 1, 1, 0]), 1)
        b = wsls(1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != tft(1)

    def test_pure_and_mixed_with_same_values_differ(self):
        pure = all_c(1)
        mixed = pure.to_mixed()
        assert pure != mixed  # different dtype -> different behaviour contract
        assert mixed.defect_probabilities().sum() == 0


class TestClassics:
    def test_wsls_natural_and_gray_bits(self):
        w = wsls(1)
        assert w.bits() == "0110"
        # The paper's Table V / Fig. 2 display order makes WSLS read 0101.
        assert w.bits(MEMORY_ONE_GRAY_ORDER) == "0101"

    def test_tft_copies_opponent(self):
        t = tft(2)
        views = np.arange(num_states(2))
        np.testing.assert_array_equal(t.table, views & 1)

    def test_grim_defects_after_any_defection(self):
        g = grim(1)
        assert list(g.table) == [0, 1, 1, 1]

    def test_tf2t_needs_memory_two(self):
        with pytest.raises(StrategyError):
            tf2t(1)
        s = tf2t(2)
        # Defect only when opponent defected in both remembered rounds.
        view_dd = (1 << 0) | (1 << 2)  # opp D most recent and previous
        assert s.table[view_dd] == 1
        assert s.table[1] == 0  # only most recent defection

    def test_gtft_is_mixed_and_generous(self):
        g = gtft(1 / 3, 1)
        assert not g.is_pure
        probs = g.defect_probabilities()
        assert probs[0] == 0.0  # after opponent C: cooperate
        assert probs[1] == pytest.approx(2 / 3)  # after opponent D: forgive 1/3

    def test_gtft_generosity_bounds(self):
        with pytest.raises(StrategyError):
            gtft(1.5, 1)

    def test_wsls_uses_own_history_tft_does_not(self):
        assert wsls(1).responds_to_own_history()
        assert not tft(1).responds_to_own_history()

    def test_table_v_rows(self):
        rows = paper_table_v_rows()
        assert [bits for _, bits, _ in rows] == ["00", "01", "11", "10"]
        assert [move for _, _, move in rows] == [0, 1, 0, 1]


class TestLift:
    def test_lift_preserves_play(self):
        from repro.core import play_game

        base = wsls(1)
        lifted = base.lift(3)
        opp = tft(3)
        r1 = play_game(base.lift(3), opp, 64)
        r2 = play_game(lifted, opp, 64)
        assert r1.payoff_a == r2.payoff_a

    def test_lift_identity(self):
        s = tft(2)
        assert s.lift(2) is s

    def test_lift_down_rejected(self):
        with pytest.raises(StrategyError):
            wsls(2).lift(1)

    @given(n_from=st.integers(1, 2), n_to=st.integers(2, 4))
    @settings(max_examples=20)
    def test_lift_table_only_reads_recent_rounds(self, n_from, n_to):
        if n_to < n_from:
            n_to = n_from
        rng = make_rng(5)
        s = random_pure(rng, n_from)
        lifted = s.lift(n_to)
        mask = num_states(n_from) - 1
        for v in range(0, num_states(n_to), 7):
            assert lifted.table[v] == s.table[v & mask]


class TestSpaceSize:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 2**4), (2, 2**16), (3, 2**64), (4, 2**256), (5, 2**1024), (6, 2**4096)],
    )
    def test_table4_from_formula(self, n, expected):
        # n=4 and n=5 deviate from the paper's printed (inconsistent) rows;
        # see DESIGN.md section 3.
        assert strategy_space_size(n) == expected

    def test_enumeration_memory_one(self):
        strategies = all_memory_one_strategies()
        assert len(strategies) == 16
        assert len({s.key() for s in strategies}) == 16

    def test_enumeration_covers_classics(self):
        keys = {s.key() for s in all_memory_one_strategies()}
        for classic in (all_c(1), all_d(1), tft(1), wsls(1), grim(1)):
            assert classic.key() in keys

    def test_enumeration_blows_up_gracefully(self):
        # memory-3 would be 2**64 strategies; the generator must refuse.
        with pytest.raises(StrategyError):
            list(enumerate_pure_strategies(3))

    def test_memory_two_enumeration_allowed_lazily(self):
        # memory-2 (2**16 strategies) is feasible; take just a few.
        import itertools

        first = list(itertools.islice(enumerate_pure_strategies(2), 3))
        assert [s.bits() for s in first] == [
            "0" * 16,
            "1" + "0" * 15,
            "01" + "0" * 14,
        ]


class TestRandomGeneration:
    def test_random_pure_reproducible(self):
        a = random_pure(make_rng(3), 2)
        b = random_pure(make_rng(3), 2)
        assert a == b

    def test_random_pure_covers_space(self):
        rng = make_rng(0)
        seen = {random_pure(rng, 1).key() for _ in range(400)}
        assert len(seen) == 16  # all memory-one strategies appear

    def test_random_mixed_in_unit_interval(self):
        s = random_mixed(make_rng(1), 2)
        probs = s.defect_probabilities()
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_move_sampling_requires_rng_for_mixed(self):
        s = random_mixed(make_rng(1), 1)
        with pytest.raises(StrategyError):
            s.move(0)


class TestDisplay:
    def test_letters(self):
        assert all_d(1).letters() == "DDDD"
        assert wsls(1).letters() == "CDDC"

    def test_bits_rejected_for_mixed(self):
        with pytest.raises(StrategyError):
            gtft(0.3, 1).bits()

    def test_describe_mentions_every_state(self):
        text = wsls(1).describe()
        assert text.count("state") == 4
