"""Tests for the vectorised one-vs-many Markov kernel and expected-fitness mode."""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    PayoffCache,
    StrategyHistogram,
    expected_payoffs,
    gtft,
    random_mixed,
    random_pure,
    run_event_driven,
    run_serial,
    tft,
    wsls,
)
from repro.core.markov import expected_payoffs_many
from repro.rng import make_rng


class TestBatchKernel:
    @pytest.mark.parametrize("noise", [0.0, 0.02])
    def test_matches_scalar_markov(self, noise):
        rng = make_rng(3)
        a = random_pure(rng, 2)
        opponents = [random_pure(rng, 2) for _ in range(7)]
        to_a, to_b = expected_payoffs_many(a, opponents, 60, noise=noise)
        for i, b in enumerate(opponents):
            ref_a, ref_b, _ = expected_payoffs(a, b, 60, noise=noise)
            assert to_a[i] == pytest.approx(ref_a)
            assert to_b[i] == pytest.approx(ref_b)

    def test_mixed_strategies(self):
        rng = make_rng(5)
        a = gtft(0.3, 1)
        opponents = [random_mixed(rng, 1) for _ in range(5)]
        to_a, _ = expected_payoffs_many(a, opponents, 40)
        for i, b in enumerate(opponents):
            ref_a, _, _ = expected_payoffs(a, b, 40)
            assert to_a[i] == pytest.approx(ref_a)

    def test_empty_opponents(self):
        to_a, to_b = expected_payoffs_many(tft(1), [], 10)
        assert to_a.shape == (0,) and to_b.shape == (0,)


class TestExpectedCache:
    def test_expected_mode_caches_noisy_pairs(self):
        cache = PayoffCache(rounds=50, noise=0.05, expected=True)
        first = cache.pair_payoffs(tft(1), wsls(1))
        second = cache.pair_payoffs(tft(1), wsls(1))
        assert first == second
        assert cache.hits == 1

    def test_payoffs_to_many_consistent_with_pairs(self):
        cache = PayoffCache(rounds=50, noise=0.02, expected=True)
        opponents = [tft(1), wsls(1), random_pure(make_rng(1), 1)]
        batch = cache.payoffs_to_many(wsls(1), opponents)
        for i, b in enumerate(opponents):
            assert batch[i] == pytest.approx(cache.payoff_to(wsls(1), b))

    def test_histogram_fitness_expected_mode(self):
        hist = StrategyHistogram.from_strategies([tft(1), tft(1), wsls(1)])
        cache = PayoffCache(rounds=50, noise=0.01, expected=True)
        fit = hist.fitness_of(wsls(1), cache)
        expected = (
            2 * expected_payoffs(wsls(1), tft(1), 50, noise=0.01)[0]
            + expected_payoffs(wsls(1), wsls(1), 50, noise=0.01)[0]
            - expected_payoffs(wsls(1), wsls(1), 50, noise=0.01)[0]
        )
        assert fit == pytest.approx(expected)


class TestExpectedFitnessEvolution:
    def test_noisy_runs_deterministic(self):
        cfg = EvolutionConfig(
            n_ssets=12, generations=2_000, rounds=32, noise=0.02,
            expected_fitness=True, seed=8,
        )
        a = run_event_driven(cfg)
        b = run_event_driven(cfg)
        assert a.events == b.events
        assert not cfg.is_stochastic  # expectation replaces sampling

    def test_serial_equals_event_driven_with_expected_fitness(self):
        cfg = EvolutionConfig(
            n_ssets=10, generations=1_500, rounds=32, noise=0.02,
            expected_fitness=True, seed=9,
        )
        assert run_serial(cfg).events == run_event_driven(cfg).events

    def test_mixed_population_evolves(self):
        cfg = EvolutionConfig(
            n_ssets=8, generations=3_000, rounds=32,
            mixed_strategies=True, expected_fitness=True, seed=10,
        )
        result = run_event_driven(cfg)
        assert result.n_mutations > 0
        matrix = result.population.strategy_matrix()
        assert matrix.dtype == np.float64
        assert ((matrix >= 0) & (matrix <= 1)).all()
