"""Array-namespace seam (:mod:`repro.xp`): resolution, fallback, capabilities.

The seam's contract: ``"numpy"`` resolves to the identity backend, a
missing accelerator stack falls back to NumPy *with a note* (never an
ImportError at resolution time), a typo'd name fails loudly, and
``segment_reduce`` is bit-identical to the engines' historical
``np.add.reduceat`` on both code paths for the integer-exact payoffs it
serves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.xp import KNOWN_BACKENDS, ArrayBackend, get_array_backend


class TestResolution:
    def test_default_is_numpy(self):
        xb = get_array_backend()
        assert xb.requested == "numpy"
        assert xb.resolved == "numpy"
        assert xb.note is None
        assert xb.is_numpy
        assert xb.xp is np
        assert xb.describe() == "numpy"

    def test_none_means_numpy(self):
        assert get_array_backend(None) is get_array_backend("numpy")

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown array backend"):
            get_array_backend("torch")

    def test_resolution_is_cached_per_name(self):
        assert get_array_backend("numpy") is get_array_backend("numpy")

    @pytest.mark.parametrize(
        "name", [n for n in KNOWN_BACKENDS if n != "numpy"]
    )
    def test_accelerator_fallback_is_clean_and_annotated(self, name):
        # When the stack is importable the backend resolves to it; when it
        # is not, resolution lands on numpy with a note naming the missing
        # stack.  Either way, no exception escapes.
        xb = get_array_backend(name)
        assert xb.requested == name
        if xb.resolved == name:
            assert xb.note is None
            assert xb.describe() == name
        else:
            assert xb.resolved == "numpy"
            assert xb.is_numpy
            assert name in xb.note
            assert "unavailable" in xb.note
            assert xb.describe().startswith("numpy (")


class TestTransfers:
    def test_numpy_transfers_are_identity(self):
        xb = get_array_backend()
        arr = np.arange(5)
        assert xb.to_device(arr) is arr
        assert xb.to_host(arr) is arr

    def test_zeros(self):
        z = get_array_backend().zeros((2, 3), np.float32)
        assert z.shape == (2, 3)
        assert z.dtype == np.float32
        assert not z.any()


def _segments():
    rng = np.random.default_rng(7)
    values = rng.integers(0, 5, size=23).astype(np.float64)
    # CSR-style offsets; the engines never build empty segments.
    seg = np.array([0, 4, 9, 15, 23], dtype=np.int64)
    return values, seg


class TestSegmentReduce:
    def test_numpy_path_is_reduceat(self):
        values, seg = _segments()
        got = get_array_backend().segment_reduce(values, seg)
        assert np.array_equal(got, np.add.reduceat(values, seg[:-1]))

    def test_cumsum_fallback_matches_reduceat_on_integer_data(self):
        # A backend whose ``resolved`` is not "numpy" but whose namespace
        # module is NumPy drives the cumsum-difference branch with host
        # arrays — the non-reduceat path accelerator namespaces take.
        fake = ArrayBackend("cupy", "fake", np, None)
        values, seg = _segments()
        got = fake.segment_reduce(values, seg)
        assert np.array_equal(got, np.add.reduceat(values, seg[:-1]))

    def test_single_segment(self):
        values, _ = _segments()
        seg = np.array([0, values.shape[0]], dtype=np.int64)
        for xb in (get_array_backend(), ArrayBackend("jax", "fake", np, None)):
            assert np.array_equal(
                xb.segment_reduce(values, seg), np.array([values.sum()])
            )
