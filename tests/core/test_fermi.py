"""Tests for the Fermi pairwise-comparison rule (paper Eq. 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import fermi_probability
from repro.errors import ConfigurationError


class TestFermi:
    def test_equal_fitness_is_coin_flip(self):
        assert fermi_probability(10.0, 10.0, 1.0) == pytest.approx(0.5)

    def test_zero_beta_is_random(self):
        # "A small beta leads to almost random strategy selection."
        assert fermi_probability(1e6, 0.0, 0.0) == pytest.approx(0.5)

    def test_large_beta_is_deterministic(self):
        # "As beta approaches infinity, the better strategy will always be
        # adopted."
        assert fermi_probability(11.0, 10.0, 1e6) == pytest.approx(1.0)
        assert fermi_probability(10.0, 11.0, 1e6) == pytest.approx(0.0)

    def test_matches_formula(self):
        beta, t, l = 0.25, 7.0, 3.0
        expected = 1.0 / (1.0 + math.exp(-beta * (t - l)))
        assert fermi_probability(t, l, beta) == pytest.approx(expected)

    def test_negative_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            fermi_probability(1.0, 0.0, -1.0)

    @given(
        t=st.floats(-1e8, 1e8),
        l=st.floats(-1e8, 1e8),
        beta=st.floats(0, 100),
    )
    def test_always_a_probability(self, t, l, beta):
        p = fermi_probability(t, l, beta)
        assert 0.0 <= p <= 1.0

    @given(t=st.floats(-1e6, 1e6), l=st.floats(-1e6, 1e6))
    def test_symmetry(self, t, l):
        # p(T beats L) + p(L beats T) == 1 for the plain Fermi function.
        beta = 0.01
        assert fermi_probability(t, l, beta) + fermi_probability(
            l, t, beta
        ) == pytest.approx(1.0)

    def test_no_overflow_for_huge_gaps(self):
        assert fermi_probability(0.0, 1e308, 10.0) == 0.0
        assert fermi_probability(1e308, 0.0, 10.0) == 1.0
