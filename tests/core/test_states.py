"""Tests for memory-n state encoding (paper Tables II and V)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MEMORY_ONE_GRAY_ORDER,
    advance_view,
    encode_round,
    history_to_view,
    num_states,
    state_table,
    swap_perspective,
    swap_perspective_array,
    view_mask,
    view_to_history,
)
from repro.errors import ConfigurationError


class TestCounts:
    @pytest.mark.parametrize("n,expected", [(1, 4), (2, 16), (3, 64), (6, 4096)])
    def test_num_states_is_4_pow_n(self, n, expected):
        assert num_states(n) == expected

    def test_mask(self):
        assert view_mask(1) == 0b11
        assert view_mask(3) == 0b111111

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "two"])
    def test_invalid_memory_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            num_states(bad)


class TestEncoding:
    def test_encode_round_codes(self):
        assert encode_round(0, 0) == 0  # CC
        assert encode_round(0, 1) == 1  # CD
        assert encode_round(1, 0) == 2  # DC
        assert encode_round(1, 1) == 3  # DD

    def test_advance_drops_oldest(self):
        # memory-1: only the newest round survives
        v = advance_view(0, 1, 1, 1)
        assert v == 3
        v = advance_view(v, 0, 0, 1)
        assert v == 0

    def test_advance_keeps_n_rounds(self):
        v = 0
        v = advance_view(v, 1, 0, 2)  # DC
        v = advance_view(v, 0, 1, 2)  # CD
        # most recent round (CD) in low bits, older (DC) above it
        assert v == (encode_round(1, 0) << 2) | encode_round(0, 1)

    def test_roundtrip_history(self):
        for view in range(num_states(3)):
            hist = view_to_history(view, 3)
            assert history_to_view(hist, 3) == view

    def test_history_most_recent_first(self):
        v = advance_view(0, 1, 1, 2)  # now: newest DD, older CC
        hist = view_to_history(v, 2)
        assert hist[0] == (1, 1)
        assert hist[1] == (0, 0)

    def test_view_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            view_to_history(4, 1)

    def test_bad_history_rejected(self):
        with pytest.raises(ConfigurationError):
            history_to_view([(0, 2)], 1)
        with pytest.raises(ConfigurationError):
            history_to_view([(0, 0), (0, 0)], 1)


class TestPerspectiveSwap:
    def test_swap_memory_one(self):
        assert swap_perspective(encode_round(0, 1), 1) == encode_round(1, 0)
        assert swap_perspective(encode_round(1, 1), 1) == encode_round(1, 1)

    @given(view=st.integers(0, 4**3 - 1))
    def test_swap_is_involution(self, view):
        assert swap_perspective(swap_perspective(view, 3), 3) == view

    @given(view=st.integers(0, 4**4 - 1))
    @settings(max_examples=50)
    def test_swap_transposes_history(self, view):
        swapped = swap_perspective(view, 4)
        hist = view_to_history(view, 4)
        hist_swapped = view_to_history(swapped, 4)
        assert hist_swapped == [(opp, my) for my, opp in hist]

    def test_array_swap_matches_scalar(self):
        views = np.arange(num_states(3))
        swapped = swap_perspective_array(views, 3)
        expected = np.array([swap_perspective(int(v), 3) for v in views])
        np.testing.assert_array_equal(swapped, expected)


class TestConsistencyWithGamePlay:
    @given(
        moves=st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=3, max_size=12
        )
    )
    @settings(max_examples=50)
    def test_two_players_views_stay_mirrored(self, moves):
        n = 2
        view_a = view_b = 0
        for my, opp in moves:
            view_a = advance_view(view_a, my, opp, n)
            view_b = advance_view(view_b, opp, my, n)
            assert view_b == swap_perspective(view_a, n)


class TestStateTables:
    def test_table2_memory_one_states(self):
        # Paper Table II: CC, CD, DC, DD in natural order.
        rows = state_table(1)
        assert [r.letters() for r in rows] == ["CC", "CD", "DC", "DD"]

    def test_table5_gray_order(self):
        rows = state_table(1, order=MEMORY_ONE_GRAY_ORDER)
        assert [r.bits() for r in rows] == ["00", "01", "11", "10"]

    def test_bad_order_rejected(self):
        with pytest.raises(ConfigurationError):
            state_table(1, order=(0, 1, 2, 2))

    def test_memory_two_count(self):
        assert len(state_table(2)) == 16
