"""Tests for the payoff matrix (paper Table I)."""

import numpy as np
import pytest

from repro.core import PAPER_PAYOFF, PayoffMatrix
from repro.errors import ConfigurationError


class TestPaperValues:
    def test_paper_values(self):
        assert PAPER_PAYOFF.reward == 3
        assert PAPER_PAYOFF.sucker == 0
        assert PAPER_PAYOFF.temptation == 4
        assert PAPER_PAYOFF.punishment == 1

    def test_vector_order_is_2my_plus_opp(self):
        # index 0=CC, 1=CD, 2=DC, 3=DD from the focal player's perspective
        assert list(PAPER_PAYOFF.vector) == [3, 0, 4, 1]

    def test_payoff_lookup(self):
        assert PAPER_PAYOFF.payoff(0, 0) == 3
        assert PAPER_PAYOFF.payoff(0, 1) == 0
        assert PAPER_PAYOFF.payoff(1, 0) == 4
        assert PAPER_PAYOFF.payoff(1, 1) == 1

    def test_both_returns_each_side(self):
        assert PAPER_PAYOFF.both(0, 1) == (0, 4)
        assert PAPER_PAYOFF.both(1, 1) == (1, 1)

    def test_table_layout_matches_table1(self):
        table = PAPER_PAYOFF.as_table()
        assert table[0][0] == (3, 3)  # CC -> (R, R)
        assert table[0][1] == (0, 4)  # CD -> (S, T)
        assert table[1][0] == (4, 0)  # DC -> (T, S)
        assert table[1][1] == (1, 1)  # DD -> (P, P)


class TestDilemmaValidation:
    def test_rejects_non_dilemma(self):
        with pytest.raises(ConfigurationError):
            PayoffMatrix(reward=5, sucker=0, temptation=4, punishment=1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(reward=3, sucker=3, temptation=4, punishment=1),  # S == R chain broken
            dict(reward=1, sucker=0, temptation=4, punishment=1),  # R == P
            dict(reward=3, sucker=0, temptation=3, punishment=1),  # T == R
        ],
    )
    def test_rejects_degenerate_orderings(self, kwargs):
        with pytest.raises(ConfigurationError):
            PayoffMatrix(**kwargs)

    def test_non_dilemma_allowed_when_opted_out(self):
        snowdrift = PayoffMatrix(
            reward=3, sucker=1, temptation=4, punishment=0, require_dilemma=False
        )
        assert snowdrift.payoff(1, 1) == 0

    def test_extremes(self):
        assert PAPER_PAYOFF.max_per_round == 4
        assert PAPER_PAYOFF.min_per_round == 0


class TestImmutability:
    def test_vector_read_only(self):
        with pytest.raises(ValueError):
            PAPER_PAYOFF.vector[0] = 99

    def test_key_is_hashable_identity(self):
        a = PayoffMatrix()
        b = PayoffMatrix()
        assert a.key() == b.key()
        assert {a.key(): 1}[b.key()] == 1

    def test_vector_dtype(self):
        assert PAPER_PAYOFF.vector.dtype == np.float64
