"""Tests for EvolutionConfig.to_dict / from_dict round-tripping."""

import json

import pytest

from repro.core import EvolutionConfig, PayoffMatrix
from repro.errors import ConfigurationError
from repro.structure import build_structure


class TestRoundTrip:
    def test_default_config(self):
        config = EvolutionConfig()
        assert EvolutionConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = EvolutionConfig(
            memory_steps=2,
            n_ssets=32,
            generations=5_000,
            rounds=100,
            pc_rate=0.2,
            mutation_rate=0.01,
            noise=0.05,
            expected_fitness=True,
            seed=424242,
        )
        wire = json.loads(json.dumps(config.to_dict()))
        assert EvolutionConfig.from_dict(wire) == config

    def test_structure_spec_round_trip(self):
        config = EvolutionConfig(structure="ring:k=4", n_ssets=16)
        restored = EvolutionConfig.from_dict(config.to_dict())
        assert restored.structure == config.canonical_structure()
        assert restored == config.with_updates(
            structure=config.canonical_structure()
        )

    def test_graph_structure_spec_round_trip(self):
        for spec in ("grid:rows=4,cols=4", "smallworld:k=4,p=0.1,seed=7"):
            config = EvolutionConfig(structure=spec, n_ssets=16)
            restored = EvolutionConfig.from_dict(config.to_dict())
            # Same adjacency: build both and compare canonical forms.
            assert restored.canonical_structure() == config.canonical_structure()

    def test_custom_payoff_round_trip(self):
        payoff = PayoffMatrix(
            reward=4.0, sucker=0.5, temptation=5.5, punishment=1.5
        )
        config = EvolutionConfig(payoff=payoff)
        restored = EvolutionConfig.from_dict(config.to_dict())
        assert restored.payoff == payoff

    def test_to_dict_is_json_compatible(self):
        data = EvolutionConfig(structure="grid").to_dict()
        json.dumps(data)  # must not raise
        assert all(isinstance(k, str) for k in data)

    def test_payoff_as_list(self):
        data = EvolutionConfig().to_dict()
        data["payoff"] = [3.0, 0.0, 5.0, 1.0]
        config = EvolutionConfig.from_dict(data)
        assert config.payoff.reward == 3.0
        assert config.payoff.punishment == 1.0


class TestValidation:
    def test_unknown_field_named(self):
        data = EvolutionConfig().to_dict()
        data["typo_field"] = 1
        with pytest.raises(ConfigurationError, match="typo_field"):
            EvolutionConfig.from_dict(data)

    def test_bad_int_named(self):
        data = EvolutionConfig().to_dict()
        data["generations"] = "many"
        with pytest.raises(ConfigurationError, match="generations"):
            EvolutionConfig.from_dict(data)

    def test_bool_rejected_for_int_field(self):
        data = EvolutionConfig().to_dict()
        data["n_ssets"] = True
        with pytest.raises(ConfigurationError, match="n_ssets"):
            EvolutionConfig.from_dict(data)

    def test_bad_float_named(self):
        data = EvolutionConfig().to_dict()
        data["pc_rate"] = "fast"
        with pytest.raises(ConfigurationError, match="pc_rate"):
            EvolutionConfig.from_dict(data)

    def test_bad_bool_named(self):
        data = EvolutionConfig().to_dict()
        data["expected_fitness"] = "yes"
        with pytest.raises(ConfigurationError, match="expected_fitness"):
            EvolutionConfig.from_dict(data)

    def test_bad_payoff_key_named(self):
        data = EvolutionConfig().to_dict()
        data["payoff"] = {"reward": 3.0, "bogus": 1.0}
        with pytest.raises(ConfigurationError, match="bogus"):
            EvolutionConfig.from_dict(data)

    def test_structure_instance_rejected(self):
        data = EvolutionConfig().to_dict()
        data["structure"] = build_structure("well-mixed", 8)
        with pytest.raises(ConfigurationError, match="structure"):
            EvolutionConfig.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            EvolutionConfig.from_dict([1, 2, 3])

    def test_semantic_validation_still_applies(self):
        data = EvolutionConfig().to_dict()
        data["n_ssets"] = -4
        with pytest.raises(ConfigurationError):
            EvolutionConfig.from_dict(data)
