"""Bit-identical mid-run checkpoint/resume across drivers and regimes.

The tentpole contract (ISSUE PR 9): a run restored from a mid-run
run-state snapshot (:mod:`repro.core.runstate`) must finish with the same
trajectory as the uninterrupted same-seed run — every event, every
recorded snapshot matrix, every counter, the final population, even the
evaluator's cache/fill statistics.  Pinned here for the serial and event
drivers and the lane-batched ensemble (shared-engine and per-lane modes),
across population structures and fitness regimes, including resume *from
the other driver's* snapshot.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import EvolutionConfig
from repro.core.evolution import run_event_driven, run_serial
from repro.core.runstate import (
    RESUME_NEUTRAL_FIELDS,
    checkpoint_scope,
    checkpointing_supported,
    unit_key,
)
from repro.ensemble.driver import run_ensemble


class MemorySink:
    """In-memory checkpoint sink with a faithful JSON round-trip.

    ``meta`` passes through ``json.dumps``/``loads`` and arrays are
    copied, so every test exercises exactly what survives the file
    format — no live references, no non-JSON types.
    """

    def __init__(self):
        self.saved = {}
        self.saves = 0

    def save(self, unit, generation, meta, arrays):
        meta = json.loads(json.dumps(meta))
        arrays = {k: np.array(v) for k, v in arrays.items()}
        self.saved.setdefault(unit, []).append((generation, meta, arrays))
        self.saves += 1

    def load_latest(self, unit):
        entries = self.saved.get(unit)
        if not entries:
            return None
        _, meta, arrays = entries[-1]
        return meta, arrays


COMMON = dict(
    n_ssets=12,
    generations=400,
    record_every=50,
    record_events=True,
    rounds=20,
    checkpoint_every=150,
)

#: (label, config-kwargs) covering the regimes the resume contract spans.
REGIMES = [
    ("det-wellmixed-m1", dict(memory_steps=1, seed=41, **COMMON)),
    ("det-ring-m2",
     dict(memory_steps=2, structure="ring:k=2", seed=42, **COMMON)),
    ("expected-noise",
     dict(memory_steps=1, expected_fitness=True, noise=0.05, seed=43,
          **COMMON)),
    ("legacy-cache", dict(memory_steps=1, engine=False, seed=44, **COMMON)),
]


def assert_same_trajectory(a, b, *, resumed_from=None):
    """``b`` must be bit-identical to ``a`` in every recorded respect."""
    assert b.resumed_from_generation == resumed_from
    assert a.events == b.events
    assert len(a.snapshots) == len(b.snapshots)
    for sa, sb in zip(a.snapshots, b.snapshots):
        assert sa.generation == sb.generation
        assert sa.dominant_share == sb.dominant_share
        assert np.array_equal(sa.strategy_matrix, sb.strategy_matrix)
    for field in ("n_pc_events", "n_adoptions", "n_mutations",
                  "generations_run", "cache_hits", "cache_misses"):
        assert getattr(a, field) == getattr(b, field), field
    for sa, sb in zip(a.population.ssets, b.population.ssets):
        assert sa.strategy.key() == sb.strategy.key()
        assert sa.adoptions == sb.adoptions
        assert sa.mutations == sb.mutations


@pytest.mark.parametrize("driver", [run_serial, run_event_driven],
                         ids=["serial", "event"])
@pytest.mark.parametrize("label,kwargs", REGIMES,
                         ids=[label for label, _ in REGIMES])
def test_resume_is_bit_identical(driver, label, kwargs):
    config = EvolutionConfig(**kwargs)
    clean = driver(config)

    sink = MemorySink()
    with checkpoint_scope(sink):
        full = driver(config)
    # An armed sink must not perturb the run it snapshots.
    assert_same_trajectory(clean, full)
    (unit,) = sink.saved
    assert [g for g, _, _ in sink.saved[unit]] == [150, 300]

    # Resume from each snapshot in turn (pin it by dropping the rest).
    for index, generation in enumerate((150, 300)):
        pinned = MemorySink()
        pinned.saved[unit] = [sink.saved[unit][index]]
        with checkpoint_scope(pinned):
            resumed = driver(config)
        assert_same_trajectory(clean, resumed, resumed_from=generation)
        # The resumed run re-writes the downstream checkpoints, so a
        # second interruption resumes from the later boundary again.
        assert [g for g, _, _ in pinned.saved[unit]] == (
            [150, 300] if generation == 150 else [300]
        )


@pytest.mark.parametrize("label,kwargs", REGIMES[:3],
                         ids=[label for label, _ in REGIMES[:3]])
def test_resume_crosses_drivers(label, kwargs):
    """A serial-written snapshot finishes bit-identically on the event
    driver and vice versa — the snapshot is driver-shape-free."""
    config = EvolutionConfig(**kwargs)
    clean = run_serial(config)
    sink = MemorySink()
    with checkpoint_scope(sink):
        run_serial(config)
    with checkpoint_scope(sink):
        resumed = run_event_driven(config)
    assert_same_trajectory(clean, resumed, resumed_from=300)

    sink = MemorySink()
    with checkpoint_scope(sink):
        run_event_driven(config)
    with checkpoint_scope(sink):
        resumed = run_serial(config)
    assert_same_trajectory(clean, resumed, resumed_from=300)


#: Ensemble regimes: shared-engine mode (compatible deterministic lanes)
#: and the per-lane generic mode (expected/noise and legacy-cache lanes).
ENSEMBLE_REGIMES = [
    ("shared-det-m1", dict(memory_steps=1, **COMMON)),
    ("shared-ring-m2", dict(memory_steps=2, structure="ring:k=2", **COMMON)),
    ("shared-blocked",
     dict(memory_steps=1, paymat_block=32, **COMMON)),
    ("generic-expected",
     dict(memory_steps=1, expected_fitness=True, noise=0.05, **COMMON)),
    ("generic-cache", dict(memory_steps=1, engine=False, **COMMON)),
]


@pytest.mark.parametrize("label,kwargs", ENSEMBLE_REGIMES,
                         ids=[label for label, _ in ENSEMBLE_REGIMES])
def test_ensemble_group_resume_is_bit_identical(label, kwargs):
    configs = [
        EvolutionConfig(seed=100 + r, **kwargs) for r in range(2)
    ]
    clean = run_ensemble(configs)

    sink = MemorySink()
    with checkpoint_scope(sink):
        full = run_ensemble(configs)
    for a, b in zip(clean, full):
        assert_same_trajectory(a, b)
    (unit,) = sink.saved
    assert [g for g, _, _ in sink.saved[unit]] == [150, 300]

    for index, generation in enumerate((150, 300)):
        pinned = MemorySink()
        pinned.saved[unit] = [sink.saved[unit][index]]
        with checkpoint_scope(pinned):
            resumed = run_ensemble(configs)
        for a, b in zip(clean, resumed):
            assert_same_trajectory(a, b, resumed_from=generation)


def test_unit_key_ignores_resume_neutral_fields():
    config = EvolutionConfig(**REGIMES[0][1])
    baseline = unit_key([config.to_dict()])
    for field, value in (
        ("checkpoint_every", 75),
        ("array_backend", "cupy"),
        ("paymat_block", 32),
        ("engine_pool_cap", 64),
    ):
        assert field in RESUME_NEUTRAL_FIELDS
        variant = config.with_updates(**{field: value})
        assert unit_key([variant.to_dict()]) == baseline
    assert unit_key([config.with_updates(seed=999).to_dict()]) != baseline


def test_resume_survives_cadence_change():
    """A different ``checkpoint_every`` still finds the snapshot (the
    field is resume-neutral) and the trajectory stays bit-identical."""
    config = EvolutionConfig(**REGIMES[0][1])
    clean = run_serial(config)
    sink = MemorySink()
    with checkpoint_scope(sink):
        run_serial(config)
    recadenced = config.with_updates(checkpoint_every=80)
    with checkpoint_scope(sink):
        resumed = run_serial(recadenced)
    assert resumed.resumed_from_generation == 300
    assert resumed.events == clean.events
    assert np.array_equal(resumed.population.strategy_matrix(),
                          clean.population.strategy_matrix())


def test_single_lane_ensemble_snapshot_does_not_confuse_serial_driver():
    """An ensemble group snapshot can land on the unit key a one-config
    serial run asks for; the serial driver must treat it as a clean miss
    (fresh start), not an error — and vice versa."""
    config = EvolutionConfig(**REGIMES[0][1])
    clean = run_serial(config)

    sink = MemorySink()
    with checkpoint_scope(sink):
        run_ensemble([config])
    with checkpoint_scope(sink):
        result = run_serial(config)
    assert result.resumed_from_generation is None
    assert result.events == clean.events

    sink = MemorySink()
    with checkpoint_scope(sink):
        run_serial(config)
    with checkpoint_scope(sink):
        (ens,) = run_ensemble([config])
    assert ens.resumed_from_generation is None
    assert ens.events == clean.events


def test_unsupported_regimes_do_not_arm():
    """Regimes outside the bit-identical contract run exactly as before,
    writing no snapshots."""
    capped = EvolutionConfig(
        n_ssets=12, generations=400, rounds=20, seed=7, noise=0.05,
        checkpoint_every=150, expected_fitness=True, engine_pool_cap=8,
    )
    assert not checkpointing_supported(capped)
    sink = MemorySink()
    with checkpoint_scope(sink):
        result = run_serial(capped)
    assert sink.saves == 0
    assert result.resumed_from_generation is None
