"""Cross-validation of the four game engines.

The scalar engine (`play_game`) is the reference; the vectorised kernel,
cycle-exact evaluator, and Markov expected-payoff evaluator must agree with
it (exactly for deterministic games, in expectation for stochastic ones).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    exact_payoffs,
    expected_payoffs,
    find_cycle,
    gtft,
    payoff_matrix,
    play_game,
    play_pairs,
    random_pure,
    tft,
    wsls,
)
from repro.rng import make_rng


def _random_pair(seed: int, memory: int):
    rng = make_rng(seed)
    return random_pure(rng, memory), random_pure(rng, memory)


class TestCycleEngine:
    @given(seed=st.integers(0, 10_000), memory=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_cycle_matches_scalar(self, seed, memory):
        a, b = _random_pair(seed, memory)
        rounds = 73
        ref = play_game(a, b, rounds)
        pay_a, pay_b, coop = exact_payoffs(a, b, rounds)
        assert pay_a == ref.payoff_a
        assert pay_b == ref.payoff_b
        assert coop == pytest.approx(ref.cooperation_rate)

    def test_cycle_structure_bounds(self):
        a, b = _random_pair(7, 2)
        cyc = find_cycle(a, b)
        assert 1 <= cyc.cycle_length <= 16
        assert 0 <= cyc.transient_length <= 16

    def test_cycle_cost_independent_of_rounds(self):
        a, b = _random_pair(11, 2)
        short = exact_payoffs(a, b, 10)
        long = exact_payoffs(a, b, 10_000_000)
        # Per-round averages converge to the cycle mean; both must be finite
        # and the long evaluation must be exact (integer-valued payoffs).
        assert long[0] == int(long[0])
        assert short[0] <= long[0]

    def test_long_game_equals_scalar_spot_check(self):
        a, b = _random_pair(13, 1)
        ref = play_game(a, b, 977)
        assert exact_payoffs(a, b, 977)[0] == ref.payoff_a


class TestMarkovEngine:
    @given(seed=st.integers(0, 10_000), memory=st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_markov_matches_scalar_deterministic(self, seed, memory):
        a, b = _random_pair(seed, memory)
        ref = play_game(a, b, 37)
        pay_a, pay_b, coop = expected_payoffs(a, b, 37)
        assert pay_a == pytest.approx(ref.payoff_a)
        assert pay_b == pytest.approx(ref.payoff_b)
        assert coop == pytest.approx(ref.cooperation_rate)

    def test_markov_matches_sampling_mean_with_noise(self):
        a, b = tft(1), tft(1)
        noise = 0.05
        rounds = 100
        exp_a, exp_b, exp_coop = expected_payoffs(a, b, rounds, noise=noise)
        rng = make_rng(2024)
        samples = [
            play_game(a, b, rounds, noise=noise, rng=rng).payoff_a
            for _ in range(800)
        ]
        assert np.mean(samples) == pytest.approx(exp_a, rel=0.03)

    def test_markov_mixed_strategy_mean(self):
        g = gtft(1 / 3, 1)
        rounds = 50
        exp_a, _, _ = expected_payoffs(g, tft(1).to_mixed(), rounds)
        rng = make_rng(7)
        samples = [
            play_game(g, tft(1), rounds, rng=rng).payoff_a for _ in range(800)
        ]
        assert np.mean(samples) == pytest.approx(exp_a, rel=0.05)


class TestVectorEngine:
    @given(seed=st.integers(0, 5_000), memory=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_pairs_match_scalar(self, seed, memory):
        rng = make_rng(seed)
        strategies = [random_pure(rng, memory) for _ in range(5)]
        a_idx = np.array([0, 1, 2, 3, 4, 0])
        b_idx = np.array([1, 2, 3, 4, 0, 0])
        pay_a, pay_b = play_pairs(strategies, a_idx, b_idx, rounds=41)
        for k in range(len(a_idx)):
            ref = play_game(strategies[a_idx[k]], strategies[b_idx[k]], 41)
            assert pay_a[k] == ref.payoff_a
            assert pay_b[k] == ref.payoff_b

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_matrix_matches_scalar(self, seed):
        rng = make_rng(seed)
        strategies = [random_pure(rng, 2) for _ in range(6)]
        m = payoff_matrix(strategies, rounds=29)
        for i in range(6):
            for j in range(6):
                ref = play_game(strategies[i], strategies[j], 29)
                assert m[i, j] == ref.payoff_a

    def test_matrix_with_noise_is_unbiased(self):
        strategies = [tft(1), wsls(1)]
        rounds = 60
        noise = 0.03
        rng = make_rng(5)
        total = np.zeros((2, 2))
        n_rep = 400
        for _ in range(n_rep):
            total += payoff_matrix(strategies, rounds, noise=noise, rng=rng)
        mean = total / n_rep
        for i, a in enumerate(strategies):
            for j, b in enumerate(strategies):
                exp, _, _ = expected_payoffs(a, b, rounds, noise=noise)
                assert mean[i, j] == pytest.approx(exp, rel=0.05)

    def test_mixed_strategy_pairs_sample(self):
        strategies = [gtft(0.5, 1), tft(1).to_mixed()]
        rng = make_rng(3)
        pay_a, pay_b = play_pairs(
            strategies, np.array([0]), np.array([1]), rounds=30, rng=rng
        )
        assert 0 <= pay_a[0] <= 120
        assert 0 <= pay_b[0] <= 120
