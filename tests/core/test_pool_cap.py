"""engine_pool_cap: bounding the expected-regime strategy pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig
from repro.core.engine import FitnessEngine, StrategyPool
from repro.core.evolution import run_event_driven
from repro.core.strategy import enumerate_pure_strategies
from repro.errors import ConfigurationError


def m1_strategies(n):
    return list(enumerate_pure_strategies(1))[:n]


class TestStrategyPoolCap:
    def make_pool(self, cap, on_evict=None):
        return StrategyPool(
            1, np.dtype(np.uint8), capacity=4, evict=False, cap=cap,
            on_evict=on_evict,
        )

    def test_retired_recycled_at_cap(self):
        evicted = []
        pool = self.make_pool(cap=3, on_evict=evicted.append)
        a, b, c = m1_strategies(3)
        sids = [pool.acquire(s)[0] for s in (a, b, c)]
        for sid in sids:
            pool.release(sid)
        assert pool.tracked == 3 and len(pool) == 0
        # Tracked count is at the cap: acquiring a new strategy recycles
        # the oldest retired slot instead of tracking a fourth.
        d = m1_strategies(4)[3]
        sid_d, is_new = pool.acquire(d)
        assert is_new
        assert evicted == [sids[0]]
        assert pool.tracked == 3
        assert a not in pool

    def test_no_eviction_under_cap(self):
        evicted = []
        pool = self.make_pool(cap=10, on_evict=evicted.append)
        for s in m1_strategies(4):
            sid, _ = pool.acquire(s)
            pool.release(sid)
        assert evicted == []
        assert pool.tracked == 4

    def test_uncapped_never_evicts(self):
        evicted = []
        pool = self.make_pool(cap=0, on_evict=evicted.append)
        for s in m1_strategies(8):
            sid, _ = pool.acquire(s)
            pool.release(sid)
        assert evicted == []
        assert pool.tracked == 8

    def test_revival_leaves_retirement_queue(self):
        pool = self.make_pool(cap=2)
        a, b = m1_strategies(2)
        sid_a, _ = pool.acquire(a)
        pool.release(sid_a)
        again, is_new = pool.acquire(a)
        assert again == sid_a and not is_new
        assert pool.tracked == 1 and len(pool) == 1

    def test_negative_cap_rejected(self):
        with pytest.raises(ConfigurationError, match="cap"):
            self.make_pool(cap=-1)


class TestConfigCap:
    def test_validated(self):
        with pytest.raises(ConfigurationError, match="engine_pool_cap"):
            EvolutionConfig(engine_pool_cap=-1)

    def test_summary_mentions_cap(self):
        assert "pool-cap=32" in EvolutionConfig(engine_pool_cap=32).summary()

    def test_from_config_threads_cap(self):
        config = EvolutionConfig(
            noise=0.05, expected_fitness=True, engine_pool_cap=40
        )
        engine = FitnessEngine.from_config(config)
        assert engine is not None
        assert engine.pool.cap == 40


class TestCappedRunParity:
    def test_under_cap_bit_identical(self):
        """A capped expected-regime run whose distinct-strategy count never
        reaches the cap follows the uncapped trajectory bit for bit."""
        base = EvolutionConfig(
            memory_steps=1, n_ssets=8, generations=400, rounds=16,
            noise=0.02, expected_fitness=True, seed=4,
        )
        # Memory-one has only 16 pure strategies, so cap=16 can never bind.
        capped = base.with_updates(engine_pool_cap=16)
        a = run_event_driven(base)
        b = run_event_driven(capped)
        assert a.events == b.events
        assert a.cache_misses == b.cache_misses
        assert np.array_equal(
            a.population.strategy_matrix(), b.population.strategy_matrix()
        )

    def test_over_cap_run_completes_and_is_bounded(self):
        config = EvolutionConfig(
            memory_steps=2, n_ssets=8, generations=600, rounds=16,
            noise=0.02, expected_fitness=True, seed=4, engine_pool_cap=12,
        )
        engine = FitnessEngine.from_config(config)
        assert engine is not None
        result = run_event_driven(config)
        assert result.generations_run == 600
        # The driver builds its own engine; verify the bound directly by
        # replaying churn through a capped engine.
        rng = np.random.default_rng(0)
        from repro.core.strategy import random_pure

        live = []
        for _ in range(200):
            sid = engine.intern(random_pure(rng, 2))
            live.append(sid)
            if len(live) > 4:
                engine.release(live.pop(0))
        assert engine.pool.tracked <= max(
            config.engine_pool_cap, len(live) + 1
        )
