"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig
from repro.rng import make_rng


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test-local sampling."""
    return make_rng(12345)


@pytest.fixture
def small_config() -> EvolutionConfig:
    """A fast config exercising all dynamics (events within ~2k generations)."""
    return EvolutionConfig(
        memory_steps=1,
        n_ssets=16,
        generations=2_000,
        rounds=64,
        seed=99,
    )
