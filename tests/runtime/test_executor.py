"""Tests for the real multiprocessing runtime."""

import numpy as np
import pytest

from repro.core import all_c, all_d, payoff_matrix, random_pure, tft, wsls
from repro.errors import ConfigurationError, DecompositionError
from repro.rng import make_rng
from repro.runtime import (
    ParallelKernel,
    SharedArray,
    block_ranges,
    interleaved_indices,
    parallel_all_fitness,
    parallel_payoff_matrix,
    tree_reduce,
)


@pytest.fixture(scope="module")
def strategies():
    rng = make_rng(77)
    return [tft(1), wsls(1), all_c(1), all_d(1)] + [random_pure(rng, 1) for _ in range(8)]


class TestPartition:
    def test_block_ranges_cover(self):
        ranges = block_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        ranges = block_ranges(2, 4)
        assert ranges == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_invalid(self):
        with pytest.raises(DecompositionError):
            block_ranges(-1, 2)
        with pytest.raises(DecompositionError):
            block_ranges(4, 0)

    def test_interleaved(self):
        assert interleaved_indices(7, 3, 0) == [0, 3, 6]
        assert interleaved_indices(7, 3, 2) == [2, 5]
        with pytest.raises(DecompositionError):
            interleaved_indices(7, 3, 3)


class TestTreeReduce:
    def test_sum(self):
        assert tree_reduce([1, 2, 3, 4, 5], lambda a, b: a + b) == 15

    def test_single(self):
        assert tree_reduce([42], lambda a, b: a + b) == 42

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            tree_reduce([], lambda a, b: a + b)

    def test_deterministic_float_order(self):
        values = [0.1 * i for i in range(9)]
        a = tree_reduce(values, lambda x, y: x + y)
        b = tree_reduce(values, lambda x, y: x + y)
        assert a == b


class TestSharedArray:
    def test_roundtrip(self):
        with SharedArray((4, 3)) as shared:
            shared.array[:] = 7.0
            attached, handle = SharedArray.attach(shared.spec)
            try:
                assert np.all(attached == 7.0)
                attached[0, 0] = 1.0
            finally:
                handle.close()
            assert shared.array[0, 0] == 1.0


class TestParallelKernel:
    def test_serial_path_matches_reference(self, strategies):
        with ParallelKernel(n_workers=1, rounds=50) as kernel:
            result = kernel.payoff_matrix(strategies)
        reference = payoff_matrix(strategies, rounds=50)
        np.testing.assert_array_equal(result, reference)

    def test_two_workers_bit_identical(self, strategies):
        reference = payoff_matrix(strategies, rounds=50)
        result = parallel_payoff_matrix(strategies, rounds=50, n_workers=2)
        np.testing.assert_array_equal(result, reference)

    def test_shared_memory_transport(self, strategies):
        reference = payoff_matrix(strategies, rounds=50)
        result = parallel_payoff_matrix(
            strategies, rounds=50, n_workers=2, use_shared_memory=True
        )
        np.testing.assert_array_equal(result, reference)

    def test_fitness_vector(self, strategies):
        reference = payoff_matrix(strategies, rounds=50)
        expected = reference.sum(axis=1) - np.diag(reference)
        fitness = parallel_all_fitness(strategies, rounds=50, n_workers=2)
        np.testing.assert_allclose(fitness, expected)

    def test_fitness_with_self_play(self, strategies):
        reference = payoff_matrix(strategies, rounds=50)
        with ParallelKernel(n_workers=1, rounds=50) as kernel:
            fitness = kernel.all_fitness(strategies, include_self_play=True)
        np.testing.assert_allclose(fitness, reference.sum(axis=1))

    def test_empty_strategies_rejected(self):
        with ParallelKernel(n_workers=1) as kernel:
            with pytest.raises(ConfigurationError):
                kernel.payoff_matrix([])

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ParallelKernel(n_workers=0)
