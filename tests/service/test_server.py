"""End-to-end tests for the HTTP front door and SweepClient."""

from __future__ import annotations

import threading

import pytest

from repro.api import run_sweep
from repro.core import EvolutionConfig
from repro.errors import (
    ConfigurationError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from repro.io import result_to_dict
from repro.service import JobQueue, JobSpec, SweepClient, SweepServer

#: Execution-envelope keys that legitimately differ between a service run
#: and a direct run_sweep call (timing; warm-pool evaluation counters).
VOLATILE = ("wallclock_seconds", "cache_hits", "cache_misses", "backend")


def science(payload: dict) -> dict:
    return {k: v for k, v in payload.items() if k not in VOLATILE}


def _wait_for_state(
    client: SweepClient, job_id: str, state: str, timeout: float = 10.0
) -> None:
    import time

    deadline = time.monotonic() + timeout
    while client.job(job_id)["state"] != state:
        assert time.monotonic() < deadline, f"{job_id} never hit {state!r}"
        time.sleep(0.01)


def spec_for(seed: int, n: int = 1) -> JobSpec:
    return JobSpec(
        configs=tuple(
            EvolutionConfig(
                n_ssets=8, generations=300, rounds=16, seed=seed + i
            )
            for i in range(n)
        ),
    )


@pytest.fixture
def server():
    with SweepServer(port=0, workers=2) as srv:
        yield srv


@pytest.fixture
def client(server):
    return SweepClient(server.url)


class TestEndToEnd:
    def test_concurrent_duplicate_and_distinct(self, client):
        """The acceptance path: two identical + one distinct submission,
        concurrently; the duplicate's payload is bit-identical to the
        original's and matches a direct run_sweep call."""
        duplicate_spec = spec_for(seed=500, n=2).to_dict()
        distinct_spec = spec_for(seed=600, n=2).to_dict()
        statuses = [None, None, None]

        def submit(i, payload):
            statuses[i] = client.submit(payload)

        threads = [
            threading.Thread(target=submit, args=(i, payload))
            for i, payload in enumerate(
                [duplicate_spec, duplicate_spec, distinct_spec]
            )
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        finals = [client.wait(s["job_id"], timeout=120) for s in statuses]
        assert all(s["state"] == "done" for s in finals)
        # One of the two identical submissions executed; the other was a
        # cache hit or coalesced onto the leader.
        assert finals[0]["cache_hit"] or finals[1]["cache_hit"]
        assert not finals[2]["cache_hit"]
        assert finals[0]["fingerprint"] == finals[1]["fingerprint"]
        assert finals[2]["fingerprint"] != finals[0]["fingerprint"]

        payloads = [
            client.result(s["job_id"], events=True) for s in statuses
        ]
        assert payloads[0]["results"] == payloads[1]["results"]

        direct = run_sweep(
            [EvolutionConfig.from_dict(c) for c in duplicate_spec["configs"]],
            backend="ensemble",
        )
        for served, local in zip(payloads[0]["results"], direct):
            assert science(served) == science(
                result_to_dict(local, include_events=True)
            )

    def test_result_payload_flags(self, client):
        job_id = client.submit(spec_for(seed=510))["job_id"]
        client.wait(job_id, timeout=60)
        full = client.result(job_id)
        slim = client.result(job_id, population=False)
        assert "population" in full["results"][0]
        assert "population" not in slim["results"][0]
        assert "events" not in slim["results"][0]

    def test_job_listing_and_stats(self, client):
        job_id = client.submit(spec_for(seed=520))["job_id"]
        client.wait(job_id, timeout=60)
        assert any(j["job_id"] == job_id for j in client.jobs())
        stats = client.stats()
        assert stats["queue"]["submitted_total"] >= 1
        assert stats["store"]["stores"] >= 1
        assert client.health()["status"] == "ok"


class TestErrorMapping:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(JobNotFoundError):
            client.job("job-424242")
        with pytest.raises(JobNotFoundError):
            client.result("job-424242")

    def test_bad_spec_is_400(self, client):
        with pytest.raises(ConfigurationError, match="generations"):
            client.submit(
                {"configs": [{"generations": "many"}]}
            )

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError):
            client._request("GET", "/nope")

    def test_unreachable_server(self):
        client = SweepClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()

    def test_queue_full_is_429(self):
        gate = threading.Event()

        def gated(configs, **kwargs):
            assert gate.wait(timeout=30)
            from repro.api import run_sweep as real

            return real(configs, backend="ensemble")

        queue = JobQueue(workers=1, max_queued=1, _run_sweep=gated)
        try:
            with SweepServer(port=0, queue=queue) as srv:
                client = SweepClient(srv.url)
                running = client.submit(spec_for(seed=530))
                _wait_for_state(client, running["job_id"], "running")
                # Fill the single waiting slot, then overflow it.
                client.submit(spec_for(seed=531))
                with pytest.raises(QueueFullError):
                    client.submit(spec_for(seed=532))
                gate.set()
                client.wait(running["job_id"], timeout=60)
        finally:
            gate.set()
            queue.close()

    def test_result_while_running_is_202(self):
        gate = threading.Event()

        def gated(configs, **kwargs):
            assert gate.wait(timeout=30)
            from repro.api import run_sweep as real

            return real(configs, backend="ensemble")

        queue = JobQueue(workers=1, _run_sweep=gated)
        try:
            with SweepServer(port=0, queue=queue) as srv:
                client = SweepClient(srv.url)
                job_id = client.submit(spec_for(seed=540))["job_id"]
                pending = client.result(job_id)  # 202, not an error
                assert pending["state"] in ("queued", "running")
                assert "progress" in pending
                gate.set()
                client.wait(job_id, timeout=60)
                assert client.result(job_id)["state"] == "done"
        finally:
            gate.set()
            queue.close()

    def test_failed_job_result_is_500(self):
        def boom(configs, **kwargs):
            raise RuntimeError("no science today")

        queue = JobQueue(workers=1, _run_sweep=boom)
        try:
            with SweepServer(port=0, queue=queue) as srv:
                client = SweepClient(srv.url)
                job_id = client.submit(spec_for(seed=550))["job_id"]
                final = client.wait(job_id, timeout=30)
                assert final["state"] == "failed"
                with pytest.raises(ServiceError, match="no science today"):
                    client.result(job_id)
        finally:
            queue.close()
