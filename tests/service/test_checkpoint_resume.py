"""Service-level mid-run checkpointing: retries and replays resume.

The service half of the ISSUE PR 9 contract: a :class:`JobQueue` built
with a ``checkpoint_dir`` snapshots checkpointed jobs mid-run, journals
every save as a non-terminal breadcrumb, and — after a transient failure
*or* a process loss (drain / crash + journal replay) — finishes the job
from its newest snapshot with results bit-identical to an uninterrupted
execution.  Successful jobs leave no snapshots behind.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import faults
from repro.api import run_sweep
from repro.core import EvolutionConfig
from repro.errors import ConfigurationError
from repro.service import JobQueue, JobSpec, JobState, RetryPolicy


def ckpt_spec(seed: int, *, checkpoint_every: int = 100, n: int = 1,
              generations: int = 300, **overrides) -> JobSpec:
    """A checkpointed sweep spec (engine sharing off: cross-run pair
    sharing is the one deterministic mode that refuses checkpointing)."""
    return JobSpec(
        configs=tuple(
            EvolutionConfig(
                n_ssets=8, generations=generations, rounds=16,
                seed=seed + i, checkpoint_every=checkpoint_every,
            )
            for i in range(n)
        ),
        backend="ensemble",
        share_engine=False,
        **overrides,
    )


def reference_results(spec: JobSpec):
    return run_sweep(
        [c.with_updates(checkpoint_every=0) for c in spec.configs],
        backend="ensemble",
        share_engine=False,
    )


def assert_bit_identical(results, reference) -> None:
    assert len(results) == len(reference)
    for a, b in zip(results, reference):
        assert np.array_equal(
            a.population.strategy_matrix(), b.population.strategy_matrix()
        )
        assert a.n_pc_events == b.n_pc_events
        assert a.n_adoptions == b.n_adoptions
        assert a.n_mutations == b.n_mutations
        assert a.generations_run == b.generations_run


def wait_for(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


class TestCheckpointLifecycle:
    def test_success_writes_journals_and_discards(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        spec = ckpt_spec(seed=910)
        with JobQueue(workers=1, journal=journal,
                      checkpoint_dir=tmp_path / "ckpt") as queue:
            job = queue.submit(spec)
            assert job.wait(timeout=60)
            assert job.state == JobState.DONE
            stats = queue.stats()["checkpoints"]
            # Cadence 100 over 300 generations: boundaries 100 and 200.
            assert stats["written_total"] == 2
            assert stats["resumed_total"] == 0
            assert stats["dir"] == str(tmp_path / "ckpt")
        # Snapshot discard runs after the job is marked done (waiters may
        # observe DONE first), but close() joins the worker thread.
        assert not list((tmp_path / "ckpt").glob("unit-*"))
        # Each save left a non-terminal breadcrumb in the WAL.
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        breadcrumbs = [r for r in records if r["type"] == "checkpoint"]
        assert [r["generation"] for r in breadcrumbs] == [100, 200]
        assert all(r["job_id"] == job.job_id for r in breadcrumbs)
        assert all(r["unit"] for r in breadcrumbs)
        assert_bit_identical(job.results, reference_results(spec))

    def test_no_checkpoint_dir_means_no_checkpoint_stats(self):
        with JobQueue(workers=1) as queue:
            assert queue.stats()["checkpoints"] is None

    def test_uncheckpointed_config_writes_nothing(self, tmp_path):
        spec = ckpt_spec(seed=915, checkpoint_every=0)
        with JobQueue(workers=1,
                      checkpoint_dir=tmp_path / "ckpt") as queue:
            job = queue.submit(spec)
            assert job.wait(timeout=60)
            assert job.state == JobState.DONE
            assert queue.stats()["checkpoints"]["written_total"] == 0


class TestRetryResume:
    def test_retry_resumes_from_prior_attempts_snapshot(self, tmp_path):
        # The second snapshot save (gen 200) of attempt 1 dies with a
        # transient error; attempt 2 must pick up the gen-100 snapshot
        # instead of replaying from generation zero.
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "io.save_checkpoint", "exception": "TransientError",
             "match": {"stage": "start"}, "after": 1, "times": 1},
        ]})
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        spec = ckpt_spec(seed=920, retry=policy)
        with faults.armed(plan), JobQueue(
            workers=1, checkpoint_dir=tmp_path / "ckpt"
        ) as queue:
            job = queue.submit(spec)
            assert job.wait(timeout=60)
            assert job.state == JobState.DONE
            assert job.attempts == 2
            assert "TransientError" in job.last_failure
            stats = queue.stats()["checkpoints"]
            assert stats["resumed_total"] == 1
            # gen-100 (attempt 1) + gen-200 (attempt 2, after the resume).
            assert stats["written_total"] == 2
        assert plan.stats()[0]["triggered"] == 1
        assert_bit_identical(job.results, reference_results(spec))

    def test_failed_job_keeps_its_snapshots(self, tmp_path):
        # Permanent failure after a successful snapshot: the snapshots
        # stay on disk, so a journal replay can resume instead of rerun.
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "io.save_checkpoint", "exception": "ValueError",
             "match": {"stage": "start"}, "after": 1, "times": 1},
        ]})
        spec = ckpt_spec(seed=925)
        with faults.armed(plan), JobQueue(
            workers=1, checkpoint_dir=tmp_path / "ckpt"
        ) as queue:
            job = queue.submit(spec)
            assert job.wait(timeout=60)
            assert job.state == JobState.FAILED
        # One *complete* snapshot (gen-100); the interrupted gen-200 save
        # left a meta-less directory that reads as a clean miss.
        complete = list((tmp_path / "ckpt").glob("unit-*/gen-*/meta.json"))
        assert len(complete) == 1
        assert complete[0].parent.name == f"gen-{100:012d}"


class TestReplayResume:
    def test_journal_replay_resumes_mid_run_bit_identically(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        ckpt_dir = tmp_path / "ckpt"
        # Slow the drivers enough to catch the job mid-run, then take the
        # process "down" the drain way: cancelled without a terminal
        # journal record — exactly what a crash leaves behind.
        slow = faults.FaultPlan.from_dict({"faults": [
            {"site": "driver.generation", "action": "delay",
             "delay": 0.002, "times": 1_000_000},
        ]})
        spec = ckpt_spec(seed=930, checkpoint_every=150, generations=600)
        queue = JobQueue(workers=1, journal=journal, checkpoint_dir=ckpt_dir)
        try:
            with faults.armed(slow):
                first = queue.submit(spec)
                wait_for(lambda: queue.checkpoints_written_total >= 1)
                drained = queue.drain(timeout=0.01)
        finally:
            queue.close()
        assert drained["requeued"] == 1
        assert first.state == JobState.CANCELLED
        assert list(ckpt_dir.glob("unit-*/gen-*"))  # snapshots survived

        with JobQueue(workers=1, journal=journal,
                      checkpoint_dir=ckpt_dir) as queue2:
            assert queue2.recovered_total == 1
            (job,) = queue2.jobs()
            assert job.recovered_from == first.job_id
            assert job.wait(timeout=60)
            assert job.state == JobState.DONE
            assert queue2.stats()["checkpoints"]["resumed_total"] >= 1
        assert_bit_identical(job.results, reference_results(spec))


class TestFingerprintNeutrality:
    def test_checkpoint_cadence_is_cache_neutral(self, tmp_path):
        with JobQueue(workers=1,
                      checkpoint_dir=tmp_path / "ckpt") as queue:
            checkpointed = queue.submit(ckpt_spec(seed=940))
            assert checkpointed.wait(timeout=60)
            assert checkpointed.state == JobState.DONE
            # The uncheckpointed twin asks for the same science: instant
            # cache hit off the checkpointed run's stored results.
            twin = queue.submit(ckpt_spec(seed=940, checkpoint_every=0))
            assert twin.wait(timeout=10)
            assert twin.cache_hit
            assert_bit_identical(twin.results, checkpointed.results)

    def test_spec_v1_dicts_still_replay(self):
        spec = ckpt_spec(seed=945)
        old = spec.to_dict()
        old["version"] = 1
        assert JobSpec.from_dict(old).fingerprint() == spec.fingerprint()
        future = spec.to_dict()
        future["version"] = 3
        with pytest.raises(ConfigurationError, match="version"):
            JobSpec.from_dict(future)
