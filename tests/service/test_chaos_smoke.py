"""Chaos smoke: kill a journaled server process and prove recovery.

The ISSUE PR 8 acceptance scenario, end to end through real processes:

* a ``repro serve --journal`` server is SIGKILLed mid-queue; a restart
  replays the write-ahead log and completes **every admitted job**;
* the restarted server runs under an armed ``REPRO_FAULTS`` plan that
  throws a transient worker exception on the first execution attempt —
  the per-job :class:`~repro.service.RetryPolicy` absorbs it and the
  payloads still come out **bit-identical** to a local ``run_sweep``;
* ``SIGTERM`` drains gracefully: the process exits 0 and the jobs it
  could not finish stay pending in the journal for the next start.
* (PR 9) a ``--checkpoint-dir`` server is SIGKILLed mid-*run*; the
  restart resumes the job from its mid-run snapshot — provably partial
  work (fewer progress ticks than generations) with a payload
  bit-identical to an uninterrupted local ``run_sweep``.

This is the test the CI chaos job runs.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.api import run_sweep
from repro.core import EvolutionConfig
from repro.core.progress import progress_scope
from repro.io import result_to_dict
from repro.service import JobJournal, JobSpec, RetryPolicy, SweepClient

SRC = Path(__file__).resolve().parents[2] / "src"

CONFIGS = [
    EvolutionConfig(n_ssets=8, generations=1500, rounds=16, seed=2100 + i)
    for i in range(3)
]
SPECS = [
    JobSpec(
        configs=(config,),
        retry=RetryPolicy(max_attempts=3, base_delay=0.05),
    )
    for config in CONFIGS
]

# Stretch every event generation so jobs take seconds, not milliseconds:
# the kill below must land while the queue still holds work.
SLOW_PLAN = json.dumps({"faults": [
    {"site": "driver.generation", "action": "delay", "delay": 0.02,
     "times": None},
]})

# One transient worker explosion on the first post-restart execution
# attempt; the job's RetryPolicy must absorb it.
FLAKY_PLAN = json.dumps({"faults": [
    {"site": "service.execute", "exception": "TransientError",
     "match": {"attempt": 1}, "times": 1},
]})

#: Payload keys that legitimately differ between server and local runs.
VOLATILE = ("wallclock_seconds", "cache_hits", "cache_misses", "backend")


def start_server(extra_args, *, env_faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    if env_faults is not None:
        env["REPRO_FAULTS"] = env_faults
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on (http://[0-9.:]+)", line)
    assert match, f"no listen line from serve: {line!r}"
    client = SweepClient(match.group(1))
    deadline = time.monotonic() + 10
    while True:
        try:
            client.health()
            break
        except Exception:
            assert time.monotonic() < deadline, "server never came up"
            time.sleep(0.05)
    return process, client


def strip_volatile(run: dict) -> dict:
    return {k: v for k, v in run.items() if k not in VOLATILE}


def test_sigkill_midqueue_then_restart_completes_every_job(tmp_path):
    wal = tmp_path / "jobs.wal"
    artifacts = tmp_path / "artifacts"

    process, client = start_server(
        ["--workers", "1", "--journal", str(wal),
         "--artifact-dir", str(artifacts), "--faults", SLOW_PLAN],
    )
    try:
        admitted = [client.submit(spec)["job_id"] for spec in SPECS]
        assert len(set(admitted)) == 3
    finally:
        # The crash: no drain, no shutdown hooks — the WAL is all that
        # survives.  The slow plan guarantees nothing finished yet.
        process.kill()
        process.wait(timeout=10)
    assert [r["job_id"] for r in JobJournal.replay(wal)] == admitted

    process, client = start_server(
        ["--workers", "1", "--journal", str(wal),
         "--artifact-dir", str(artifacts)],
        env_faults=FLAKY_PLAN,
    )
    try:
        replay_line = process.stdout.readline()
        assert "journal replayed 3 pending job(s)" in replay_line
        assert "fault plan armed" in process.stdout.readline()

        deadline = time.monotonic() + 120
        while True:
            jobs = client.jobs()
            if len(jobs) == 3 and all(
                j["state"] in ("done", "failed", "cancelled") for j in jobs
            ):
                break
            assert time.monotonic() < deadline, f"jobs never finished: {jobs}"
            time.sleep(0.2)

        # Every admitted job completed, attributed back to its pre-crash
        # identity, despite the injected worker exception.
        assert all(j["state"] == "done" for j in jobs)
        assert sorted(j["recovered_from"] for j in jobs) == sorted(admitted)
        retried = [j for j in jobs if j["retries"]]
        assert len(retried) == 1
        assert retried[0]["attempts"] == 2

        # Bit-identical payloads: the journaled spec pins the science.
        by_fingerprint = {
            spec.fingerprint(): config
            for spec, config in zip(SPECS, CONFIGS)
        }
        for job in jobs:
            payload = client.result(job["job_id"], events=True)
            config = by_fingerprint[job["fingerprint"]]
            direct = run_sweep([config], backend="ensemble")[0]
            assert strip_volatile(payload["results"][0]) == strip_volatile(
                result_to_dict(direct, include_events=True)
            )
    finally:
        process.terminate()
        process.wait(timeout=30)
    assert process.returncode == 0
    assert JobJournal.replay(wal) == []  # nothing left to recover


def test_sigkill_midrun_then_restart_resumes_from_snapshot(tmp_path):
    wal = tmp_path / "jobs.wal"
    ckpt = tmp_path / "ckpt"
    # One long checkpointed run.  Engine pair sharing stays off at *both*
    # levels — the spec's intra-sweep flag and the server's warm pool —
    # because cross-run pair sharing is the deterministic mode that
    # (correctly) refuses mid-run snapshots: a resume rebuilds only its
    # own live pairs, so the shared store would diverge from an
    # uninterrupted process.
    config = EvolutionConfig(
        n_ssets=8, generations=1500, rounds=16, seed=2300,
        checkpoint_every=300,
    )
    spec = JobSpec(configs=(config,), share_engine=False)

    process, client = start_server(
        ["--workers", "1", "--no-warm-pool", "--journal", str(wal),
         "--checkpoint-dir", str(ckpt), "--faults", SLOW_PLAN],
    )
    try:
        job_id = client.submit(spec)["job_id"]
        # Wait until at least one mid-run snapshot is durable, then kill
        # while the run is still far from done (the slow plan stretches
        # the full horizon to ~30s; the first snapshot lands around 6s).
        deadline = time.monotonic() + 60
        while True:
            checkpoints = client.stats()["queue"]["checkpoints"]
            if checkpoints["written_total"] >= 1:
                break
            assert time.monotonic() < deadline, "no snapshot before deadline"
            time.sleep(0.2)
    finally:
        process.kill()
        process.wait(timeout=10)
    assert [r["job_id"] for r in JobJournal.replay(wal)] == [job_id]
    assert list(ckpt.glob("unit-*/gen-*/meta.json"))  # durable snapshot

    process, client = start_server(
        ["--workers", "1", "--no-warm-pool", "--journal", str(wal),
         "--checkpoint-dir", str(ckpt)],
    )
    try:
        assert "journal replayed 1 pending job(s)" in process.stdout.readline()
        deadline = time.monotonic() + 120
        while True:
            (job,) = client.jobs()
            if job["state"] in ("done", "failed", "cancelled"):
                break
            assert time.monotonic() < deadline, f"job never finished: {job}"
            time.sleep(0.2)

        assert job["state"] == "done"
        assert job["recovered_from"] == job_id
        assert client.stats()["queue"]["checkpoints"]["resumed_total"] >= 1

        # An uninterrupted local run of the same config, its progress
        # ticks counted: the restarted server must have executed strictly
        # less than that — the resumed tail, not the whole horizon.
        # (Same config for the reference: without a sink armed the
        # cadence field is inert.)
        full_ticks = 0

        def count_tick(tick):
            nonlocal full_ticks
            full_ticks += 1

        with progress_scope(count_tick):
            direct = run_sweep(
                [config], backend="ensemble", share_engine=False
            )[0]
        assert 0 < job["progress"]["ticks_seen"] < full_ticks

        # ... and partial execution is invisible in the science: the
        # payload is bit-identical to the uninterrupted run.
        payload = client.result(job["job_id"], events=True)
        assert strip_volatile(payload["results"][0]) == strip_volatile(
            result_to_dict(direct, include_events=True)
        )
    finally:
        process.terminate()
        process.wait(timeout=30)
    assert process.returncode == 0
    assert JobJournal.replay(wal) == []


def test_sigterm_drains_cleanly_and_journals_the_backlog(tmp_path):
    wal = tmp_path / "jobs.wal"
    process, client = start_server(
        ["--workers", "1", "--journal", str(wal),
         "--drain-timeout", "0.5", "--faults", SLOW_PLAN],
    )
    killed = False
    try:
        assert "fault plan armed" in process.stdout.readline()
        admitted = [client.submit(spec)["job_id"] for spec in SPECS[:2]]
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30)
    except BaseException:
        killed = True
        process.kill()
        process.wait(timeout=10)
        raise
    finally:
        if not killed and process.poll() is None:  # pragma: no cover
            process.kill()
            process.wait(timeout=10)

    # Graceful exit: running job cancelled cooperatively at the 0.5s drain
    # deadline, the queued one immediately — neither got a terminal WAL
    # record, so both replay on the next start.
    assert process.returncode == 0
    assert "drained cleanly" in out
    assert [r["job_id"] for r in JobJournal.replay(wal)] == admitted
