"""Tests for the fingerprint-keyed result store (LRU + disk tier)."""

import json

import numpy as np
import pytest

from repro.core import EvolutionConfig, run_event_driven
from repro.errors import ConfigurationError
from repro.service import ResultStore


@pytest.fixture(scope="module")
def results():
    return [
        run_event_driven(
            EvolutionConfig(n_ssets=8, generations=400, rounds=16, seed=s)
        )
        for s in (21, 22)
    ]


class TestMemoryTier:
    def test_miss_then_hit_same_objects(self, results):
        store = ResultStore()
        assert store.get("fp-a") is None
        store.put("fp-a", results)
        hit = store.get("fp-a")
        assert hit is not None
        assert hit[0] is results[0]  # the same result objects, not copies

    def test_lru_eviction(self, results):
        store = ResultStore(max_entries=2)
        store.put("a", results[:1])
        store.put("b", results[:1])
        store.get("a")  # refresh a; b is now least recent
        store.put("c", results[:1])
        assert "a" in store
        assert "b" not in store
        assert store.stats()["evictions"] == 1

    def test_counters(self, results):
        store = ResultStore()
        store.get("x")
        store.put("x", results)
        store.get("x")
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1

    def test_bad_max_entries(self):
        with pytest.raises(ConfigurationError):
            ResultStore(max_entries=0)


class TestDiskTier:
    def test_survives_memory_clear(self, tmp_path, results):
        store = ResultStore(artifact_dir=tmp_path)
        store.put("fp", results)
        store.clear()
        loaded = store.get("fp")
        assert loaded is not None
        assert len(loaded) == len(results)
        for mem, disk in zip(results, loaded):
            np.testing.assert_array_equal(
                disk.population.strategy_matrix(),
                mem.population.strategy_matrix(),
            )
            assert disk.events == mem.events
        assert store.stats()["disk_hits"] == 1

    def test_fresh_store_reads_old_artifacts(self, tmp_path, results):
        ResultStore(artifact_dir=tmp_path).put("fp", results)
        fresh = ResultStore(artifact_dir=tmp_path)
        assert fresh.get("fp") is not None  # cache hits survive restarts

    def test_torn_artifact_is_a_miss(self, tmp_path, results):
        store = ResultStore(artifact_dir=tmp_path)
        store.put("fp", results)
        store.clear()
        (tmp_path / "fp" / "manifest.json").unlink()  # simulated crash
        assert store.get("fp") is None

    def test_corrupt_manifest_is_a_miss(self, tmp_path, results):
        store = ResultStore(artifact_dir=tmp_path)
        store.put("fp", results)
        store.clear()
        (tmp_path / "fp" / "manifest.json").write_text("{torn")
        assert store.get("fp") is None

    def test_layout(self, tmp_path, results):
        ResultStore(artifact_dir=tmp_path).put("fp", results)
        job_dir = tmp_path / "fp"
        manifest = json.loads((job_dir / "manifest.json").read_text())
        assert manifest["runs"] == len(results)
        for i in range(len(results)):
            assert (job_dir / f"run-{i:04d}" / "meta.json").exists()
            assert (job_dir / f"run-{i:04d}" / "population.npz").exists()
