"""Tests for the async job queue: scheduling, caching, backpressure."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import EvolutionConfig
from repro.errors import ConfigurationError, QueueFullError, ServiceError
from repro.service import JobQueue, JobSpec, JobState, WarmEnginePool


def spec_for(seed: int, n: int = 1, **overrides) -> JobSpec:
    defaults = dict(backend="ensemble")
    defaults.update(overrides)
    return JobSpec(
        configs=tuple(
            EvolutionConfig(
                n_ssets=8, generations=300, rounds=16, seed=seed + i
            )
            for i in range(n)
        ),
        **defaults,
    )


class GatedRunner:
    """A run_sweep stand-in whose jobs block until released (determinism)."""

    def __init__(self):
        self.gate = threading.Event()
        self.order: list[int] = []
        self.started = threading.Event()

    def __call__(self, configs, **kwargs):
        self.started.set()
        assert self.gate.wait(timeout=30), "test gate never released"
        self.order.append(configs[0].seed)
        on_result = kwargs.get("on_result")
        from repro.api import run_sweep

        return run_sweep(configs, backend="ensemble", on_result=on_result)


class TestExecution:
    def test_submit_runs_and_caches(self):
        with JobQueue(workers=2) as queue:
            spec = spec_for(seed=50)
            job = queue.submit(spec)
            assert job.wait(timeout=60)
            assert job.state == JobState.DONE
            assert not job.cache_hit
            assert job.results is not None

            duplicate = queue.submit(spec_for(seed=50))
            assert duplicate.finished  # instant — no execution
            assert duplicate.cache_hit
            assert duplicate.results[0] is job.results[0]
            assert queue.cache_hit_total == 1

    def test_progress_streams(self):
        with JobQueue(workers=1) as queue:
            job = queue.submit(spec_for(seed=60, n=2))
            assert job.wait(timeout=60)
            status = job.status_dict()
            assert status["progress"]["runs_total"] == 2
            assert status["progress"]["runs_done"] == 2
            assert status["progress"]["ticks_seen"] > 0
            runs = status["progress"]["runs"]
            assert set(runs) == {"0", "1"}
            for tick in runs.values():
                assert 0 < tick["generation"] < tick["generations"]

    def test_failed_job(self):
        def boom(configs, **kwargs):
            raise RuntimeError("engine exploded")

        with JobQueue(workers=1, _run_sweep=boom) as queue:
            job = queue.submit(spec_for(seed=70))
            assert job.wait(timeout=30)
            assert job.state == JobState.FAILED
            assert "engine exploded" in job.error
            assert job.results is None
            # A failure is not cached: the next submission re-executes.
            assert queue.store.get(job.fingerprint) is None

    def test_unknown_backend_rejected_at_submit(self):
        with JobQueue(workers=1) as queue:
            with pytest.raises(ConfigurationError, match="warp-drive"):
                queue.submit(spec_for(seed=80, backend="warp-drive"))

    def test_warm_pool_lifecycle(self):
        pool = WarmEnginePool()
        with JobQueue(workers=1, pool=pool) as queue:
            assert pool.is_open
            job = queue.submit(spec_for(seed=85))
            assert job.wait(timeout=60)
        assert not pool.is_open  # closed with the queue


class TestScheduling:
    def test_coalescing(self):
        runner = GatedRunner()
        with JobQueue(workers=1, _run_sweep=runner) as queue:
            leader = queue.submit(spec_for(seed=90))
            assert runner.started.wait(timeout=10)
            follower = queue.submit(spec_for(seed=90))
            assert follower.coalesced_with == leader.job_id
            runner.gate.set()
            assert leader.wait(timeout=30) and follower.wait(timeout=30)
            assert follower.cache_hit
            assert follower.results[0] is leader.results[0]
            assert queue.coalesced_total == 1
            assert runner.order == [90]  # executed exactly once

    def test_interactive_jumps_batch(self):
        runner = GatedRunner()
        with JobQueue(workers=1, _run_sweep=runner) as queue:
            blocker = queue.submit(spec_for(seed=100))
            assert runner.started.wait(timeout=10)
            batch = queue.submit(spec_for(seed=101, priority="batch"))
            urgent = queue.submit(spec_for(seed=102, priority="interactive"))
            runner.gate.set()
            for job in (blocker, batch, urgent):
                assert job.wait(timeout=60)
            assert runner.order == [100, 102, 101]

    def test_fifo_within_class(self):
        runner = GatedRunner()
        with JobQueue(workers=1, _run_sweep=runner) as queue:
            blocker = queue.submit(spec_for(seed=110))
            assert runner.started.wait(timeout=10)
            jobs = [queue.submit(spec_for(seed=111 + i)) for i in range(3)]
            runner.gate.set()
            for job in [blocker, *jobs]:
                assert job.wait(timeout=60)
            assert runner.order == [110, 111, 112, 113]

    def test_backpressure(self):
        runner = GatedRunner()
        with JobQueue(workers=1, max_queued=2, _run_sweep=runner) as queue:
            running = queue.submit(spec_for(seed=120))
            assert runner.started.wait(timeout=10)
            queue.submit(spec_for(seed=121))
            queue.submit(spec_for(seed=122))
            with pytest.raises(QueueFullError, match="full"):
                queue.submit(spec_for(seed=123))
            assert queue.rejected_total == 1
            runner.gate.set()
            assert running.wait(timeout=30)

    def test_cache_hit_bypasses_backpressure(self):
        runner = GatedRunner()
        with JobQueue(workers=1, max_queued=1, _run_sweep=runner) as queue:
            first = queue.submit(spec_for(seed=130))
            assert runner.started.wait(timeout=10)
            runner.gate.set()
            assert first.wait(timeout=30)
            runner.gate.clear()
            blocker = queue.submit(spec_for(seed=131))
            deadline = time.time() + 10
            while blocker.state != JobState.RUNNING:  # leave the heap empty
                assert time.time() < deadline
                time.sleep(0.01)
            queue.submit(spec_for(seed=132))  # fills the queue
            # A duplicate of the finished job is served from cache even
            # with the queue full.
            hit = queue.submit(spec_for(seed=130))
            assert hit.cache_hit
            runner.gate.set()
            assert blocker.wait(timeout=30)


class TestLifecycle:
    def test_close_fails_queued_jobs(self):
        runner = GatedRunner()
        queue = JobQueue(workers=1, _run_sweep=runner)
        running = queue.submit(spec_for(seed=140))
        assert runner.started.wait(timeout=10)
        waiting = queue.submit(spec_for(seed=141))
        # Close drains the waiting job first, then waits for the running
        # one — release the gate only once the drain has landed, so the
        # waiting job can never sneak into execution.
        closer = threading.Thread(target=queue.close)
        closer.start()
        assert waiting.wait(timeout=10)
        assert waiting.state == JobState.FAILED
        assert "shutting down" in waiting.error
        runner.gate.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert running.state == JobState.DONE
        with pytest.raises(ServiceError, match="shutting down"):
            queue.submit(spec_for(seed=142))

    def test_lookup_and_stats(self):
        with JobQueue(workers=1) as queue:
            job = queue.submit(spec_for(seed=150))
            assert queue.get(job.job_id) is job
            assert job in queue.jobs()
            from repro.errors import JobNotFoundError

            with pytest.raises(JobNotFoundError, match="job-999999"):
                queue.get("job-999999")
            assert job.wait(timeout=60)
            stats = queue.stats()
            assert stats["submitted_total"] == 1
            assert stats["states"]["done"] == 1

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            JobQueue(workers=0)
        with pytest.raises(ConfigurationError):
            JobQueue(max_queued=0)
