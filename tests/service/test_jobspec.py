"""Tests for the canonical job-spec layer (fingerprints, round-trip)."""

import json

import pytest

from repro.core import EvolutionConfig
from repro.errors import ConfigurationError
from repro.service import SPEC_FORMAT_VERSION, JobSpec


def make_spec(**overrides) -> JobSpec:
    defaults = dict(
        configs=(
            EvolutionConfig(n_ssets=8, generations=100, seed=1),
            EvolutionConfig(n_ssets=8, generations=100, seed=2),
        ),
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestFingerprint:
    def test_stable(self):
        assert make_spec().fingerprint() == make_spec().fingerprint()

    def test_science_changes_it(self):
        base = make_spec().fingerprint()
        assert make_spec(
            configs=(EvolutionConfig(n_ssets=8, generations=100, seed=3),)
        ).fingerprint() != base

    def test_seed_changes_it(self):
        a = make_spec(
            configs=(EvolutionConfig(n_ssets=8, generations=100, seed=1),)
        )
        b = make_spec(
            configs=(EvolutionConfig(n_ssets=8, generations=100, seed=2),)
        )
        assert a.fingerprint() != b.fingerprint()

    def test_execution_options_do_not(self):
        # Every backend follows the bit-identical trajectory for a config —
        # execution options are explicitly outside the fingerprint.
        base = make_spec().fingerprint()
        assert make_spec(backend="event").fingerprint() == base
        assert make_spec(workers=8).fingerprint() == base
        assert make_spec(priority="interactive").fingerprint() == base
        assert make_spec(label="tagged").fingerprint() == base
        assert make_spec(share_engine=True).fingerprint() == base

    def test_config_order_matters(self):
        spec = make_spec()
        swapped = make_spec(configs=tuple(reversed(spec.configs)))
        assert spec.fingerprint() != swapped.fingerprint()

    def test_survives_wire_round_trip(self):
        spec = make_spec(backend="event", priority="interactive", label="x")
        wire = json.loads(json.dumps(spec.to_dict()))
        restored = JobSpec.from_dict(wire)
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()


class TestValidation:
    def test_empty_configs(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            JobSpec(configs=())

    def test_non_config_entries(self):
        with pytest.raises(ConfigurationError, match=r"configs\[0\]"):
            JobSpec(configs=({"n_ssets": 8},))

    def test_bad_priority(self):
        with pytest.raises(ConfigurationError, match="priority"):
            make_spec(priority="urgent")

    def test_bad_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            make_spec(workers="four")

    def test_from_dict_unknown_field(self):
        data = make_spec().to_dict()
        data["retries"] = 3
        with pytest.raises(ConfigurationError, match="retries"):
            JobSpec.from_dict(data)

    def test_from_dict_bad_config_named(self):
        data = make_spec().to_dict()
        data["configs"][1]["generations"] = "lots"
        with pytest.raises(ConfigurationError, match=r"configs\[1\].*generations"):
            JobSpec.from_dict(data)

    def test_from_dict_version_check(self):
        data = make_spec().to_dict()
        data["version"] = SPEC_FORMAT_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            JobSpec.from_dict(data)

    def test_from_dict_bad_share_engine(self):
        data = make_spec().to_dict()
        data["share_engine"] = "yes"
        with pytest.raises(ConfigurationError, match="share_engine"):
            JobSpec.from_dict(data)

    def test_summary_mentions_shape(self):
        text = make_spec(label="tag").summary()
        assert "2 run(s)" in text
        assert "tag" in text
