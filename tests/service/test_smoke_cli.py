"""Subprocess smoke test: `repro serve` + client, the CI acceptance path.

Starts the real server process, submits two identical and one distinct
job, and asserts the duplicate is served from cache with results matching
a direct in-process ``run_sweep`` call.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import run_sweep
from repro.core import EvolutionConfig
from repro.io import result_to_dict
from repro.service import JobSpec, SweepClient

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def served_url():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"listening on (http://[0-9.:]+)", line)
        assert match, f"no listen line from serve: {line!r}"
        yield match.group(1)
    finally:
        process.terminate()
        process.wait(timeout=10)


def test_serve_cache_hit_matches_direct(served_url):
    client = SweepClient(served_url)
    deadline = time.monotonic() + 10
    while True:
        try:
            client.health()
            break
        except Exception:
            assert time.monotonic() < deadline, "server never came up"
            time.sleep(0.1)

    configs = tuple(
        EvolutionConfig(n_ssets=8, generations=300, rounds=16, seed=700 + i)
        for i in range(2)
    )
    spec = JobSpec(configs=configs)
    distinct = JobSpec(
        configs=tuple(c.with_updates(seed=c.seed + 50) for c in configs)
    )

    first = client.submit(spec)
    second = client.submit(spec)
    third = client.submit(distinct)
    finals = [
        client.wait(s["job_id"], timeout=120) for s in (first, second, third)
    ]
    assert all(s["state"] == "done" for s in finals)
    assert finals[1]["cache_hit"] or finals[1]["coalesced_with"]
    assert not finals[2]["cache_hit"]

    p1 = client.result(first["job_id"], events=True)
    p2 = client.result(second["job_id"], events=True)
    assert p1["results"] == p2["results"]  # bit-identical duplicate payload

    volatile = ("wallclock_seconds", "cache_hits", "cache_misses", "backend")
    strip = lambda d: {k: v for k, v in d.items() if k not in volatile}
    direct = run_sweep(list(configs), backend="ensemble")
    for served, local in zip(p1["results"], direct):
        assert strip(served) == strip(
            result_to_dict(local, include_events=True)
        )
