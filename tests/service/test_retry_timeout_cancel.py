"""Tests for job retries, wall-clock timeouts, cancellation, and drain."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import faults
from repro.api import run_sweep
from repro.core import EvolutionConfig
from repro.errors import (
    ConfigurationError,
    DrainingError,
    QueueFullError,
    ServiceError,
)
from repro.service import (
    JobQueue,
    JobSpec,
    JobState,
    RetryPolicy,
    SweepClient,
    SweepServer,
)

from test_queue import GatedRunner, spec_for


class TestRetryPolicy:
    def test_defaults_are_single_attempt(self):
        assert RetryPolicy().max_attempts == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError, match="NoSuchError"):
            RetryPolicy(transient=("NoSuchError",))
        with pytest.raises(ConfigurationError, match="unknown"):
            RetryPolicy.from_dict({"max_attempts": 2, "bogus": 1})

    def test_classification(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.is_transient(OSError("disk hiccup"))
        assert policy.is_transient(TimeoutError())
        assert not policy.is_transient(ValueError("bad config"))
        custom = RetryPolicy(max_attempts=3, transient=("KeyError",))
        assert custom.is_transient(KeyError("x"))
        assert not custom.is_transient(OSError())

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            max_attempts=9, base_delay=0.1, max_delay=1.0, factor=2.0
        )
        first = policy.backoff_delay(1, key="fp")
        assert first == policy.backoff_delay(1, key="fp")  # pure function
        assert first != policy.backoff_delay(1, key="other")  # decorrelated
        assert policy.backoff_delay(9, key="fp") <= 1.0  # capped
        exact = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        assert exact.backoff_delay(2) == pytest.approx(0.2)

    def test_dict_roundtrip_via_jobspec(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        spec = spec_for(seed=400, retry=policy, timeout=5.0)
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone.retry == policy
        assert clone.timeout == 5.0
        # Execution envelope only: retry/timeout never shift the science.
        assert clone.fingerprint() == spec_for(seed=400).fingerprint()


class TestRetries:
    def test_transient_failure_succeeds_on_retry_bit_identically(self):
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "service.execute", "exception": "TransientError",
             "match": {"attempt": 1}},
        ]})
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        with faults.armed(plan), JobQueue(workers=1) as queue:
            job = queue.submit(spec_for(seed=410, retry=policy))
            assert job.wait(timeout=60)
            assert job.state == JobState.DONE
            assert job.attempts == 2
            assert job.retries == 1
            assert "TransientError" in job.last_failure
            assert queue.stats()["retries_total"] == 1
        direct = run_sweep(
            [EvolutionConfig(n_ssets=8, generations=300, rounds=16,
                             seed=410)],
            backend="ensemble",
        )[0]
        retried = job.results[0]
        assert (
            retried.population.strategy_matrix()
            == direct.population.strategy_matrix()
        ).all()
        assert retried.n_pc_events == direct.n_pc_events
        assert retried.n_mutations == direct.n_mutations

    def test_permanent_failure_fails_fast(self):
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "service.execute", "exception": "ValueError",
             "times": None},
        ]})
        policy = RetryPolicy(max_attempts=5, base_delay=0.01)
        with faults.armed(plan), JobQueue(workers=1) as queue:
            job = queue.submit(spec_for(seed=420, retry=policy))
            assert job.wait(timeout=30)
            assert job.state == JobState.FAILED
            assert job.attempts == 1  # ValueError is not transient
            assert "ValueError" in job.error

    def test_retries_exhausted(self):
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "service.execute", "exception": "TransientError",
             "times": None},
        ]})
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        with faults.armed(plan), JobQueue(workers=1) as queue:
            job = queue.submit(spec_for(seed=430, retry=policy))
            assert job.wait(timeout=30)
            assert job.state == JobState.FAILED
            assert job.attempts == 3
            assert job.retries == 2

    def test_no_policy_means_no_retry(self):
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "service.execute", "exception": "TransientError"},
        ]})
        with faults.armed(plan), JobQueue(workers=1) as queue:
            job = queue.submit(spec_for(seed=440))
            assert job.wait(timeout=30)
            assert job.state == JobState.FAILED
            assert job.attempts == 1


class TestTimeout:
    def test_hung_job_times_out_and_frees_its_slot(self):
        # The delay fault hangs attempt 1 past the job's deadline; the
        # driver's first cooperative check then raises JobTimeoutError.
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "service.execute", "action": "delay", "delay": 0.6},
        ]})
        with faults.armed(plan), JobQueue(workers=1) as queue:
            hung = queue.submit(spec_for(seed=450, timeout=0.2))
            assert hung.wait(timeout=30)
            assert hung.state == JobState.FAILED
            assert "timeout" in hung.error
            assert "cooperatively" in hung.error
            assert queue.stats()["timeout_total"] == 1
            # The worker slot is free again: an ordinary job runs to done.
            follow_up = queue.submit(spec_for(seed=451))
            assert follow_up.wait(timeout=60)
            assert follow_up.state == JobState.DONE

    def test_timeout_is_not_retried(self):
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "service.execute", "action": "delay", "delay": 0.6},
        ]})
        policy = RetryPolicy(max_attempts=5, base_delay=0.01)
        with faults.armed(plan), JobQueue(workers=1) as queue:
            job = queue.submit(
                spec_for(seed=455, timeout=0.2, retry=policy)
            )
            assert job.wait(timeout=30)
            assert job.state == JobState.FAILED
            assert job.attempts == 1  # the deadline covers the whole job


class TestCancel:
    def test_cancel_queued_job(self):
        runner = GatedRunner()
        with JobQueue(workers=1, _run_sweep=runner) as queue:
            running = queue.submit(spec_for(seed=460))
            assert runner.started.wait(timeout=10)
            waiting = queue.submit(spec_for(seed=461))
            assert queue.cancel(waiting.job_id, "operator said so")
            assert waiting.state == JobState.CANCELLED
            assert waiting.error == "operator said so"
            assert queue.stats()["cancelled_total"] == 1
            runner.gate.set()
            assert running.wait(timeout=30)
            assert running.state == JobState.DONE  # untouched by the cancel

    def test_cancel_running_job_cooperatively(self):
        long_spec = JobSpec(configs=(
            EvolutionConfig(n_ssets=16, generations=50_000_000, rounds=16,
                            seed=470),
        ), backend="event")
        with JobQueue(workers=1) as queue:
            job = queue.submit(long_spec)
            deadline = time.monotonic() + 10
            while job.state != JobState.RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert queue.cancel(job.job_id)
            assert job.wait(timeout=30)  # aborts within one generation
            assert job.state == JobState.CANCELLED

    def test_cancel_finished_job_is_a_noop(self):
        with JobQueue(workers=1) as queue:
            job = queue.submit(spec_for(seed=480))
            assert job.wait(timeout=60)
            assert queue.cancel(job.job_id) is False
            assert job.state == JobState.DONE

    def test_cancel_cuts_retry_backoff_short(self):
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "service.execute", "exception": "TransientError",
             "times": None},
        ]})
        # A 60s backoff would stall the test; the cancel must cut it.
        policy = RetryPolicy(max_attempts=5, base_delay=60.0, jitter=0.0)
        with faults.armed(plan), JobQueue(workers=1) as queue:
            job = queue.submit(spec_for(seed=485, retry=policy))
            deadline = time.monotonic() + 10
            while job.retries < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            start = time.monotonic()
            assert queue.cancel(job.job_id)
            assert job.wait(timeout=10)
            assert time.monotonic() - start < 5.0
            assert job.state == JobState.CANCELLED


class TestDrain:
    def test_draining_queue_rejects_submissions(self):
        runner = GatedRunner()
        queue = JobQueue(workers=1, _run_sweep=runner)
        running = queue.submit(spec_for(seed=490))
        assert runner.started.wait(timeout=10)
        drainer = threading.Thread(target=queue.drain, args=(5.0,))
        drainer.start()
        deadline = time.monotonic() + 10
        while not queue.draining:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        with pytest.raises(DrainingError, match="draining"):
            queue.submit(spec_for(seed=491))
        assert queue.stats()["draining"]
        runner.gate.set()  # the running job finishes inside the deadline
        drainer.join(timeout=30)
        assert not drainer.is_alive()
        assert running.state == JobState.DONE
        queue.close()


class TestCloseLeak:
    def test_close_raises_when_worker_is_wedged(self):
        runner = GatedRunner()
        queue = JobQueue(workers=1, _run_sweep=runner)
        queue._JOIN_TIMEOUT = 0.5  # keep the leak detection fast
        job = queue.submit(spec_for(seed=500))
        assert runner.started.wait(timeout=10)
        # The runner never releases: the worker is wedged, the scheduler
        # can never stop, and close() must say so instead of leaking the
        # threads silently.
        with pytest.raises(ServiceError, match="leaked threads"):
            queue.close()
        runner.gate.set()  # let the orphaned worker exit
        assert job.wait(timeout=30)


class TestHTTPSurface:
    @pytest.fixture
    def gated_service(self):
        runner = GatedRunner()
        queue = JobQueue(workers=1, max_queued=1, _run_sweep=runner)
        with SweepServer(port=0, queue=queue) as server:
            yield runner, queue, SweepClient(
                server.url, rng=random.Random(7)
            )
        runner.gate.set()
        queue.close()

    def test_delete_route_cancels(self, gated_service):
        runner, queue, client = gated_service
        running = client.submit(spec_for(seed=510))
        assert runner.started.wait(timeout=10)
        waiting = client.submit(spec_for(seed=511))
        response = client.cancel(waiting["job_id"])
        assert response["cancelled"]
        assert response["state"] == "cancelled"
        # wait() resolves on the cancelled state, not just done/failed.
        final = client.wait(waiting["job_id"], timeout=10)
        assert final["state"] == "cancelled"
        assert client.cancel(waiting["job_id"])["cancelled"] is False
        runner.gate.set()
        assert client.wait(running["job_id"], timeout=30)["state"] == "done"

    def test_429_carries_retry_after(self, gated_service):
        runner, queue, client = gated_service
        client.submit(spec_for(seed=520))
        assert runner.started.wait(timeout=10)
        client.submit(spec_for(seed=521))  # fills max_queued=1
        with pytest.raises(QueueFullError) as excinfo:
            client.submit(spec_for(seed=522))
        assert excinfo.value.retry_after == 1.0

    def test_submit_retries_until_queue_frees_up(self, gated_service):
        runner, queue, client = gated_service
        client.submit(spec_for(seed=530))
        assert runner.started.wait(timeout=10)
        client.submit(spec_for(seed=531))  # fills max_queued=1
        releaser = threading.Timer(0.5, runner.gate.set)
        releaser.start()
        try:
            # Rejected with 429 at first; honors Retry-After and lands
            # once the gate releases the head of the queue.
            status = client.submit(spec_for(seed=532), retries=30)
            assert status["state"] in ("queued", "running")
            final = client.wait(status["job_id"], timeout=60)
            assert final["state"] == "done"
        finally:
            releaser.cancel()

    def test_503_while_draining(self, gated_service):
        runner, queue, client = gated_service
        running = client.submit(spec_for(seed=540))
        assert runner.started.wait(timeout=10)
        drainer = threading.Thread(target=queue.drain, args=(5.0,))
        drainer.start()
        deadline = time.monotonic() + 10
        while not queue.draining:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        with pytest.raises(DrainingError) as excinfo:
            client.submit(spec_for(seed=541))
        assert excinfo.value.retry_after == 5.0
        runner.gate.set()
        drainer.join(timeout=30)
        assert not drainer.is_alive()
        assert client.job(running["job_id"])["state"] == "done"


class TestClientBackoff:
    def test_wait_backs_off_with_decorrelated_jitter(self):
        observed = []

        class FakeRng:
            def uniform(self, low, high):
                observed.append((low, high))
                return high  # always take the top of the window

        client = SweepClient("http://invalid.example", rng=FakeRng())
        delay = 0.05
        delays = []
        for _ in range(6):
            delay = client._jittered(delay, 0.05, 2.0)
            delays.append(delay)
        # Grows toward the cap and never past it.
        assert delays == sorted(delays)
        assert delays[-1] == 2.0
        assert all(low == 0.05 for low, _ in observed)
