"""Tests for the durable job journal and queue restart recovery."""

from __future__ import annotations

import json
import shutil
import threading

import pytest

from repro import faults
from repro.api import run_sweep
from repro.core import EvolutionConfig
from repro.errors import FaultInjected, ServiceError
from repro.service import JobJournal, JobQueue, JobState, ResultStore

from test_queue import GatedRunner, spec_for


class TestJournalRecords:
    def test_roundtrip_and_pending_rules(self, tmp_path):
        path = tmp_path / "jobs.wal"
        journal = JobJournal(path)
        journal.record("submitted", "job-1", fingerprint="f1", spec={"a": 1})
        journal.record("submitted", "job-2", fingerprint="f2", spec={"a": 2})
        journal.record("started", "job-1", attempt=1)
        journal.record("done", "job-1")
        journal.record("submitted", "job-3", fingerprint="f3", spec={"a": 3})
        journal.record("started", "job-2", attempt=1)  # in-flight at "crash"
        journal.close()
        pending = JobJournal.replay(path)
        # job-1 finished; job-2 was in flight (back to pending); job-3
        # never started.  Admission order is preserved.
        assert [r["job_id"] for r in pending] == ["job-2", "job-3"]
        assert pending[0]["spec"] == {"a": 2}

    def test_absent_journal_is_empty_backlog(self, tmp_path):
        assert JobJournal.replay(tmp_path / "missing.wal") == []

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "jobs.wal"
        journal = JobJournal(path)
        journal.record("submitted", "job-1", spec={})
        journal.record("submitted", "job-2", spec={})
        journal.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])  # tear the last append mid-record
        pending = JobJournal.replay(path)
        assert [r["job_id"] for r in pending] == ["job-1"]

    def test_torn_middle_line_raises(self, tmp_path):
        path = tmp_path / "jobs.wal"
        lines = [
            json.dumps({"type": "submitted", "job_id": "job-1", "spec": {}}),
            '{"type": "submitt',  # torn, but NOT the final line
            json.dumps({"type": "submitted", "job_id": "job-3", "spec": {}}),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ServiceError, match="corrupt at line 2"):
            JobJournal.replay(path)

    def test_reset_truncates_atomically(self, tmp_path):
        path = tmp_path / "jobs.wal"
        journal = JobJournal(path)
        journal.record("submitted", "job-1", spec={})
        journal.reset()
        assert path.read_bytes() == b""
        assert JobJournal.replay(path) == []
        journal.record("submitted", "job-2", spec={})  # usable after reset
        journal.close()
        assert [r["job_id"] for r in JobJournal.replay(path)] == ["job-2"]

    def test_fsync_failure_surfaces_via_fault_site(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.wal")
        plan = faults.FaultPlan.from_dict(
            {"faults": [{"site": "service.journal",
                         "match": {"type": "done"}}]}
        )
        with faults.armed(plan):
            journal.record("submitted", "job-1", spec={})  # no match
            with pytest.raises(FaultInjected):
                journal.record("done", "job-1")
        journal.close()
        # The failed append wrote nothing: job-1 is still pending.
        assert len(JobJournal.replay(journal.path)) == 1


class TestQueueRecovery:
    def test_restart_replays_pending_jobs_bit_identically(self, tmp_path):
        wal = tmp_path / "jobs.wal"
        runner = GatedRunner()
        crashed = JobQueue(workers=1, journal=wal, _run_sweep=runner)
        running = crashed.submit(spec_for(seed=300))
        assert runner.started.wait(timeout=10)
        queued = crashed.submit(spec_for(seed=301, n=2))
        # Simulate the crash: copy the WAL as the kill instant left it —
        # both jobs admitted, neither finished — then let the orphaned
        # queue drain away without touching the copy.
        frozen = tmp_path / "crashed.wal"
        shutil.copy(wal, frozen)
        runner.gate.set()
        assert running.wait(timeout=30) and crashed.close() is None

        revived = JobQueue(workers=1, journal=frozen)
        try:
            assert revived.recovered_total == 2
            assert revived.recovery_errors == 0
            jobs = revived.jobs()
            assert [j.recovered_from for j in jobs] == [
                running.job_id, queued.job_id
            ]
            for job in jobs:
                assert job.wait(timeout=60)
                assert job.state == JobState.DONE
            # Replayed results are bit-identical to a direct run: the
            # journaled spec pins the science completely.
            direct = run_sweep(
                [EvolutionConfig(n_ssets=8, generations=300, rounds=16,
                                 seed=300)],
                backend="ensemble",
            )[0]
            replayed = jobs[0].results[0]
            assert (
                replayed.population.strategy_matrix()
                == direct.population.strategy_matrix()
            ).all()
            assert replayed.n_pc_events == direct.n_pc_events
            # The journal was compacted and re-written: only the replay's
            # own records remain, all of them terminal by now.
            assert JobJournal.replay(frozen) == []
        finally:
            revived.close()

    def test_finished_jobs_do_not_replay(self, tmp_path):
        wal = tmp_path / "jobs.wal"
        first = JobQueue(workers=1, journal=wal)
        job = first.submit(spec_for(seed=310))
        assert job.wait(timeout=60)
        first.close()
        second = JobQueue(workers=1, journal=wal)
        try:
            assert second.recovered_total == 0
            assert second.jobs() == []
        finally:
            second.close()

    def test_recovered_job_hits_disk_cache(self, tmp_path):
        wal = tmp_path / "jobs.wal"
        store = ResultStore(artifact_dir=tmp_path / "artifacts")
        runner = GatedRunner()
        # The leader finishes (artifact on disk) but a duplicate is still
        # queued when the "crash" happens.
        crashed = JobQueue(workers=1, journal=wal, store=store,
                           _run_sweep=runner)
        leader = crashed.submit(spec_for(seed=320))
        assert runner.started.wait(timeout=10)
        runner.gate.set()
        assert leader.wait(timeout=30)
        runner.gate.clear()
        runner.started.clear()
        blocker = crashed.submit(spec_for(seed=321))
        assert runner.started.wait(timeout=10)
        frozen = tmp_path / "crashed.wal"
        shutil.copy(wal, frozen)
        runner.gate.set()
        assert blocker.wait(timeout=30) and crashed.close() is None

        revived = JobQueue(
            workers=1,
            journal=frozen,
            store=ResultStore(artifact_dir=tmp_path / "artifacts"),
        )
        try:
            assert revived.recovered_total == 1
            job = revived.jobs()[0]
            assert job.wait(timeout=60)
            # blocker's artifact was already on disk: the replay resolves
            # from the store without re-executing.
            assert job.cache_hit
        finally:
            revived.close()

    def test_replay_overrides_backpressure(self, tmp_path):
        wal = tmp_path / "jobs.wal"
        journal = JobJournal(wal)
        for i in range(4):
            journal.record(
                "submitted", f"job-{i}",
                spec=spec_for(seed=330 + i).to_dict(),
            )
        journal.close()
        # max_queued=1 would reject 3 of the 4 at runtime; a restart must
        # admit the whole backlog anyway — bouncing journaled jobs at
        # startup would turn recovery into data loss.
        queue = JobQueue(workers=1, max_queued=1, journal=wal)
        try:
            assert queue.recovered_total == 4
            for job in queue.jobs():
                assert job.wait(timeout=60)
                assert job.state == JobState.DONE
        finally:
            queue.close()

    def test_unparseable_backlog_record_is_counted_not_fatal(self, tmp_path):
        wal = tmp_path / "jobs.wal"
        journal = JobJournal(wal)
        journal.record("submitted", "job-0", spec={"configs": "garbage"})
        journal.record("submitted", "job-1", spec=spec_for(seed=340).to_dict())
        journal.close()
        queue = JobQueue(workers=1, journal=wal)
        try:
            assert queue.recovered_total == 1
            assert queue.recovery_errors == 1
            assert queue.stats()["recovery_errors"] == 1
        finally:
            queue.close()

    def test_drain_preserves_backlog_for_restart(self, tmp_path):
        wal = tmp_path / "jobs.wal"
        runner = GatedRunner()
        queue = JobQueue(workers=1, journal=wal, _run_sweep=runner)
        running = queue.submit(spec_for(seed=350))
        assert runner.started.wait(timeout=10)
        waiting = queue.submit(spec_for(seed=351))
        drainer = threading.Thread(target=queue.drain, args=(0.3,))
        drainer.start()
        assert waiting.wait(timeout=10)
        assert waiting.state == JobState.CANCELLED
        assert "drain" in waiting.error
        # Hold the gate until the drain deadline has cancelled the running
        # job's token, then release: the runner reaches the driver's token
        # check and aborts cooperatively (releasing earlier would let the
        # run finish and journal "done", which is the other, untested path).
        assert running.cancel_token._cancelled.wait(timeout=10)
        runner.gate.set()
        drainer.join(timeout=30)
        assert not drainer.is_alive()
        queue.close()
        # Neither job got a terminal journal record — both replay.
        pending = JobJournal.replay(wal)
        assert [r["job_id"] for r in pending] == [
            running.job_id, waiting.job_id
        ]
