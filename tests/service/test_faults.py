"""Tests for the deterministic fault-injection harness (repro.faults)."""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.api import run_sweep
from repro.core import EvolutionConfig
from repro.errors import (
    ConfigurationError,
    FaultInjected,
    JobCancelledError,
    TransientError,
)


def plan_for(*fault_dicts, seed: int = 0) -> faults.FaultPlan:
    return faults.FaultPlan.from_dict(
        {"seed": seed, "faults": list(fault_dicts)}
    )


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="site"):
            faults.FaultSpec("")
        with pytest.raises(ConfigurationError, match="action"):
            faults.FaultSpec("x", "explode")
        with pytest.raises(ConfigurationError, match="mode"):
            faults.FaultSpec("x", "corrupt", mode="shred")
        with pytest.raises(ConfigurationError, match="exception"):
            faults.FaultSpec("x", exception="NoSuchError")
        with pytest.raises(ConfigurationError, match="times"):
            faults.FaultSpec("x", times=0)
        with pytest.raises(ConfigurationError, match="after"):
            faults.FaultSpec("x", after=-1)
        with pytest.raises(ConfigurationError, match="unknown"):
            faults.FaultSpec.from_dict({"site": "x", "bogus": 1})

    def test_dict_roundtrip(self):
        spec = faults.FaultSpec(
            "service.execute",
            exception="TransientError",
            after=2,
            times=3,
            match={"attempt": 1},
        )
        clone = faults.FaultSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()


class TestTriggering:
    def test_disarmed_is_noop(self):
        faults.check("anything.at.all", attempt=1)  # must not raise
        assert faults.hook("anything.at.all") is None
        assert faults.active() is None

    def test_triggers_on_nth_hit(self):
        plan = plan_for(
            {"site": "s", "exception": "FaultInjected", "after": 2}
        )
        with faults.armed(plan):
            faults.check("s")
            faults.check("s")
            with pytest.raises(FaultInjected, match="injected fault"):
                faults.check("s")
            faults.check("s")  # times=1: the window is spent
        assert plan.stats() == [
            {"site": "s", "action": "raise", "hits": 4, "triggered": 1}
        ]

    def test_times_none_triggers_every_hit(self):
        plan = plan_for({"site": "s", "times": None})
        with faults.armed(plan):
            for _ in range(3):
                with pytest.raises(FaultInjected):
                    faults.check("s")

    def test_match_filters_context(self):
        plan = plan_for(
            {"site": "s", "exception": "TransientError",
             "match": {"attempt": 1}}
        )
        with faults.armed(plan):
            faults.check("s", attempt=2)  # no match, not even a hit
            with pytest.raises(TransientError):
                faults.check("s", attempt=1)
        assert plan.stats()[0]["hits"] == 1

    def test_cancel_action(self):
        plan = plan_for({"site": "s", "action": "cancel",
                         "message": "chaos says stop"})
        with faults.armed(plan):
            with pytest.raises(JobCancelledError, match="chaos says stop"):
                faults.check("s")

    def test_hook_binds_only_named_sites(self):
        plan = plan_for({"site": "named"})
        with faults.armed(plan):
            assert faults.hook("other") is None
            bound = faults.hook("named")
            assert bound is not None
            with pytest.raises(FaultInjected):
                bound()

    def test_armed_restores_previous_plan(self):
        outer = plan_for({"site": "a"})
        inner = plan_for({"site": "b"})
        with faults.armed(outer):
            with faults.armed(inner):
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None

    def test_arm_disarm(self):
        plan = plan_for({"site": "s"})
        faults.arm(plan)
        try:
            assert faults.active() is plan
        finally:
            faults.disarm()
        assert faults.active() is None


class TestParsing:
    def test_from_json_inline_and_path(self, tmp_path):
        payload = {"seed": 7, "faults": [{"site": "s"}]}
        inline = faults.FaultPlan.from_json(json.dumps(payload))
        assert inline.seed == 7 and inline.specs[0].site == "s"
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert faults.FaultPlan.from_json(f"@{path}").seed == 7
        assert faults.FaultPlan.from_json(str(path)).seed == 7

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert faults.FaultPlan.from_env() is None
        monkeypatch.setenv(
            faults.ENV_VAR, '{"faults": [{"site": "s"}]}'
        )
        plan = faults.FaultPlan.from_env()
        assert plan is not None and plan.specs[0].site == "s"

    def test_bad_plans_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            faults.FaultPlan.from_json("{not json")
        with pytest.raises(ConfigurationError, match="unknown"):
            faults.FaultPlan.from_dict({"seed": 0, "bogus": []})
        with pytest.raises(ConfigurationError, match="list"):
            faults.FaultPlan.from_dict({"faults": "nope"})


class TestCorruptFile:
    def test_truncate_at_explicit_offset(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"0123456789")
        plan = plan_for({"site": "w", "action": "corrupt", "at": 4})
        with faults.armed(plan):
            faults.corrupt_file("w", path)
        assert path.read_bytes() == b"0123"

    def test_flip_at_explicit_offset(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"\x00" * 8)
        plan = plan_for(
            {"site": "w", "action": "corrupt", "mode": "flip", "at": 3}
        )
        with faults.armed(plan):
            faults.corrupt_file("w", path)
        assert path.read_bytes() == b"\x00\x00\x00\xff\x00\x00\x00\x00"

    def test_seeded_offset_is_reproducible(self, tmp_path):
        torn = []
        for attempt in range(2):
            path = tmp_path / f"f{attempt}.bin"
            path.write_bytes(bytes(range(64)))
            plan = plan_for(
                {"site": "w", "action": "corrupt"}, seed=99
            )
            with faults.armed(plan):
                faults.corrupt_file("w", path)
            torn.append(path.read_bytes())
        assert torn[0] == torn[1]  # same plan -> same tear, byte for byte

    def test_check_ignores_corrupt_specs_and_vice_versa(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"abcdef")
        plan = plan_for(
            {"site": "w", "action": "corrupt", "at": 1},
            {"site": "w", "action": "raise"},
        )
        with faults.armed(plan):
            with pytest.raises(FaultInjected):
                faults.check("w")  # the raise spec, not the corrupt one
            faults.corrupt_file("w", path)  # the corrupt spec only
        assert path.read_bytes() == b"a"


class TestDriverIntegration:
    """The drivers' "driver.generation" site fires inside real runs."""

    CONFIG = EvolutionConfig(n_ssets=8, generations=300, rounds=16, seed=41)

    @pytest.mark.parametrize("backend", ["event", "ensemble"])
    def test_generation_site_raises_mid_run(self, backend):
        plan = plan_for(
            {"site": "driver.generation", "exception": "TransientError",
             "after": 2}
        )
        with faults.armed(plan):
            with pytest.raises(TransientError):
                run_sweep([self.CONFIG], backend=backend)
        stats = plan.stats()[0]
        assert stats["triggered"] == 1
        assert stats["hits"] == 3  # fired exactly at the 3rd event generation

    def test_disarmed_run_is_unperturbed(self):
        baseline = run_sweep([self.CONFIG], backend="event")[0]
        plan = plan_for(
            {"site": "driver.generation", "after": 10_000_000}
        )
        with faults.armed(plan):
            armed_run = run_sweep([self.CONFIG], backend="event")[0]
        assert (
            armed_run.population.strategy_matrix()
            == baseline.population.strategy_matrix()
        ).all()
        assert armed_run.n_pc_events == baseline.n_pc_events
