"""Tests for k-means, classification, metrics, heatmaps, and tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    classify,
    cluster_order,
    cooperation_propensity,
    dominance_timeline,
    format_table,
    hamming_distance,
    lloyd_kmeans,
    nearest_classic,
    population_cooperation_rate,
    render_raster,
    strategy_entropy,
    strategy_richness,
)
from repro.core import (
    MEMORY_ONE_GRAY_ORDER,
    Population,
    all_c,
    all_d,
    grim,
    gtft,
    tft,
    wsls,
)
from repro.errors import ConfigurationError, StrategyError
from repro.rng import make_rng


class TestKMeans:
    def test_separates_two_obvious_clusters(self):
        rng = make_rng(0)
        a = rng.normal(0.0, 0.05, size=(20, 4))
        b = rng.normal(1.0, 0.05, size=(30, 4))
        data = np.vstack([a, b])
        result = lloyd_kmeans(data, 2, make_rng(1))
        labels_a = set(result.labels[:20].tolist())
        labels_b = set(result.labels[20:].tolist())
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_inertia_decreases_with_k(self):
        rng = make_rng(3)
        data = rng.random((60, 4))
        inertias = [
            lloyd_kmeans(data, k, make_rng(4)).inertia for k in (1, 2, 4, 8)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_k_one_center_is_mean(self):
        data = make_rng(5).random((40, 3))
        result = lloyd_kmeans(data, 1, make_rng(6))
        np.testing.assert_allclose(result.centers[0], data.mean(axis=0))

    def test_duplicate_points_handled(self):
        data = np.zeros((10, 4))
        result = lloyd_kmeans(data, 3, make_rng(7))
        assert result.inertia == pytest.approx(0.0)

    def test_cluster_order_groups_and_sorts_by_size(self):
        data = np.vstack([np.zeros((5, 2)), np.ones((15, 2))])
        result = lloyd_kmeans(data, 2, make_rng(8))
        order = cluster_order(result)
        ordered_labels = result.labels[order]
        # Largest cluster first, each cluster contiguous.
        assert len(set(ordered_labels[:15].tolist())) == 1
        assert len(set(ordered_labels[15:].tolist())) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lloyd_kmeans(np.zeros((5, 2)), 0, make_rng(0))
        with pytest.raises(ConfigurationError):
            lloyd_kmeans(np.zeros((5, 2)), 6, make_rng(0))
        with pytest.raises(ConfigurationError):
            lloyd_kmeans(np.zeros(5), 2, make_rng(0))

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_labels_in_range(self, seed):
        data = make_rng(seed).random((25, 3))
        result = lloyd_kmeans(data, 4, make_rng(seed + 1))
        assert set(result.labels.tolist()) <= set(range(4))
        assert result.cluster_sizes().sum() == 25


class TestClassification:
    def test_exact_classics(self):
        assert classify(wsls(1)) == "WSLS"
        assert classify(tft(1)) == "TFT"
        assert classify(all_c(1)) == "ALLC"
        assert classify(all_d(1)) == "ALLD"
        assert classify(grim(1)) == "GRIM"

    def test_lifted_classics_still_classify(self):
        assert classify(wsls(3)) == "WSLS"
        assert classify(tft(2)) == "TFT"

    def test_mixed_not_classified(self):
        assert classify(gtft(0.3, 1)) is None

    def test_unknown_strategy(self):
        from repro.core import Strategy

        weird = Strategy(np.array([1, 0, 0, 1], dtype=np.uint8), 1)
        assert classify(weird) is None
        name, dist = nearest_classic(weird)
        assert dist > 0

    def test_hamming(self):
        assert hamming_distance(all_c(1), all_d(1)) == 4
        assert hamming_distance(wsls(1), wsls(1)) == 0
        with pytest.raises(StrategyError):
            hamming_distance(all_c(1), all_c(2))

    def test_nearest_classic_exact_is_zero(self):
        name, dist = nearest_classic(wsls(2))
        assert name == "WSLS" and dist == 0

    def test_cooperation_propensity(self):
        assert cooperation_propensity(all_c(1)) == 1.0
        assert cooperation_propensity(all_d(1)) == 0.0
        assert cooperation_propensity(wsls(1)) == 0.5


class TestMetrics:
    def test_cooperative_population(self):
        pop = Population.from_strategies([wsls(1)] * 4)
        assert population_cooperation_rate(pop, rounds=100) == pytest.approx(1.0)

    def test_defecting_population(self):
        pop = Population.from_strategies([all_d(1)] * 4)
        assert population_cooperation_rate(pop, rounds=100) == pytest.approx(0.0)

    def test_mixed_population_in_between(self):
        pop = Population.from_strategies([wsls(1)] * 2 + [all_d(1)] * 2)
        rate = population_cooperation_rate(pop, rounds=100)
        assert 0.0 < rate < 1.0

    def test_richness_and_entropy(self):
        pop = Population.from_strategies([wsls(1), wsls(1), tft(1), all_d(1)])
        assert strategy_richness(pop) == 3
        assert 0 < strategy_entropy(pop) <= np.log(4)
        uniform = Population.from_strategies([wsls(1)] * 4)
        assert strategy_entropy(uniform) == pytest.approx(0.0)

    def test_dominance_timeline(self):
        from repro.core import EvolutionConfig, run_event_driven

        cfg = EvolutionConfig(
            n_ssets=8, generations=500, rounds=16, record_every=100, seed=3
        )
        result = run_event_driven(cfg)
        timeline = dominance_timeline(result.snapshots)
        assert timeline[0][0] == 0
        assert timeline[-1][0] == 500
        assert all(0 < share <= 1 for _, share in timeline)


class TestHeatmap:
    def test_renders_c_and_d(self):
        pop = Population.from_strategies([all_c(1), all_d(1)])
        text = render_raster(pop.strategy_matrix(), title="raster")
        lines = text.splitlines()
        assert lines[1] == "...."
        assert lines[2] == "####"

    def test_column_order_gray(self):
        pop = Population.from_strategies([wsls(1)])
        natural = render_raster(pop.strategy_matrix())
        gray = render_raster(
            pop.strategy_matrix(), column_order=MEMORY_ONE_GRAY_ORDER
        )
        assert natural.splitlines()[-1] == ".##."
        assert gray.splitlines()[-1] == ".#.#"  # the paper's 0101

    def test_row_subsampling(self):
        pop = Population.from_strategies([all_c(1)] * 100)
        text = render_raster(pop.strategy_matrix(), max_rows=10)
        assert len(text.splitlines()) == 10

    def test_bad_column_order(self):
        pop = Population.from_strategies([all_c(1)])
        with pytest.raises(ConfigurationError):
            render_raster(pop.strategy_matrix(), column_order=(0, 0, 1, 2))


class TestTables:
    def test_basic_format(self):
        text = format_table(
            ["Memory", "Strategies"], [[1, 16], [2, 65536]], title="Table IV"
        )
        lines = text.splitlines()
        assert lines[0] == "Table IV"
        assert "Memory" in lines[1]
        assert "65536" in lines[-1]

    def test_row_length_validation(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000001], [123456.0], [1.5]])
        assert "e" in text  # scientific for extremes
