"""Tests for the invasion/ESS analysis (and the Fig. 2 deviation evidence)."""

import pytest

from repro.analysis.invasion import can_invade, invasion_fitness, uninvadable_by
from repro.core import all_c, all_d, all_memory_one_strategies, grim, tft, wsls
from repro.errors import ConfigurationError


class TestInvasionMechanics:
    def test_alld_invades_allc(self):
        assert can_invade(resident=all_c(1), invader=all_d(1))

    def test_allc_cannot_invade_alld(self):
        assert not can_invade(resident=all_d(1), invader=all_d(1))
        assert not can_invade(resident=all_d(1), invader=all_c(1))

    def test_tft_resists_alld(self):
        # Classic direct-reciprocity result: TFT residents out-earn an
        # ALLD invader (mutual cooperation vs punished defection).
        assert not can_invade(resident=tft(1), invader=all_d(1))

    def test_fitness_components(self):
        res = invasion_fitness(all_c(1), all_d(1), n_ssets=10, rounds=100)
        # Residents: 8 mutual-C games (300) + 1 sucker game (0).
        assert res.resident_fitness == pytest.approx(8 * 300 + 0)
        # Invader: 9 temptation games.
        assert res.invader_fitness == pytest.approx(9 * 400)

    def test_small_population_rejected(self):
        with pytest.raises(ConfigurationError):
            invasion_fitness(tft(1), all_d(1), n_ssets=2)


class TestFig2Deviation:
    """Both GRIM and WSLS are uninvadable under errors: the evolved winner
    is decided by basin entry, not stability (EXPERIMENTS.md)."""

    @pytest.mark.parametrize("resident", [grim(1), wsls(1)])
    def test_uninvadable_by_all_pure_memory_one(self, resident):
        challengers = [
            s for s in all_memory_one_strategies() if s != resident
        ]
        survivors = uninvadable_by(
            resident, challengers, n_ssets=100, rounds=200, noise=0.01
        )
        assert len(survivors) == len(challengers)

    def test_wsls_outearns_grim_in_self_play_under_noise(self):
        from repro.core import expected_payoffs

        wsls_self, _, _ = expected_payoffs(wsls(1), wsls(1), 200, noise=0.01)
        grim_self, _, _ = expected_payoffs(grim(1), grim(1), 200, noise=0.01)
        assert wsls_self > 1.5 * grim_self
