"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main

SMALL = ["--ssets", "8", "--generations", "500", "--rounds", "16"]


def dominant_line(capsys) -> str:
    out = capsys.readouterr().out
    (line,) = [l for l in out.splitlines() if l.startswith("dominant:")]
    return line


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out and "fig6b" in out

    def test_run_table(self, capsys):
        assert main(["run", "table5"]) == 0
        out = capsys.readouterr().out
        assert "WSLS" in out or "0101" in out

    def test_run_unknown_experiment(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "fig99"])

    def test_evolve_small(self, capsys):
        assert main(
            ["evolve", "--ssets", "8", "--generations", "500", "--rounds", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "dominant:" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliEntryPoint:
    def test_cli_renders_library_errors(self, capsys):
        from repro.__main__ import cli

        assert cli(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "fig99" in err

    def test_cli_passes_through_success(self, capsys):
        from repro.__main__ import cli

        assert cli(["backends"]) == 0
        assert "event" in capsys.readouterr().out


class TestBackendsCommand:
    def test_lists_all_builtins(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("baseline", "serial", "event", "multiprocess", "des"):
            assert name in out


class TestStructuresCommand:
    def test_lists_all_families_with_params(self, capsys):
        assert main(["structures"]) == 0
        out = capsys.readouterr().out
        for name in ("well-mixed", "complete", "ring", "grid", "regular",
                     "smallworld", "scalefree"):
            assert name in out
        assert "p=" in out  # parameter summaries are shown
        assert "rewiring" in out

    def test_evolve_new_family(self, capsys):
        assert main(
            ["evolve", *SMALL, "--structure", "smallworld:k=2,p=0.2,seed=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "structure=smallworld:k=2,p=0.2,seed=1" in out
        assert "neighborhood cooperation" in out

    def test_unknown_structure_key_errors_helpfully(self, capsys):
        from repro.__main__ import cli

        assert cli(["evolve", *SMALL, "--structure", "ring:K=4"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'k'" in err


class TestEvolveBackends:
    def test_serial_and_event_agree(self, capsys):
        assert main(["evolve", *SMALL, "--backend", "serial"]) == 0
        serial_line = dominant_line(capsys)
        assert main(["evolve", *SMALL, "--backend", "event"]) == 0
        assert dominant_line(capsys) == serial_line

    def test_multiprocess(self, capsys):
        assert main(
            ["evolve", *SMALL, "--backend", "multiprocess", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "dominant:" in out and "backend=multiprocess" in out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["evolve", "--backend", "warp-drive"])

    def test_new_science_flags(self, capsys):
        assert main(
            ["evolve", *SMALL, "--pc-rate", "0.2", "--mutation-rate", "0.01",
             "--record-every", "100", "--seed", "4"]
        ) == 0
        assert "dominant:" in capsys.readouterr().out

    def test_expected_fitness_flag(self, capsys):
        assert main(
            ["evolve", "--ssets", "8", "--generations", "200", "--rounds",
             "16", "--noise", "0.01", "--expected-fitness"]
        ) == 0
        assert "dominant:" in capsys.readouterr().out

    def test_engine_toggle(self, capsys):
        """--no-engine forces the legacy payoff cache; same trajectory."""
        assert main(["evolve", *SMALL]) == 0
        engine_line = dominant_line(capsys)
        assert main(["evolve", *SMALL, "--no-engine"]) == 0
        out = capsys.readouterr().out
        assert "legacy-cache" in out
        (legacy_line,) = [
            l for l in out.splitlines() if l.startswith("dominant:")
        ]
        assert legacy_line == engine_line

    def test_record_events_toggle(self, capsys):
        assert main(["evolve", *SMALL, "--no-record-events"]) == 0
        assert "dominant:" in capsys.readouterr().out

    def test_checkpoint_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "pop.npz")
        assert main(["evolve", *SMALL, "--checkpoint", path]) == 0
        assert (tmp_path / "pop.npz").exists()
        assert main(["evolve", *SMALL, "--checkpoint", path, "--resume"]) == 0
        assert "dominant:" in capsys.readouterr().out


class TestSweepCommand:
    def test_smoke(self, capsys):
        assert main(
            ["sweep", "--ssets", "8", "--generations", "200", "--rounds",
             "16", "--runs", "2", "--workers", "1", "--base-seed", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("dominant:") == 2
        assert "2 runs complete" in out

    def test_default_base_seed_gives_distinct_replicates(self, capsys):
        assert main(
            ["sweep", "--ssets", "8", "--generations", "100", "--rounds",
             "16", "--runs", "3", "--workers", "1"]
        ) == 0
        out = capsys.readouterr().out
        seeds = [l.split("seed=")[1].split("]")[0]
                 for l in out.splitlines() if l.startswith("[memory=")]
        assert len(set(seeds)) == 3

    def test_multiprocess_backend_sweep(self, capsys):
        """--workers feeds the backend's pool; runs execute serially."""
        assert main(
            ["sweep", "--ssets", "8", "--generations", "100", "--rounds",
             "16", "--runs", "2", "--backend", "multiprocess",
             "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("dominant:") == 2

    def test_multiple_memories(self, capsys):
        assert main(
            ["sweep", "--ssets", "8", "--generations", "100", "--rounds",
             "16", "--memory", "1", "2", "--runs", "1", "--workers", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "[memory=1 run=0" in out and "[memory=2 run=0" in out


class TestStructureFlag:
    def test_evolve_structured(self, capsys):
        assert main(
            ["evolve", *SMALL, "--structure", "ring:k=2"]
        ) == 0
        out = capsys.readouterr().out
        assert "structure=ring:k=2" in out
        assert "neighborhood cooperation:" in out
        assert "largest dominant cluster:" in out

    def test_evolve_well_mixed_output_names_structure(self, capsys):
        assert main(["evolve", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "structure=well-mixed" in out
        # Spatial metrics only appear for structured runs.
        assert "neighborhood cooperation:" not in out

    def test_evolve_grid_defaults(self, capsys):
        assert main(
            ["evolve", "--ssets", "16", "--generations", "300", "--rounds",
             "16", "--structure", "grid"]
        ) == 0
        assert "structure=grid:rows=4,cols=4" in capsys.readouterr().out

    def test_sweep_structured(self, capsys):
        assert main(
            ["sweep", "--ssets", "8", "--generations", "200", "--rounds",
             "16", "--runs", "2", "--workers", "1", "--structure", "ring:k=2"]
        ) == 0
        assert capsys.readouterr().out.count("dominant:") == 2

    def test_structured_checkpoint_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "ring.npz")
        args = [*SMALL, "--structure", "ring:k=2", "--checkpoint", path]
        assert main(["evolve", *args]) == 0
        assert main(["evolve", *args, "--resume"]) == 0
        assert "dominant:" in capsys.readouterr().out

    def test_bad_spec_is_clean_cli_error(self, capsys):
        from repro.__main__ import cli

        assert cli(["evolve", *SMALL, "--structure", "moebius:k=3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "moebius" in err

    def test_unsupported_backend_combo_is_clean_cli_error(self, capsys):
        from repro.__main__ import cli

        assert cli(
            ["evolve", *SMALL, "--structure", "ring:k=2",
             "--backend", "baseline"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "well-mixed" in err and "baseline" in err

    def test_infeasible_params_clean_error(self, capsys):
        from repro.__main__ import cli

        # k >= n_ssets: rejected while building the config, not mid-run.
        assert cli(
            ["evolve", "--ssets", "8", "--generations", "100", "--rounds",
             "16", "--structure", "ring:k=8"]
        ) == 2
        assert capsys.readouterr().err.startswith("repro: error:")


class TestRunStateCheckpointing:
    """Mid-run snapshots: --checkpoint-dir / --resume-from / `repro resume`."""

    ARGS = [*SMALL, "--seed", "11", "--checkpoint-every", "200"]

    def checkpointed_run(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(["evolve", *self.ARGS, "--checkpoint-dir", ckpt]) == 0
        (unit_dir,) = (tmp_path / "ckpt").glob("unit-*")
        return unit_dir, dominant_line(capsys)

    def test_evolve_writes_cadenced_snapshots(self, tmp_path, capsys):
        unit_dir, line = self.checkpointed_run(tmp_path, capsys)
        # Cadence 200 over 500 generations -> boundaries 200 and 400.
        assert sorted(p.name for p in unit_dir.iterdir()) == [
            f"gen-{200:012d}", f"gen-{400:012d}",
        ]
        assert line.startswith("dominant:")

    def test_resume_subcommand_finishes_bit_identically(
        self, tmp_path, capsys
    ):
        unit_dir, clean_line = self.checkpointed_run(tmp_path, capsys)
        assert main(["resume", str(unit_dir)]) == 0
        out = capsys.readouterr().out
        assert "resumed-from=400" in out
        (line,) = [l for l in out.splitlines() if l.startswith("dominant:")]
        assert line == clean_line

    def test_resume_accepts_a_single_snapshot_directory(
        self, tmp_path, capsys
    ):
        unit_dir, clean_line = self.checkpointed_run(tmp_path, capsys)
        assert main(["resume", str(unit_dir / f"gen-{200:012d}")]) == 0
        out = capsys.readouterr().out
        assert "resumed-from=200" in out
        (line,) = [l for l in out.splitlines() if l.startswith("dominant:")]
        assert line == clean_line

    def test_evolve_resume_from_matches_clean_run(self, tmp_path, capsys):
        unit_dir, clean_line = self.checkpointed_run(tmp_path, capsys)
        assert main(
            ["evolve", *self.ARGS, "--resume-from", str(unit_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "resumed-from=400" in out
        (line,) = [l for l in out.splitlines() if l.startswith("dominant:")]
        assert line == clean_line

    def test_resume_from_mismatched_config_is_a_did_you_mean_error(
        self, tmp_path, capsys
    ):
        from repro.__main__ import cli

        unit_dir, _ = self.checkpointed_run(tmp_path, capsys)
        assert cli(
            ["evolve", *SMALL, "--seed", "99", "--checkpoint-every", "200",
             "--resume-from", str(unit_dir)]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "did you mean to change these fields?" in err
        assert "seed" in err

    def test_resume_from_a_v1_population_file_errors_helpfully(
        self, tmp_path, capsys
    ):
        from repro.__main__ import cli

        path = str(tmp_path / "pop.npz")
        assert main(["evolve", *SMALL, "--checkpoint", path]) == 0
        capsys.readouterr()
        assert cli(["resume", path]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "--resume" in err  # points at the population-checkpoint flow

    def test_resume_from_nonexistent_artifact_is_clean(self, tmp_path,
                                                       capsys):
        from repro.__main__ import cli

        assert cli(["resume", str(tmp_path / "missing")]) == 2
        assert capsys.readouterr().err.startswith("repro: error:")

    def test_sweep_checkpoint_dir_smoke(self, tmp_path, capsys):
        # Memory 2: memory-1 sweeps auto-enable cross-run pair sharing,
        # the one deterministic mode that (correctly) refuses snapshots.
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["sweep", "--ssets", "8", "--generations", "400", "--rounds",
             "16", "--memory", "2", "--runs", "2", "--workers", "1",
             "--base-seed", "5", "--checkpoint-every", "150",
             "--checkpoint-dir", ckpt]
        ) == 0
        assert capsys.readouterr().out.count("dominant:") == 2
        assert list((tmp_path / "ckpt").glob("unit-*/gen-*/meta.json"))

    def test_sweep_pair_sharing_refuses_snapshots_quietly(self, tmp_path,
                                                          capsys):
        # The memory-1 twin runs fine — it just writes no snapshots.
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["sweep", "--ssets", "8", "--generations", "400", "--rounds",
             "16", "--runs", "2", "--workers", "1", "--base-seed", "5",
             "--checkpoint-every", "150", "--checkpoint-dir", ckpt]
        ) == 0
        assert capsys.readouterr().out.count("dominant:") == 2
        assert not list((tmp_path / "ckpt").glob("unit-*/gen-*/meta.json"))
