"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out and "fig6b" in out

    def test_run_table(self, capsys):
        assert main(["run", "table5"]) == 0
        out = capsys.readouterr().out
        assert "WSLS" in out or "0101" in out

    def test_run_unknown_experiment(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "fig99"])

    def test_evolve_small(self, capsys):
        assert main(
            ["evolve", "--ssets", "8", "--generations", "500", "--rounds", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "dominant:" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
