"""Tests for the InteractionModel layer: specs, graphs, selection, fitness."""

import numpy as np
import pytest

from repro.core import EvolutionConfig, PayoffCache, Population, random_pure
from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.structure import (
    Complete,
    Grid2D,
    InteractionModel,
    RandomRegular,
    RingLattice,
    WellMixed,
    available_structures,
    build_structure,
    is_well_mixed_spec,
    parse_structure_spec,
    register_structure,
)


class TestSpecParsing:
    def test_all_builtins_registered(self):
        assert set(available_structures()) >= {
            "well-mixed",
            "complete",
            "ring",
            "grid",
            "regular",
        }

    def test_bare_name(self):
        assert parse_structure_spec("well-mixed") == ("well-mixed", {})

    def test_params(self):
        assert parse_structure_spec("regular:d=4,seed=7") == (
            "regular",
            {"d": 4, "seed": 7},
        )

    def test_whitespace_tolerated(self):
        assert parse_structure_spec(" ring : k = 4 ") == ("ring", {"k": 4})

    @pytest.mark.parametrize(
        "spec",
        ["", "nope", "ring:k", "ring:k=two", "ring:=4", "well-mixed:k=1",
         "ring:k=2,k=8"],
    )
    def test_bad_specs(self, spec):
        with pytest.raises(ConfigurationError):
            build_structure(spec, 16)

    def test_is_well_mixed_spec(self):
        assert is_well_mixed_spec("well-mixed")
        assert not is_well_mixed_spec("ring:k=2")

    def test_spec_roundtrip(self):
        for spec, n in [
            ("well-mixed", 10),
            ("complete", 10),
            ("ring:k=4", 10),
            ("grid:rows=3,cols=4", 12),
            ("regular:d=3,seed=5", 10),
        ]:
            model = build_structure(spec, n)
            rebuilt = build_structure(model.spec(), n)
            assert rebuilt.spec() == model.spec()
            if not model.is_well_mixed:
                for i in range(n):
                    assert np.array_equal(
                        rebuilt.neighbors(i), model.neighbors(i)
                    )

    def test_passthrough_instance(self):
        model = RingLattice(10, k=2)
        assert build_structure(model, 10) is model
        with pytest.raises(ConfigurationError):
            build_structure(model, 12)  # bound to the wrong size

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            register_structure("ring")(lambda params, n: None)


class TestWellMixed:
    def test_neighbors_is_everyone_else(self):
        model = WellMixed(5)
        assert model.neighbors(2).tolist() == [0, 1, 3, 4]

    def test_select_pair_matches_legacy_draws(self):
        """WellMixed.select_pair consumes the pc stream exactly as the
        historical inline code (teacher, then learner with rejection)."""
        model = WellMixed(8)
        rng_a, rng_b = make_rng(42), make_rng(42)
        for _ in range(200):
            teacher = int(rng_a.integers(8))
            learner = int(rng_a.integers(8))
            while learner == teacher:
                learner = int(rng_a.integers(8))
            assert model.select_pair(rng_b) == (teacher, learner)


class TestRing:
    def test_neighbors(self):
        model = RingLattice(8, k=4)
        assert model.neighbors(0).tolist() == [1, 2, 6, 7]
        assert model.degree(3) == 4
        assert model.n_edges == 8 * 4 // 2

    @pytest.mark.parametrize("k", [0, 1, 3, -2, 8, 9])
    def test_invalid_k(self, k):
        with pytest.raises(ConfigurationError):
            RingLattice(8, k=k)


class TestGrid:
    def test_explicit_dims(self):
        model = Grid2D(12, rows=3, cols=4)
        assert model.spec() == "grid:rows=3,cols=4"
        # Node 0 at (0,0) on a 3x4 torus: up (2,0)=8, down (1,0)=4,
        # left (0,3)=3, right (0,1)=1.
        assert model.neighbors(0).tolist() == [1, 3, 4, 8]

    def test_balanced_default(self):
        model = build_structure("grid", 36)
        assert model.rows * model.cols == 36
        assert {model.rows, model.cols} == {6}

    def test_degenerate_dim_two_dedupes(self):
        model = Grid2D(8, rows=2, cols=4)
        # Row wraparound +1/-1 coincide: degree 3, not 4.
        assert model.degree(0) == 3

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            Grid2D(12, rows=3, cols=5)
        with pytest.raises(ConfigurationError):
            Grid2D(13, rows=13, cols=1)

    def test_partial_params(self):
        with pytest.raises(ConfigurationError):
            build_structure("grid:rows=4", 16)


class TestRandomRegular:
    def test_regularity_and_determinism(self):
        a = RandomRegular(20, d=4, seed=3)
        b = build_structure("regular:d=4,seed=3", 20)
        for i in range(20):
            assert a.degree(i) == 4
            assert np.array_equal(a.neighbors(i), b.neighbors(i))
            assert i not in a.neighbors(i)

    def test_different_seeds_differ(self):
        a = RandomRegular(20, d=4, seed=1)
        b = RandomRegular(20, d=4, seed=2)
        assert any(
            not np.array_equal(a.neighbors(i), b.neighbors(i))
            for i in range(20)
        )

    def test_odd_product_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomRegular(9, d=3)

    def test_degree_too_large(self):
        with pytest.raises(ConfigurationError):
            RandomRegular(4, d=4)

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomRegular(8, d=4, seed=-1)


class TestGraphFitness:
    @pytest.fixture
    def population(self):
        config = EvolutionConfig(n_ssets=12, generations=0, seed=5)
        return Population.random(config, make_rng(5))

    def test_complete_matches_well_mixed(self, population):
        """The all-to-all graph reproduces the histogram fast-path values."""
        cache = PayoffCache(rounds=32)
        complete = Complete(12)
        mixed = WellMixed(12)
        for include_self in (False, True):
            for i in range(12):
                assert complete.fitness_of(
                    population, i, cache, include_self
                ) == pytest.approx(
                    mixed.fitness_of(population, i, cache, include_self)
                )

    def test_neighborhood_sum(self, population):
        """Graph fitness equals the naive per-neighbor payoff sum."""
        cache = PayoffCache(rounds=32)
        model = RingLattice(12, k=4)
        for i in range(12):
            expected = sum(
                cache.payoff_to(
                    population[i].strategy, population[int(j)].strategy
                )
                for j in model.neighbors(i)
            )
            assert model.fitness_of(population, i, cache) == pytest.approx(
                expected
            )

    def test_select_pair_teacher_is_neighbor(self):
        model = Grid2D(16, rows=4, cols=4)
        rng = make_rng(0)
        for _ in range(100):
            teacher, learner = model.select_pair(rng)
            assert teacher in model.neighbors(learner)

    def test_interaction_model_is_abstract(self):
        with pytest.raises(TypeError):
            InteractionModel(4)

    def test_asymmetric_adjacency_rejected(self):
        from repro.structure import GraphStructure

        class Lopsided(GraphStructure):
            name = "lopsided"

            def spec(self):
                return self.name

        with pytest.raises(ConfigurationError, match="not symmetric"):
            Lopsided(
                3,
                [np.array([1]), np.array([0, 2]), np.array([1, 0])],
            )
        with pytest.raises(ConfigurationError, match="more than once"):
            Lopsided(
                2,
                [np.array([1, 1]), np.array([0, 0])],
            )

    def test_string_specs_share_cached_instances(self):
        a = build_structure("regular:d=4,seed=9", 20)
        b = build_structure("regular:d=4,seed=9", 20)
        assert a is b
        assert build_structure("regular:d=4,seed=9", 22) is not a

    def test_neighbor_arrays_are_frozen(self):
        """Cached models hand out their adjacency arrays: they must be
        read-only so no caller can corrupt the shared graph in place."""
        model = build_structure("ring:k=2", 6)
        with pytest.raises(ValueError):
            model.neighbors(0)[0] = 3
