"""Tests for the InteractionModel layer: specs, graphs, selection, fitness."""

import numpy as np
import pytest

from repro.core import EvolutionConfig, PayoffCache, Population, random_pure
from repro.errors import ConfigurationError
from repro.rng import make_rng
from repro.structure import (
    Complete,
    Grid2D,
    InteractionModel,
    RandomRegular,
    RingLattice,
    ScaleFree,
    SmallWorld,
    WellMixed,
    available_structures,
    build_structure,
    is_well_mixed_spec,
    parse_structure_spec,
    register_structure,
    structure_families,
)


class TestSpecParsing:
    def test_all_builtins_registered(self):
        assert set(available_structures()) >= {
            "well-mixed",
            "complete",
            "ring",
            "grid",
            "regular",
            "smallworld",
            "scalefree",
        }

    def test_bare_name(self):
        assert parse_structure_spec("well-mixed") == ("well-mixed", {})

    def test_params(self):
        assert parse_structure_spec("regular:d=4,seed=7") == (
            "regular",
            {"d": 4, "seed": 7},
        )

    def test_whitespace_tolerated(self):
        assert parse_structure_spec(" ring : k = 4 ") == ("ring", {"k": 4})

    @pytest.mark.parametrize(
        "spec",
        ["", "nope", "ring:k", "ring:k=two", "ring:=4", "well-mixed:k=1",
         "ring:k=2,k=8"],
    )
    def test_bad_specs(self, spec):
        with pytest.raises(ConfigurationError):
            build_structure(spec, 16)

    def test_is_well_mixed_spec(self):
        assert is_well_mixed_spec("well-mixed")
        assert not is_well_mixed_spec("ring:k=2")

    def test_spec_roundtrip(self):
        for spec, n in [
            ("well-mixed", 10),
            ("complete", 10),
            ("ring:k=4", 10),
            ("grid:rows=3,cols=4", 12),
            ("regular:d=3,seed=5", 10),
            ("smallworld:k=4,p=0.25,seed=5", 12),
            ("smallworld:k=2,p=0,seed=1", 10),
            ("scalefree:m=2,seed=5", 12),
        ]:
            model = build_structure(spec, n)
            rebuilt = build_structure(model.spec(), n)
            assert rebuilt.spec() == model.spec()
            if not model.is_well_mixed:
                for i in range(n):
                    assert np.array_equal(
                        rebuilt.neighbors(i), model.neighbors(i)
                    )

    def test_passthrough_instance(self):
        model = RingLattice(10, k=2)
        assert build_structure(model, 10) is model
        with pytest.raises(ConfigurationError):
            build_structure(model, 12)  # bound to the wrong size

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            register_structure("ring")(lambda params, n: None)


class TestWellMixed:
    def test_neighbors_is_everyone_else(self):
        model = WellMixed(5)
        assert model.neighbors(2).tolist() == [0, 1, 3, 4]

    def test_select_pair_matches_legacy_draws(self):
        """WellMixed.select_pair consumes the pc stream exactly as the
        historical inline code (teacher, then learner with rejection)."""
        model = WellMixed(8)
        rng_a, rng_b = make_rng(42), make_rng(42)
        for _ in range(200):
            teacher = int(rng_a.integers(8))
            learner = int(rng_a.integers(8))
            while learner == teacher:
                learner = int(rng_a.integers(8))
            assert model.select_pair(rng_b) == (teacher, learner)


class TestRing:
    def test_neighbors(self):
        model = RingLattice(8, k=4)
        assert model.neighbors(0).tolist() == [1, 2, 6, 7]
        assert model.degree(3) == 4
        assert model.n_edges == 8 * 4 // 2

    @pytest.mark.parametrize("k", [0, 1, 3, -2, 8, 9])
    def test_invalid_k(self, k):
        with pytest.raises(ConfigurationError):
            RingLattice(8, k=k)


class TestGrid:
    def test_explicit_dims(self):
        model = Grid2D(12, rows=3, cols=4)
        assert model.spec() == "grid:rows=3,cols=4"
        # Node 0 at (0,0) on a 3x4 torus: up (2,0)=8, down (1,0)=4,
        # left (0,3)=3, right (0,1)=1.
        assert model.neighbors(0).tolist() == [1, 3, 4, 8]

    def test_balanced_default(self):
        model = build_structure("grid", 36)
        assert model.rows * model.cols == 36
        assert {model.rows, model.cols} == {6}

    def test_degenerate_dim_two_dedupes(self):
        model = Grid2D(8, rows=2, cols=4)
        # Row wraparound +1/-1 coincide: degree 3, not 4.
        assert model.degree(0) == 3

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            Grid2D(12, rows=3, cols=5)
        with pytest.raises(ConfigurationError):
            Grid2D(13, rows=13, cols=1)

    def test_partial_params(self):
        with pytest.raises(ConfigurationError):
            build_structure("grid:rows=4", 16)


class TestRandomRegular:
    def test_regularity_and_determinism(self):
        a = RandomRegular(20, d=4, seed=3)
        b = build_structure("regular:d=4,seed=3", 20)
        for i in range(20):
            assert a.degree(i) == 4
            assert np.array_equal(a.neighbors(i), b.neighbors(i))
            assert i not in a.neighbors(i)

    def test_different_seeds_differ(self):
        a = RandomRegular(20, d=4, seed=1)
        b = RandomRegular(20, d=4, seed=2)
        assert any(
            not np.array_equal(a.neighbors(i), b.neighbors(i))
            for i in range(20)
        )

    def test_odd_product_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomRegular(9, d=3)

    def test_degree_too_large(self):
        with pytest.raises(ConfigurationError):
            RandomRegular(4, d=4)

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomRegular(8, d=4, seed=-1)


class TestGraphFitness:
    @pytest.fixture
    def population(self):
        config = EvolutionConfig(n_ssets=12, generations=0, seed=5)
        return Population.random(config, make_rng(5))

    def test_complete_matches_well_mixed(self, population):
        """The all-to-all graph reproduces the histogram fast-path values."""
        cache = PayoffCache(rounds=32)
        complete = Complete(12)
        mixed = WellMixed(12)
        for include_self in (False, True):
            for i in range(12):
                assert complete.fitness_of(
                    population, i, cache, include_self
                ) == pytest.approx(
                    mixed.fitness_of(population, i, cache, include_self)
                )

    def test_neighborhood_sum(self, population):
        """Graph fitness equals the naive per-neighbor payoff sum."""
        cache = PayoffCache(rounds=32)
        model = RingLattice(12, k=4)
        for i in range(12):
            expected = sum(
                cache.payoff_to(
                    population[i].strategy, population[int(j)].strategy
                )
                for j in model.neighbors(i)
            )
            assert model.fitness_of(population, i, cache) == pytest.approx(
                expected
            )

    def test_select_pair_teacher_is_neighbor(self):
        model = Grid2D(16, rows=4, cols=4)
        rng = make_rng(0)
        for _ in range(100):
            teacher, learner = model.select_pair(rng)
            assert teacher in model.neighbors(learner)

    def test_interaction_model_is_abstract(self):
        with pytest.raises(TypeError):
            InteractionModel(4)

    def test_asymmetric_adjacency_rejected(self):
        from repro.structure import GraphStructure

        class Lopsided(GraphStructure):
            name = "lopsided"

            def spec(self):
                return self.name

        with pytest.raises(ConfigurationError, match="not symmetric"):
            Lopsided(
                3,
                [np.array([1]), np.array([0, 2]), np.array([1, 0])],
            )
        with pytest.raises(ConfigurationError, match="more than once"):
            Lopsided(
                2,
                [np.array([1, 1]), np.array([0, 0])],
            )

    def test_string_specs_share_cached_instances(self):
        a = build_structure("regular:d=4,seed=9", 20)
        b = build_structure("regular:d=4,seed=9", 20)
        assert a is b
        assert build_structure("regular:d=4,seed=9", 22) is not a

    def test_neighbor_arrays_are_frozen(self):
        """Cached models hand out their adjacency arrays: they must be
        read-only so no caller can corrupt the shared graph in place."""
        model = build_structure("ring:k=2", 6)
        with pytest.raises(ValueError):
            model.neighbors(0)[0] = 3


ALL_GRAPH_SPECS = [
    ("complete", 12),
    ("ring:k=4", 12),
    ("grid:rows=3,cols=4", 12),
    ("regular:d=3,seed=5", 12),
    ("smallworld:k=4,p=0.3,seed=5", 12),
    ("scalefree:m=2,seed=5", 12),
]


class TestCSRCore:
    """The CSR arrays are the canonical adjacency; every derived view and
    batched gather must agree with them."""

    @pytest.mark.parametrize("spec,n", ALL_GRAPH_SPECS)
    def test_csr_consistent_with_neighbors(self, spec, n):
        model = build_structure(spec, n)
        assert model.indptr.dtype == np.int32
        assert model.indices.dtype == np.int32
        assert model.indptr.shape == (n + 1,)
        assert model.indptr[0] == 0
        assert model.indptr[-1] == model.indices.shape[0]
        assert np.array_equal(np.diff(model.indptr), model.degrees)
        adjacency = model.adjacency
        for i in range(n):
            row = model.indices[model.indptr[i] : model.indptr[i + 1]]
            assert np.array_equal(model.neighbors(i), row)
            assert np.array_equal(adjacency[i], row)
            assert np.array_equal(np.sort(row), row)  # rows sorted
            assert model.degree(i) == len(row)

    @pytest.mark.parametrize("spec,n", ALL_GRAPH_SPECS)
    def test_csr_arrays_frozen(self, spec, n):
        model = build_structure(spec, n)
        for arr in (model.indptr, model.indices, model.degrees):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_neighbor_segments(self):
        model = build_structure("scalefree:m=2,seed=5", 12)
        nodes = np.array([3, 0, 3, 11])
        flat, seg = model.neighbor_segments(nodes)
        assert seg[0] == 0
        for i, node in enumerate(nodes):
            assert np.array_equal(
                flat[seg[i] : seg[i + 1]], model.neighbors(int(node))
            )

    def test_edges_match_csr(self):
        model = build_structure("smallworld:k=4,p=0.5,seed=2", 14)
        edges = model.edges()
        assert len(edges) == model.n_edges
        assert len(set(edges)) == len(edges)
        rebuilt = {(min(a, b), max(a, b)) for a, b in edges}
        direct = {
            (min(i, int(j)), max(i, int(j)))
            for i in range(14)
            for j in model.neighbors(i)
        }
        assert rebuilt == direct


class TestGatherFitness:
    """gather_fitness == the legacy per-node fitness_of on every family."""

    @pytest.mark.parametrize("spec,n", ALL_GRAPH_SPECS)
    @pytest.mark.parametrize("include_self", [False, True])
    def test_matches_fitness_of(self, spec, n, include_self):
        from repro.core.engine import FitnessEngine

        config = EvolutionConfig(
            memory_steps=2, n_ssets=n, generations=1, rounds=20, seed=3,
            structure=spec,
        )
        population = Population.random(config, make_rng(7))
        model = build_structure(spec, n)
        engine = FitnessEngine.from_config(config)
        population.bind_engine(engine)
        batched = model.gather_fitness(
            population.sids, engine.paymat, include_self_play=include_self
        )
        for i in range(n):
            assert batched[i] == model.fitness_of(
                population, i, engine, include_self
            )

    def test_matches_legacy_cache_values(self):
        """Same values as the engine-off PayoffCache path (float-exact)."""
        spec, n = "smallworld:k=4,p=0.3,seed=5", 12
        config = EvolutionConfig(
            memory_steps=2, n_ssets=n, generations=1, rounds=20, seed=3,
            structure=spec,
        )
        population = Population.random(config, make_rng(7))
        model = build_structure(spec, n)
        from repro.core.engine import FitnessEngine

        engine = FitnessEngine.from_config(config)
        population.bind_engine(engine)
        batched = model.gather_fitness(population.sids, engine.paymat)
        legacy_pop = Population.random(config, make_rng(7))
        cache = PayoffCache(rounds=20)
        for i in range(n):
            assert batched[i] == model.fitness_of(legacy_pop, i, cache)

    def test_nodes_subset(self):
        spec, n = "scalefree:m=2,seed=5", 12
        config = EvolutionConfig(
            memory_steps=1, n_ssets=n, generations=1, rounds=16, seed=3,
            structure=spec,
        )
        from repro.core.engine import FitnessEngine

        population = Population.random(config, make_rng(1))
        model = build_structure(spec, n)
        engine = FitnessEngine.from_config(config)
        population.bind_engine(engine)
        full = model.gather_fitness(population.sids, engine.paymat)
        nodes = np.array([5, 5, 0, 11])
        sub = model.gather_fitness(population.sids, engine.paymat, nodes=nodes)
        assert np.array_equal(sub, full[nodes])

    @pytest.mark.parametrize("spec,n", ALL_GRAPH_SPECS)
    def test_engine_gather_fitness_wrapper(self, spec, n):
        """FitnessEngine.gather_fitness (the driver/analysis entry point)
        agrees with per-node fitness_neighbors in the eager regime."""
        from repro.core.engine import FitnessEngine

        config = EvolutionConfig(
            memory_steps=2, n_ssets=n, generations=1, rounds=20, seed=5,
            structure=spec,
        )
        population = Population.random(config, make_rng(11))
        model = build_structure(spec, n)
        engine = FitnessEngine.from_config(config)
        assert engine.is_eager
        population.bind_engine(engine)
        hits_before = engine.hits
        batched = engine.gather_fitness(model, population.sids)
        assert engine.hits == hits_before + n
        for i in range(n):
            assert batched[i] == engine.fitness_neighbors(
                population.sid_of(i), population.sids[model.neighbors(i)]
            )

    def test_pair_fitness_matches_fitness_of(self):
        from repro.core.engine import FitnessEngine

        spec, n = "smallworld:k=4,p=0.3,seed=5", 12
        config = EvolutionConfig(
            memory_steps=2, n_ssets=n, generations=1, rounds=20, seed=5,
            structure=spec,
        )
        population = Population.random(config, make_rng(11))
        model = build_structure(spec, n)
        engine = FitnessEngine.from_config(config)
        population.bind_engine(engine)
        for a, b in [(0, 1), (3, 8), (11, 0)]:
            ft, fl = model.pair_fitness(population, a, b, engine)
            assert ft == model.fitness_of(population, a, engine)
            assert fl == model.fitness_of(population, b, engine)


class TestSmallWorld:
    def test_p_zero_is_the_ring(self):
        sw = build_structure("smallworld:k=4,p=0,seed=9", 16)
        ring = build_structure("ring:k=4", 16)
        for i in range(16):
            assert np.array_equal(sw.neighbors(i), ring.neighbors(i))

    def test_edge_count_preserved(self):
        # Rewiring moves endpoints, never adds or removes edges.
        for p in (0.0, 0.3, 1.0):
            sw = build_structure(f"smallworld:k=4,p={p},seed=2", 20)
            assert sw.n_edges == 20 * 4 // 2

    def test_deterministic_per_seed(self):
        a = build_structure("smallworld:k=4,p=0.5,seed=3", 20)
        b = SmallWorld(20, k=4, p=0.5, seed=3)
        for i in range(20):
            assert np.array_equal(a.neighbors(i), b.neighbors(i))
        c = SmallWorld(20, k=4, p=0.5, seed=4)
        assert any(
            not np.array_equal(b.neighbors(i), c.neighbors(i))
            for i in range(20)
        )

    def test_every_node_keeps_a_neighbor(self):
        # Each node owns k/2 lattice edges that never detach from it.
        sw = build_structure("smallworld:k=2,p=1,seed=0", 30)
        assert int(sw.degrees.min()) >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 3},  # odd
            {"k": 0},
            {"k": 20},  # k >= n
            {"p": -0.1},
            {"p": 1.5},
            {"seed": -1},
        ],
    )
    def test_bad_params(self, kwargs):
        params = {"k": 4, "p": 0.1, "seed": 0}
        params.update(kwargs)
        with pytest.raises(ConfigurationError):
            SmallWorld(16, **params)

    def test_float_p_spec_roundtrip(self):
        model = build_structure("smallworld:k=4,p=0.05,seed=2", 12)
        assert model.spec() == "smallworld:k=4,p=0.05,seed=2"
        assert build_structure(model.spec(), 12).p == 0.05


class TestScaleFree:
    def test_edge_count(self):
        # (m+1)-clique seed + m edges per later arrival.
        n, m = 30, 2
        model = build_structure(f"scalefree:m={m},seed=7", n)
        assert model.n_edges == (m + 1) * m // 2 + (n - m - 1) * m

    def test_min_degree_at_least_m(self):
        model = build_structure("scalefree:m=2,seed=7", 40)
        assert int(model.degrees.min()) >= 2

    def test_hubs_emerge(self):
        model = build_structure("scalefree:m=2,seed=7", 60)
        assert int(model.degrees.max()) >= 8  # heavy tail

    def test_deterministic_per_seed(self):
        a = build_structure("scalefree:m=2,seed=3", 25)
        b = ScaleFree(25, m=2, seed=3)
        for i in range(25):
            assert np.array_equal(a.neighbors(i), b.neighbors(i))

    @pytest.mark.parametrize("kwargs", [{"m": 0}, {"m": 15}, {"seed": -2}])
    def test_bad_params(self, kwargs):
        params = {"m": 2, "seed": 0}
        params.update(kwargs)
        with pytest.raises(ConfigurationError):
            ScaleFree(16, **params)


class TestSpecValidation:
    def test_unknown_key_suggests_closest(self):
        with pytest.raises(ConfigurationError, match="did you mean 'k'"):
            build_structure("ring:K=4", 12)
        with pytest.raises(ConfigurationError, match="did you mean 'p'"):
            build_structure("smallworld:k=4,P=0.1", 12)

    def test_unknown_name_suggests_closest(self):
        with pytest.raises(ConfigurationError, match="did you mean 'smallworld'"):
            build_structure("smallwrld:k=4", 12)

    def test_unknown_key_no_params_family(self):
        with pytest.raises(ConfigurationError, match="no parameters"):
            build_structure("complete:k=4", 12)

    def test_float_rejected_for_integer_params(self):
        with pytest.raises(ConfigurationError, match="integer"):
            build_structure("ring:k=2.5", 12)
        with pytest.raises(ConfigurationError, match="integer"):
            build_structure("scalefree:m=1.5,seed=0", 12)

    def test_integral_float_accepted(self):
        model = build_structure("ring:k=4.0", 12)
        assert model.spec() == "ring:k=4"

    def test_structure_families_listing(self):
        families = dict(structure_families())
        assert "smallworld" in families
        assert "p=" in families["smallworld"]
        assert "scalefree" in families
        assert set(families) == set(available_structures())
