"""End-to-end structured evolution + the pinned well-mixed golden trajectory.

The golden hashes were captured from the pre-InteractionModel drivers
(before the structure refactor), so these tests prove the well-mixed path
is *bit-identical* across the refactor, not merely self-consistent.
"""

import hashlib

import pytest

from repro.api import Simulation
from repro.core import (
    EvolutionConfig,
    run_baseline,
    run_event_driven,
    run_serial,
)
from repro.errors import CheckpointError, ConfigurationError


def population_hash(result) -> str:
    return hashlib.sha256(
        result.population.strategy_matrix().tobytes()
    ).hexdigest()[:16]


def event_hash(result) -> str:
    return hashlib.sha256(
        repr(
            [
                (
                    e.generation,
                    e.kind,
                    e.source,
                    e.target,
                    e.applied,
                    round(e.teacher_fitness, 9),
                    round(e.learner_fitness, 9),
                )
                for e in result.events
            ]
        ).encode()
    ).hexdigest()[:16]


#: (seed, config overrides) -> (pc, adoptions, mutations, pop_hash, ev_hash),
#: captured from the pre-refactor run_serial at n_ssets=48 (or as overridden),
#: generations=4000.
GOLDEN = {
    (2013, ()): (422, 145, 203, "4c787012d189c522", "d7f6da0c29d7a405"),
    (7, ()): (398, 170, 196, "f3e3d14b5aff138d", "bbcae972e30599ac"),
    (99, ()): (400, 149, 206, "9398268163c2161c", "896bb9ba178116b6"),
    (2013, (("noise", 0.02), ("expected_fitness", True), ("memory_steps", 2), ("n_ssets", 32))): (
        422, 179, 203, "cd990167f0f52796", "9c45b6c13a06d49d"
    ),
    (7, (("noise", 0.02), ("expected_fitness", True), ("memory_steps", 2), ("n_ssets", 32))): (
        398, 158, 196, "5afd9385f38bc3c0", "ecf6cb8a7eca7a10"
    ),
}


class TestWellMixedGolden:
    @pytest.mark.parametrize("key", sorted(GOLDEN, key=repr))
    def test_bit_identical_to_pre_refactor(self, key):
        seed, overrides = key
        kwargs = {"n_ssets": 48, "generations": 4000, "seed": seed}
        kwargs.update(dict(overrides))
        config = EvolutionConfig(**kwargs)
        expected = GOLDEN[key]
        for driver in (run_serial, run_event_driven):
            result = driver(config)
            actual = (
                result.n_pc_events,
                result.n_adoptions,
                result.n_mutations,
                population_hash(result),
                event_hash(result),
            )
            assert actual == expected, driver.__name__

    @pytest.mark.parametrize("engine", [True, False])
    def test_engine_and_legacy_paths_both_golden(self, engine):
        """The FitnessEngine (default) and the legacy PayoffCache path
        (engine=False) must both replay the pre-refactor trajectory."""
        config = EvolutionConfig(
            n_ssets=48, generations=4000, seed=2013, engine=engine
        )
        result = run_event_driven(config)
        expected = GOLDEN[(2013, ())]
        actual = (
            result.n_pc_events,
            result.n_adoptions,
            result.n_mutations,
            population_hash(result),
            event_hash(result),
        )
        assert actual == expected

    def test_explicit_well_mixed_spec_identical(self):
        """structure="well-mixed" goes through InteractionModel.select_pair
        yet must replay the exact same trajectory as the default."""
        config = EvolutionConfig(n_ssets=24, generations=3000, seed=31)
        explicit = config.with_updates(structure="well-mixed")
        a, b = run_serial(config), run_serial(explicit)
        assert event_hash(a) == event_hash(b)
        assert population_hash(a) == population_hash(b)


STRUCTURES = [
    "ring:k=4",
    "grid:rows=6,cols=6",
    "regular:d=4,seed=1",
    "complete",
    "smallworld:k=4,p=0.1,seed=1",
    "scalefree:m=2,seed=1",
]


class TestStructuredRuns:
    @pytest.mark.parametrize("spec", STRUCTURES)
    def test_serial_event_identical(self, spec):
        config = EvolutionConfig(
            n_ssets=36, generations=2500, seed=17, structure=spec
        )
        serial = run_serial(config)
        event = run_event_driven(config)
        assert event_hash(serial) == event_hash(event)
        assert population_hash(serial) == population_hash(event)
        serial.population.check_invariants()

    @pytest.mark.parametrize("spec", STRUCTURES)
    def test_simulation_front_end(self, spec):
        config = EvolutionConfig(
            n_ssets=36, generations=1500, seed=3, structure=spec
        )
        result = Simulation(config).run()
        assert result.generations_run == 1500
        report = result.backend_report
        assert report is not None
        assert report.structure == config.canonical_structure()

    def test_multiprocess_matches_event(self):
        config = EvolutionConfig(
            n_ssets=16, generations=1200, seed=5, structure="ring:k=2"
        )
        event = Simulation(config, backend="event").run()
        pooled = Simulation(config, backend="multiprocess", workers=2).run()
        assert event_hash(event) == event_hash(pooled)
        assert population_hash(event) == population_hash(pooled)

    def test_structured_differs_from_well_mixed(self):
        base = EvolutionConfig(n_ssets=36, generations=2500, seed=17)
        ring = base.with_updates(structure="ring:k=4")
        assert event_hash(run_serial(base)) != event_hash(run_serial(ring))

    def test_noisy_expected_fitness_structured(self):
        config = EvolutionConfig(
            n_ssets=16,
            generations=1500,
            seed=9,
            structure="grid:rows=4,cols=4",
            noise=0.02,
            expected_fitness=True,
        )
        a, b = run_serial(config), run_event_driven(config)
        assert event_hash(a) == event_hash(b)


class TestConfigStructure:
    def test_default_is_well_mixed(self):
        config = EvolutionConfig()
        assert config.is_well_mixed
        assert config.canonical_structure() == "well-mixed"

    def test_bad_spec_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            EvolutionConfig(structure="hexagon")
        with pytest.raises(ConfigurationError):
            EvolutionConfig(n_ssets=8, structure="ring:k=8")  # k >= n

    def test_canonical_fills_defaults(self):
        config = EvolutionConfig(n_ssets=36, structure="grid")
        assert config.canonical_structure() == "grid:rows=6,cols=6"
        config = EvolutionConfig(structure="regular")
        assert config.canonical_structure() == "regular:d=4,seed=0"

    def test_hand_constructed_model_accepted(self):
        """A bound InteractionModel instance works wherever a spec does."""
        from repro.structure import RingLattice

        model = RingLattice(12, k=4)
        config = EvolutionConfig(n_ssets=12, generations=500, structure=model)
        assert not config.is_well_mixed
        assert config.canonical_structure() == "ring:k=4"
        result = run_serial(config)
        assert result.generations_run == 500
        # Backends that hard-code well-mixed give the intended message,
        # not a spec-parsing crash.
        with pytest.raises(ConfigurationError, match="well-mixed"):
            run_baseline(config)
        with pytest.raises(ConfigurationError, match="well-mixed"):
            Simulation(config, backend="des").run()

    def test_summary_includes_structure(self):
        config = EvolutionConfig(n_ssets=36, structure="ring:k=4")
        assert "structure=ring:k=4" in config.summary()
        assert "structure=well-mixed" in EvolutionConfig().summary()


class TestNatureStructureGuard:
    def test_size_mismatch_rejected(self):
        from repro.core import NatureAgent
        from repro.rng import SeedSequenceTree
        from repro.structure import RingLattice

        config = EvolutionConfig(n_ssets=12)
        nature = NatureAgent(config, SeedSequenceTree(0))
        with pytest.raises(ConfigurationError):
            nature.pc_selection(12, RingLattice(10, k=2))


class TestBackendStructureGuards:
    def test_baseline_rejects_structured(self):
        config = EvolutionConfig(
            n_ssets=8, generations=10, structure="ring:k=2"
        )
        with pytest.raises(ConfigurationError):
            Simulation(config, backend="baseline").run()
        with pytest.raises(ConfigurationError):
            run_baseline(config)

    def test_des_rejects_structured(self):
        config = EvolutionConfig(
            n_ssets=8, generations=10, structure="ring:k=2"
        )
        with pytest.raises(ConfigurationError):
            Simulation(config, backend="des").run()
        # The direct framework entry point is guarded too, not just the
        # backend wrapper.
        from repro.framework import ParallelConfig, run_parallel_simulation

        with pytest.raises(ConfigurationError, match="well-mixed"):
            run_parallel_simulation(config, ParallelConfig(n_ranks=4))

    def test_supports_structures_flags(self):
        from repro.api import get_backend

        assert get_backend("event").supports_structures
        assert get_backend("serial").supports_structures
        assert get_backend("multiprocess").supports_structures
        assert not get_backend("baseline").supports_structures
        assert not get_backend("des").supports_structures

    def test_base_validate_enforces_flag(self):
        """supports_structures=False is authoritative: the base validate
        rejects structured configs even if a backend adds no guard."""
        from dataclasses import dataclass

        from repro.api import Backend

        @dataclass
        class NoStruct(Backend):
            name = "no-struct-test"
            summary = "test backend without structure support"
            supports_structures = False

            def run(self, config, population=None):  # pragma: no cover
                raise NotImplementedError

        backend = NoStruct()
        with pytest.raises(ConfigurationError, match="well-mixed"):
            backend.validate(
                EvolutionConfig(n_ssets=8, structure="ring:k=2")
            )
        backend.validate(EvolutionConfig(n_ssets=8))  # well-mixed passes


class TestStructuredCheckpoint:
    def test_roundtrip_resume(self, tmp_path):
        path = tmp_path / "ring.npz"
        config = EvolutionConfig(
            n_ssets=12, generations=1000, seed=21, structure="ring:k=4"
        )
        first = Simulation(config, checkpoint_path=path).run()
        resumed = Simulation(
            config.with_updates(seed=22), checkpoint_path=path, resume=True
        ).run()
        assert resumed.generations_run == 1000
        resumed.population.check_invariants()
        # The resumed run really started from the saved population: its
        # initial snapshot is the first leg's final state.
        import numpy as np

        assert np.array_equal(
            resumed.snapshots[0].strategy_matrix,
            first.population.strategy_matrix(),
        )

    @pytest.mark.parametrize(
        "spec",
        ["smallworld:k=4,p=0.25,seed=3", "scalefree:m=2,seed=3"],
    )
    def test_new_family_roundtrip_resume(self, spec, tmp_path):
        """parse -> spec() -> checkpoint -> resume survives for the new
        graph families (the float rewiring probability included)."""
        path = tmp_path / "graph.npz"
        config = EvolutionConfig(
            n_ssets=12, generations=600, seed=21, structure=spec
        )
        first = Simulation(config, checkpoint_path=path).run()
        assert first.backend_report.structure == config.canonical_structure()
        from repro.io.checkpoint import load_checkpoint

        _, saved = load_checkpoint(path)
        assert saved == config.canonical_structure()
        resumed = Simulation(
            config.with_updates(seed=22), checkpoint_path=path, resume=True
        ).run()
        assert resumed.generations_run == 600
        resumed.population.check_invariants()
        import numpy as np

        assert np.array_equal(
            resumed.snapshots[0].strategy_matrix,
            first.population.strategy_matrix(),
        )

    def test_structure_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ring.npz"
        config = EvolutionConfig(
            n_ssets=12, generations=200, seed=21, structure="ring:k=4"
        )
        Simulation(config, checkpoint_path=path).run()
        other = config.with_updates(structure="ring:k=2")
        with pytest.raises(CheckpointError):
            Simulation(other, checkpoint_path=path, resume=True).run()
        mixed = config.with_updates(structure="well-mixed")
        with pytest.raises(CheckpointError):
            Simulation(mixed, checkpoint_path=path, resume=True).run()
