"""Tests for the structured analysis metrics."""

import pytest

from repro.analysis import (
    dominant_strategy_clusters,
    largest_cluster_fraction,
    neighborhood_cooperation,
)
from repro.core import Population, all_c, all_d
from repro.structure import RingLattice


def ring_population(pattern):
    """Population of AllC ('c') / AllD ('d') SSets laid out on a ring."""
    return Population.from_strategies(
        [all_c(1) if ch == "c" else all_d(1) for ch in pattern]
    )


class TestNeighborhoodCooperation:
    def test_all_cooperators(self):
        pop = ring_population("cccccc")
        coop = neighborhood_cooperation(pop, "ring:k=2", rounds=16)
        assert coop.tolist() == [1.0] * 6

    def test_all_defectors(self):
        pop = ring_population("dddddd")
        coop = neighborhood_cooperation(pop, "ring:k=2", rounds=16)
        assert coop.tolist() == [0.0] * 6

    def test_boundary_sees_less_cooperation(self):
        # Cooperator block next to a defector block: interior cooperators
        # see full cooperation, boundary ones see half.
        pop = ring_population("ccccdddd")
        coop = neighborhood_cooperation(pop, "ring:k=2", rounds=16)
        # SSet 1..2 are interior cooperators (both neighbors cooperate).
        assert coop[1] == pytest.approx(1.0)
        assert coop[2] == pytest.approx(1.0)
        # SSet 3 borders the defector block: AllC vs AllD games — AllC
        # cooperates, AllD defects -> 1/2 cooperation in that game.
        assert coop[3] == pytest.approx((1.0 + 0.5) / 2)
        # Interior defectors see zero cooperation.
        assert coop[5] == pytest.approx(0.0)

    def test_accepts_bound_model(self):
        pop = ring_population("cccc")
        model = RingLattice(4, k=2)
        coop = neighborhood_cooperation(pop, model, rounds=16)
        assert coop.shape == (4,)

    def test_noise_changes_the_metric(self):
        """Noisy runs report the cooperation of the *noisy* game (Markov
        expectation), not the noiseless cycle value."""
        pop = ring_population("cccccc")
        clean = neighborhood_cooperation(pop, "ring:k=2", rounds=16)
        noisy = neighborhood_cooperation(pop, "ring:k=2", rounds=16, noise=0.1)
        assert clean.tolist() == [1.0] * 6
        assert all(noisy < 1.0)

    def test_mixed_strategies_use_markov_expectation(self):
        from repro.core import gtft

        pop = Population.from_strategies([gtft(), all_c(1), all_c(1)])
        coop = neighborhood_cooperation(pop, "ring:k=2", rounds=16)
        assert coop.shape == (3,)
        assert all(0.0 <= c <= 1.0 for c in coop)


class TestDominantClusters:
    def test_two_separated_clusters(self):
        # Dominant strategy is AllC (5 of 8); it sits in blocks of 3 and 2
        # separated by defectors on a k=2 ring.
        pop = ring_population("cccdccdd")
        sizes = dominant_strategy_clusters(pop, "ring:k=2")
        assert sizes == [3, 2]
        assert largest_cluster_fraction(pop, "ring:k=2") == pytest.approx(3 / 8)

    def test_wider_ring_merges_clusters(self):
        # k=4 jumps over the single defector gap: one cluster of 5.
        pop = ring_population("cccdccdd")
        assert dominant_strategy_clusters(pop, "ring:k=4") == [5]

    def test_well_mixed_single_cluster(self):
        pop = ring_population("ccccdd")
        assert dominant_strategy_clusters(pop, "well-mixed") == [4]
        assert largest_cluster_fraction(pop, "well-mixed") == pytest.approx(
            4 / 6
        )
