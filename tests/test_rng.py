"""Tests for deterministic stream management."""

import numpy as np
import pytest

from repro.rng import SeedSequenceTree, make_rng, spawn_rngs


class TestMakeRng:
    def test_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_streams_independent(self):
        a, b = spawn_rngs(123, 2)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        a1, _ = spawn_rngs(9, 2)
        a2, _ = spawn_rngs(9, 2)
        assert a1.random() == a2.random()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSeedSequenceTree:
    def test_same_name_same_stream(self):
        tree = SeedSequenceTree(7)
        assert tree.generator("nature").random() == tree.generator("nature").random()

    def test_different_names_different_streams(self):
        tree = SeedSequenceTree(7)
        assert tree.generator("a").random() != tree.generator("b").random()

    def test_numeric_path_components(self):
        tree = SeedSequenceTree(7)
        r3 = tree.generator("rank", 3).random()
        r4 = tree.generator("rank", 4).random()
        assert r3 != r4
        assert r3 == SeedSequenceTree(7).generator("rank", 3).random()

    def test_string_hash_stable_across_instances(self):
        # FNV-1a hashing (not salted hash()) keeps names stable across runs.
        a = SeedSequenceTree(1).seed_sequence("events").entropy
        b = SeedSequenceTree(1).seed_sequence("events").entropy
        assert a == b

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            SeedSequenceTree("seed")

    def test_scalar_and_batch_draws_match(self):
        # The event-driven driver relies on Generator.random(n) consuming
        # the stream exactly like n scalar draws.
        tree = SeedSequenceTree(5)
        scalars = [tree.generator("s").random() for _ in range(1)]
        g1 = tree.generator("x")
        batch = g1.random(8)
        g2 = tree.generator("x")
        singles = np.array([g2.random() for _ in range(8)])
        np.testing.assert_array_equal(batch, singles)
        assert scalars  # silence unused warning
