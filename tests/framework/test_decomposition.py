"""Tests for the SSet-to-rank decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecompositionError
from repro.framework import Decomposition


class TestWholeMode:
    def test_even_blocks(self):
        d = Decomposition(n_ssets=8, n_workers=4)
        blocks = [d.block_for_worker(w).sset_ids for w in range(4)]
        assert blocks == [(0, 1), (2, 3), (4, 5), (6, 7)]

    def test_uneven_blocks_balanced(self):
        d = Decomposition(n_ssets=10, n_workers=4)
        sizes = [len(d.block_for_worker(w).sset_ids) for w in range(4)]
        assert sorted(sizes) == [2, 2, 3, 3]
        assert max(sizes) == d.max_ssets_per_worker()

    def test_fewer_ssets_than_workers_idles_ranks(self):
        d = Decomposition(n_ssets=2, n_workers=4)
        sizes = [len(d.block_for_worker(w).sset_ids) for w in range(4)]
        assert sizes == [1, 1, 0, 0]
        assert not d.split_active

    def test_owner_matches_blocks(self):
        d = Decomposition(n_ssets=10, n_workers=4)
        for w in range(4):
            for s in d.block_for_worker(w).sset_ids:
                assert d.owner_of(s) == w

    def test_ratio(self):
        assert Decomposition(n_ssets=8, n_workers=4).ratio == 2.0
        assert Decomposition(n_ssets=2, n_workers=4).ratio == 0.5

    def test_validate_cover(self):
        Decomposition(n_ssets=13, n_workers=5).validate_cover()

    @given(s=st.integers(1, 200), w=st.integers(1, 64))
    @settings(max_examples=60)
    def test_cover_property(self, s, w):
        d = Decomposition(n_ssets=s, n_workers=w)
        d.validate_cover()
        for sset in range(s):
            owner = d.owner_of(sset)
            assert sset in d.block_for_worker(owner).sset_ids

    def test_invalid_args(self):
        with pytest.raises(DecompositionError):
            Decomposition(n_ssets=0, n_workers=4)
        with pytest.raises(DecompositionError):
            Decomposition(n_ssets=4, n_workers=0)
        with pytest.raises(DecompositionError):
            Decomposition(n_ssets=4, n_workers=2).block_for_worker(2)
        with pytest.raises(DecompositionError):
            Decomposition(n_ssets=4, n_workers=2).owner_of(4)


class TestSplitMode:
    def test_split_engages_only_below_one(self):
        d = Decomposition(n_ssets=8, n_workers=4, split_ssets=True)
        assert not d.split_active  # R = 2, splitting unnecessary
        d2 = Decomposition(n_ssets=2, n_workers=4, split_ssets=True)
        assert d2.split_active
        assert d2.group_size == 2

    def test_group_members(self):
        d = Decomposition(n_ssets=2, n_workers=4, split_ssets=True)
        assert d.group_members(0) == (0, 1)
        assert d.group_members(1) == (2, 3)
        assert d.owner_of(1) == 2  # group leader

    def test_split_blocks(self):
        d = Decomposition(n_ssets=2, n_workers=4, split_ssets=True)
        b = d.block_for_worker(1)
        assert b.sset_ids == (0,)
        assert b.split_index == 1
        assert b.split_group_size == 2
        assert b.is_split

    def test_remainder_workers_idle(self):
        d = Decomposition(n_ssets=3, n_workers=7, split_ssets=True)
        assert d.group_size == 2
        idle = [w for w in range(7) if not d.block_for_worker(w).sset_ids]
        assert idle == [6]

    def test_opponents_share_sums_to_total(self):
        d = Decomposition(n_ssets=2, n_workers=8, split_ssets=True)
        total = 37
        shares = [d.opponents_share(total, i) for i in range(d.group_size)]
        assert sum(shares) == total
        assert max(shares) - min(shares) <= 1

    @given(s=st.integers(1, 16), w=st.integers(1, 64))
    @settings(max_examples=40)
    def test_group_partition_property(self, s, w):
        d = Decomposition(n_ssets=s, n_workers=w, split_ssets=True)
        seen = set()
        for sset in range(s):
            members = d.group_members(sset)
            assert len(members) == d.group_size
            if d.split_active:
                # Split groups partition the workers.
                assert not (set(members) & seen)
            seen.update(members)
