"""Integration tests: the DES parallel run against the serial reference."""

import numpy as np
import pytest

from repro.core import EvolutionConfig, run_serial
from repro.errors import ConfigurationError
from repro.framework import (
    CostModel,
    OptimizationLevel,
    ParallelConfig,
    run_parallel_simulation,
)
from repro.machine import BLUEGENE_P, BLUEGENE_Q


@pytest.fixture
def evo() -> EvolutionConfig:
    return EvolutionConfig(n_ssets=12, generations=400, rounds=32, seed=31)


class TestTrajectoryEquality:
    """The flagship property: parallel science == serial science."""

    @pytest.mark.parametrize("n_ranks", [2, 3, 5, 13])
    def test_matches_serial_across_rank_counts(self, evo, n_ranks):
        serial = run_serial(evo)
        par = run_parallel_simulation(
            evo, ParallelConfig(n_ranks=n_ranks, machine=BLUEGENE_Q)
        )
        assert serial.events == par.events
        assert np.array_equal(
            serial.population.strategy_matrix(),
            np.stack([s.table for s in par.final_strategies]),
        )

    def test_split_mode_matches_serial(self, evo):
        # More workers than SSets with splitting enabled.
        par = run_parallel_simulation(
            evo,
            ParallelConfig(n_ranks=25, machine=BLUEGENE_Q, split_ssets=True),
        )
        serial = run_serial(evo)
        assert serial.events == par.events

    def test_worker_views_all_converge(self, evo):
        par = run_parallel_simulation(
            evo, ParallelConfig(n_ranks=5, machine=BLUEGENE_Q)
        )
        reference = [s.key() for s in par.final_strategies]
        for view in par.worker_views.values():
            assert [s.key() for s in view] == reference

    def test_optimization_level_does_not_change_science(self, evo):
        runs = [
            run_parallel_simulation(
                evo,
                ParallelConfig(
                    n_ranks=4, machine=BLUEGENE_Q, optimization=level
                ),
            )
            for level in OptimizationLevel
        ]
        for run in runs[1:]:
            assert run.events == runs[0].events

    def test_machine_does_not_change_science(self, evo):
        a = run_parallel_simulation(evo, ParallelConfig(n_ranks=4, machine=BLUEGENE_P))
        b = run_parallel_simulation(evo, ParallelConfig(n_ranks=4, machine=BLUEGENE_Q))
        assert a.events == b.events
        assert a.makespan != b.makespan  # but the clocks differ


class TestTiming:
    def test_optimizations_speed_up_runtime(self, evo):
        times = {}
        for level in OptimizationLevel:
            result = run_parallel_simulation(
                evo,
                ParallelConfig(n_ranks=4, machine=BLUEGENE_Q, optimization=level),
            )
            times[level] = result.makespan
        assert times[OptimizationLevel.ORIGINAL] > times[OptimizationLevel.COMPILER]
        assert times[OptimizationLevel.COMPILER] > times[OptimizationLevel.INTRINSICS]
        # The comm-only step is a small improvement (paper Fig. 3).
        assert times[OptimizationLevel.NONBLOCKING] <= times[OptimizationLevel.ORIGINAL]

    def test_more_ranks_faster_when_saturated(self, evo):
        # 12 SSets: 3 workers (R=4) vs 6 workers (R=2) — both overlap-capable.
        slow = run_parallel_simulation(
            evo, ParallelConfig(n_ranks=4, machine=BLUEGENE_Q)
        )
        fast = run_parallel_simulation(
            evo, ParallelConfig(n_ranks=7, machine=BLUEGENE_Q)
        )
        assert fast.makespan < slow.makespan

    def test_memory_steps_increase_runtime(self):
        base = EvolutionConfig(n_ssets=8, generations=50, rounds=32, seed=1)
        times = []
        for n in (1, 3, 6):
            evo = base.with_updates(memory_steps=n)
            result = run_parallel_simulation(
                evo,
                ParallelConfig(n_ranks=3, machine=BLUEGENE_P, executable=False),
            )
            times.append(result.makespan)
        assert times[0] < times[1] < times[2]

    def test_compute_comm_split_reported(self, evo):
        result = run_parallel_simulation(
            evo, ParallelConfig(n_ranks=4, machine=BLUEGENE_Q)
        )
        assert result.compute_seconds > 0
        assert result.comm_seconds > 0


class TestCostOnlyMode:
    def test_cost_only_has_no_science(self, evo):
        result = run_parallel_simulation(
            evo, ParallelConfig(n_ranks=4, machine=BLUEGENE_Q, executable=False)
        )
        assert result.final_strategies == []
        with pytest.raises(ConfigurationError):
            result.final_population()

    def test_cost_only_makespan_close_to_executable(self, evo):
        exe = run_parallel_simulation(
            evo, ParallelConfig(n_ranks=4, machine=BLUEGENE_Q)
        )
        cost = run_parallel_simulation(
            evo, ParallelConfig(n_ranks=4, machine=BLUEGENE_Q, executable=False)
        )
        # Cost-only runs never broadcast adopted strategies (fitness is 0),
        # but the virtual-time difference must stay small: the schedule is
        # dominated by game compute.
        assert cost.makespan == pytest.approx(exe.makespan, rel=0.05)


class TestGuards:
    def test_rank_limit(self, evo):
        with pytest.raises(ConfigurationError):
            run_parallel_simulation(evo, ParallelConfig(n_ranks=100_000))

    def test_stochastic_executable_rejected(self):
        evo = EvolutionConfig(n_ssets=4, generations=10, noise=0.1)
        with pytest.raises(ConfigurationError):
            run_parallel_simulation(evo, ParallelConfig(n_ranks=3))

    def test_min_ranks(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(n_ranks=1)


class TestCostModel:
    def test_thread_speedup_paper_claim(self):
        # BG/Q, 32 ranks/node, 2 threads/rank: threads share cores via SMT,
        # the paper saw ~2% ("The impact of the threads was minimal").
        evo = EvolutionConfig(n_ssets=8, generations=10)
        par = ParallelConfig(
            n_ranks=4, machine=BLUEGENE_Q, threads_per_rank=2, ranks_per_node=32
        )
        costs = CostModel(spec=BLUEGENE_Q, evolution=evo, parallel=par)
        assert costs.thread_speedup == pytest.approx(1.02)

    def test_dedicated_cores_scale_linearly(self):
        evo = EvolutionConfig(n_ssets=8, generations=10)
        par = ParallelConfig(
            n_ranks=4, machine=BLUEGENE_Q, threads_per_rank=4, ranks_per_node=4
        )
        costs = CostModel(spec=BLUEGENE_Q, evolution=evo, parallel=par)
        assert costs.thread_speedup == pytest.approx(4.0)

    def test_exposed_sync_knee(self):
        evo = EvolutionConfig(n_ssets=8, generations=10)
        par = ParallelConfig(n_ranks=4, machine=BLUEGENE_P)
        costs = CostModel(spec=BLUEGENE_P, evolution=evo, parallel=par)
        base = costs.sync_exposure_base()
        # At memory-one the exposure is ~80% of one SSet's game time.
        assert base == pytest.approx(0.8 * costs.sset_game_time(), rel=0.01)
        assert costs.exposed_sync(1) == pytest.approx(base)
        assert costs.exposed_sync(2) == 0.0
        assert 0 < costs.exposed_sync(1.5) < costs.exposed_sync(1)

    def test_exposure_independent_of_memory_steps(self):
        # Fig. 5: communication stays flat while compute grows ~n^2.
        par = ParallelConfig(n_ranks=4, machine=BLUEGENE_P)
        bases = []
        for n in (1, 6):
            evo = EvolutionConfig(n_ssets=8, generations=10, memory_steps=n)
            costs = CostModel(spec=BLUEGENE_P, evolution=evo, parallel=par)
            bases.append(costs.sync_exposure_base())
        assert bases[0] == pytest.approx(bases[1])

    def test_blocking_never_overlaps(self):
        evo = EvolutionConfig(n_ssets=8, generations=10)
        par = ParallelConfig(
            n_ranks=4,
            machine=BLUEGENE_P,
            optimization=OptimizationLevel.ORIGINAL,
        )
        costs = CostModel(spec=BLUEGENE_P, evolution=evo, parallel=par)
        assert costs.exposed_sync(8) > 0.0

    def test_strategy_bytes(self):
        evo = EvolutionConfig(n_ssets=8, generations=1, memory_steps=6)
        par = ParallelConfig(n_ranks=4)
        costs = CostModel(spec=BLUEGENE_Q, evolution=evo, parallel=par)
        assert costs.strategy_bytes() == 4096
