"""Tests for torus topology and machine specs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, MemoryCapacityError
from repro.machine import (
    BLUEGENE_P,
    BLUEGENE_Q,
    GENERIC_CLUSTER,
    TorusTopology,
    balanced_dims,
    estimate_footprint,
    max_memory_steps,
    network_for,
)


class TestBalancedDims:
    def test_power_of_two_3d(self):
        assert balanced_dims(512, 3) == (8, 8, 8)

    def test_power_of_two_5d(self):
        dims = balanced_dims(1024, 5)
        assert len(dims) == 5
        import math

        assert math.prod(dims) == 1024

    def test_single_node(self):
        assert balanced_dims(1, 3) == (1, 1, 1)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            balanced_dims(0, 3)

    @given(n=st.integers(1, 4096), d=st.integers(1, 5))
    @settings(max_examples=60)
    def test_product_preserved(self, n, d):
        import math

        assert math.prod(balanced_dims(n, d)) == n


class TestTorus:
    def test_coordinates_roundtrip(self):
        t = TorusTopology((4, 4, 4))
        seen = {t.coordinates(i) for i in range(64)}
        assert len(seen) == 64

    def test_hop_distance_wraps(self):
        t = TorusTopology((8,))
        assert t.hop_distance(0, 1) == 1
        assert t.hop_distance(0, 7) == 1  # wrap-around link
        assert t.hop_distance(0, 4) == 4  # antipode

    def test_diameter(self):
        t = TorusTopology((8, 8, 8))
        assert t.max_hops == 12

    def test_average_hops_positive(self):
        t = TorusTopology((8, 8))
        assert 0 < t.average_hops <= t.max_hops

    def test_symmetry(self):
        t = TorusTopology((4, 6))
        for a in range(0, 24, 5):
            for b in range(0, 24, 7):
                assert t.hop_distance(a, b) == t.hop_distance(b, a)

    def test_triangle_inequality(self):
        t = TorusTopology((4, 4))
        for a in range(16):
            for b in range(16):
                for c in range(0, 16, 3):
                    assert t.hop_distance(a, c) <= t.hop_distance(
                        a, b
                    ) + t.hop_distance(b, c)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            TorusTopology((4,)).coordinates(4)


class TestMachineSpecs:
    def test_bgp_shape(self):
        assert BLUEGENE_P.cores_per_node == 4
        assert BLUEGENE_P.torus_dims == 3
        # Virtual-node mode: 512 MB per rank.
        assert BLUEGENE_P.memory_per_rank_bytes() == 512 * 1024**2

    def test_bgq_shape(self):
        assert BLUEGENE_Q.cores_per_node == 16
        assert BLUEGENE_Q.torus_dims == 5
        assert BLUEGENE_Q.default_ranks_per_node == 32

    def test_t_round_grows_with_memory(self):
        costs = [BLUEGENE_P.t_round(n) for n in range(1, 7)]
        assert all(b > a for a, b in zip(costs, costs[1:]))
        # Calibration targets (see bluegene.py docstring): us scale.
        assert costs[0] == pytest.approx(1.33e-6, rel=0.05)
        assert costs[5] == pytest.approx(27e-6, rel=0.05)

    def test_nodes_for_ranks(self):
        assert BLUEGENE_P.nodes_for_ranks(2048) == 512
        assert BLUEGENE_Q.nodes_for_ranks(16384) == 512

    def test_network_for_builds_hops(self):
        net = network_for(BLUEGENE_P, n_ranks=16, ranks_per_node=4)
        cost_near = net.p2p(0, 1, 100)  # same node
        cost_far = net.p2p(0, 15, 100)
        assert cost_far.transit >= cost_near.transit


class TestMemoryModel:
    def test_paper_claim_memory_six_on_bgp(self):
        # 32,768 strategies (the paper's strong-scaling working set):
        # memory-six fits in a 512 MB VN-mode rank, memory-seven does not.
        assert max_memory_steps(BLUEGENE_P, n_strategies=32_768) == 6

    def test_bgq_also_capped_at_six(self):
        # Paper: memory-six "was the largest memory step model that could
        # fit into memory on both ... platforms" (BG/Q runs 32 ranks/node
        # -> 512 MB/rank as well).
        assert max_memory_steps(BLUEGENE_Q, n_strategies=32_768) == 6

    def test_fewer_strategies_allow_more_memory(self):
        assert max_memory_steps(BLUEGENE_P, n_strategies=1_024) >= 7

    def test_mixed_strategies_cost_more(self):
        pure = max_memory_steps(BLUEGENE_P, n_strategies=32_768)
        mixed = max_memory_steps(
            BLUEGENE_P, n_strategies=32_768, mixed_strategies=True
        )
        assert mixed < pure

    def test_footprint_components(self):
        fp = estimate_footprint(6, 32_768, ssets_per_rank=4096)
        assert fp.strategy_store == 32_768 * 4096
        assert fp.total > fp.strategy_store

    def test_impossible_configuration_raises(self):
        with pytest.raises(MemoryCapacityError):
            max_memory_steps(BLUEGENE_P, n_strategies=2**30)

    def test_generic_cluster_roomier(self):
        assert max_memory_steps(GENERIC_CLUSTER, n_strategies=32_768) >= 7


class TestTorusNeighbors:
    def test_2d_neighbors(self):
        from repro.machine import TorusTopology

        torus = TorusTopology((3, 4))
        # Node 0 at (0,0): up (2,0)=8, down (1,0)=4, left (0,3)=3, right (0,1)=1.
        assert torus.neighbors(0) == (1, 3, 4, 8)

    def test_rank_of_inverts_coordinates(self):
        from repro.machine import TorusTopology

        torus = TorusTopology((2, 3, 4))
        for node in range(torus.n_nodes):
            assert torus.rank_of(torus.coordinates(node)) == node

    def test_neighbors_at_unit_hop(self):
        from repro.machine import TorusTopology

        torus = TorusTopology((4, 4))
        for node in range(torus.n_nodes):
            for other in torus.neighbors(node):
                assert torus.hop_distance(node, other) == 1

    def test_size_two_dimension_dedupes(self):
        from repro.machine import TorusTopology

        torus = TorusTopology((2, 4))
        # The ±1 steps in the size-2 dimension coincide: degree 3.
        assert len(torus.neighbors(0)) == 3

    def test_size_one_dimension_contributes_nothing(self):
        from repro.machine import TorusTopology

        torus = TorusTopology((1, 5))
        assert torus.neighbors(0) == (1, 4)
