"""The registered ``ensemble`` backend and the run_sweep fast path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EnsembleBackend, Simulation, available_backends, run_sweep
from repro.core import EvolutionConfig
from repro.errors import ConfigurationError


def sweep_configs(n: int = 6, **overrides) -> list[EvolutionConfig]:
    base = dict(memory_steps=2, n_ssets=8, generations=400, rounds=16)
    base.update(overrides)
    return [EvolutionConfig(seed=300 + i, **base) for i in range(n)]


class TestEnsembleBackend:
    def test_registered(self):
        assert "ensemble" in available_backends()

    def test_single_run_matches_event(self):
        config = sweep_configs(1)[0]
        ens = Simulation(config, backend="ensemble").run()
        evt = Simulation(config, backend="event").run()
        assert ens.events == evt.events
        assert np.array_equal(
            ens.population.strategy_matrix(),
            evt.population.strategy_matrix(),
        )

    def test_report_fields(self):
        config = sweep_configs(1)[0]
        report = Simulation(config, backend="ensemble").run().backend_report
        assert report.backend == "ensemble"
        assert report.lanes == 1
        assert report.shared_engine is not None
        assert report.shared_engine["distinct"] >= 1
        assert "lanes=1" in report.summary()

    def test_run_many_report_lanes(self):
        backend = EnsembleBackend()
        results = backend.run_many(sweep_configs(4))
        for result in results:
            assert result.backend_report.lanes == 4

    def test_sampled_stochastic_rejected(self):
        config = EvolutionConfig(noise=0.2, n_ssets=8, generations=50)
        with pytest.raises(ConfigurationError, match="sampled-stochastic"):
            Simulation(config, backend="ensemble").run()

    def test_bad_batch_size_rejected(self):
        config = sweep_configs(1)[0]
        with pytest.raises(ConfigurationError, match="batch_size"):
            Simulation(config, backend="ensemble", batch_size=0).run()

    def test_expected_regime_supported(self):
        config = sweep_configs(1, noise=0.02, expected_fitness=True,
                               generations=200)[0]
        ens = Simulation(config, backend="ensemble").run()
        evt = Simulation(config, backend="event").run()
        assert ens.events == evt.events
        assert ens.backend_report.shared_engine is None

    def test_checkpoint_roundtrip(self, tmp_path):
        config = sweep_configs(1)[0]
        path = tmp_path / "pop.npz"
        first = Simulation(config, backend="ensemble",
                           checkpoint_path=path).run()
        assert path.exists()
        resumed = Simulation(config, backend="ensemble",
                             checkpoint_path=path, resume=True).run()
        assert resumed.generations_run == config.generations
        assert len(resumed.population) == len(first.population)


class TestRunSweepEnsemble:
    def test_matches_event_sweep(self):
        configs = sweep_configs(6)
        ens = run_sweep(configs, backend="ensemble")
        evt = run_sweep(configs, backend="event")
        assert len(ens) == len(evt) == 6
        for a, b in zip(ens, evt):
            assert a.config == b.config
            assert a.events == b.events
            assert np.array_equal(
                a.population.strategy_matrix(),
                b.population.strategy_matrix(),
            )

    def test_results_in_config_order(self):
        configs = sweep_configs(5)
        results = run_sweep(configs, backend="ensemble")
        assert [r.config.seed for r in results] == [c.seed for c in configs]

    def test_on_result_order(self):
        calls: list[int] = []
        results = run_sweep(
            sweep_configs(4),
            backend="ensemble",
            on_result=lambda i, r: calls.append(i),
        )
        assert calls == [0, 1, 2, 3]
        assert len(results) == 4

    def test_base_seed_derivation(self):
        configs = [sweep_configs(1)[0]] * 4
        a = run_sweep(configs, backend="ensemble", base_seed=42)
        b = run_sweep(configs, backend="event", base_seed=42)
        for x, y in zip(a, b):
            assert x.config.seed == y.config.seed
            assert x.events == y.events

    def test_workers_chunking_matches_serial(self):
        configs = sweep_configs(4, generations=200)
        serial = run_sweep(configs, backend="ensemble")
        pooled = run_sweep(configs, backend="ensemble", workers=2)
        for a, b in zip(serial, pooled):
            assert a.events == b.events
            assert np.array_equal(
                a.population.strategy_matrix(),
                b.population.strategy_matrix(),
            )
        # chunked groups are smaller
        assert pooled[0].backend_report.lanes == 2

    def test_empty_sweep(self):
        assert run_sweep([], backend="ensemble") == []

    def test_mixed_science_sweep(self):
        configs = sweep_configs(2) + sweep_configs(2, memory_steps=1)
        ens = run_sweep(configs, backend="ensemble")
        evt = run_sweep(configs, backend="event")
        for a, b in zip(ens, evt):
            assert a.events == b.events
