"""Batched sampled-stochastic fitness (``EvolutionConfig.sampled_batched``).

The opt-in batched mode's contract has three legs, each pinned here:

* **bit-reproducible per seed** — the serial drivers agree with each
  other, every ensemble lane agrees with its same-seed serial run, and a
  mid-run checkpoint resumes bit-identically (the dedicated
  ``("nature", "sampled")`` stream travels in the snapshot);
* **batch-membership independent** — fusing many plans into one kernel
  call (:meth:`SampledFitnessEngine.eval_plans`) never changes any plan's
  bits, which is the property the lane parity rests on;
* **statistically equivalent to the scalar legacy path** — deliberately
  *not* bit-identical (different stream, different draw shape), so the
  agreement is pinned with KS / CI tests on per-game payoffs and on
  evolution outcomes.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import EvolutionConfig
from repro.core.engine import SampledFitnessEngine
from repro.core.evolution import run_event_driven, run_serial
from repro.core.game import play_game
from repro.core.runstate import checkpoint_scope, checkpointing_supported
from repro.core.strategy import random_pure, tft, wsls
from repro.ensemble import lane_signature, run_ensemble
from repro.errors import ConfigurationError
from repro.rng import make_rng


def batched_configs(n=4, **overrides):
    base = dict(
        memory_steps=1, n_ssets=8, generations=600, rounds=16, noise=0.05,
        sampled_batched=True,
    )
    base.update(overrides)
    return [EvolutionConfig(seed=700 + i, **base) for i in range(n)]


def assert_identical(a, b):
    """Bitwise trajectory + outcome comparison (same shape as the
    lane-parity suite's helper)."""
    assert a.events == b.events
    assert a.n_pc_events == b.n_pc_events
    assert a.n_adoptions == b.n_adoptions
    assert a.n_mutations == b.n_mutations
    assert a.generations_run == b.generations_run
    assert np.array_equal(
        a.population.strategy_matrix(), b.population.strategy_matrix()
    )
    assert a.dominant()[1] == b.dominant()[1]
    assert len(a.snapshots) == len(b.snapshots)
    for sa, sb in zip(a.snapshots, b.snapshots):
        assert sa.generation == sb.generation
        assert np.array_equal(sa.strategy_matrix, sb.strategy_matrix)


class TestEngine:
    """Kernel-level contracts of :class:`SampledFitnessEngine`."""

    def make(self, seed=9, rounds=20, noise=0.05, mixed=False):
        return SampledFitnessEngine(
            rounds=rounds, noise=noise, rng=make_rng(seed), mixed=mixed
        )

    def test_requires_stochastic_config(self):
        with pytest.raises(ConfigurationError, match="nothing to sample"):
            SampledFitnessEngine(rounds=10, noise=0.0, rng=make_rng(1))

    def test_requires_dedicated_rng(self):
        with pytest.raises(ConfigurationError, match="rng"):
            SampledFitnessEngine(rounds=10, noise=0.1)

    def test_from_config_is_opt_in(self):
        noisy = EvolutionConfig(n_ssets=8, noise=0.1)
        batched = noisy.with_updates(sampled_batched=True)
        det = EvolutionConfig(n_ssets=8)
        assert SampledFitnessEngine.from_config(noisy, make_rng(1)) is None
        assert SampledFitnessEngine.from_config(det, make_rng(1)) is None
        engine = SampledFitnessEngine.from_config(batched, make_rng(1))
        assert engine is not None and engine.noise == 0.1

    def test_fused_eval_plans_preserve_each_plans_bits(self):
        """The load-bearing property: an engine's results depend only on
        its own plan and stream, never on who else is in the fused batch."""
        rng = make_rng(31)
        strategies = [random_pure(rng, 1) for _ in range(8)]

        def plan_for(engine):
            plan = engine.pc_plan(_population(strategies), _WELL_MIXED, 0, 3)
            return plan

        solo_a = self.make(seed=1)
        solo_b = self.make(seed=2)
        fused_a = self.make(seed=1)
        fused_b = self.make(seed=2)
        solo = [
            SampledFitnessEngine.eval_plans([(solo_a, plan_for(solo_a))])[0],
            SampledFitnessEngine.eval_plans([(solo_b, plan_for(solo_b))])[0],
        ]
        fused = SampledFitnessEngine.eval_plans(
            [(fused_a, plan_for(fused_a)), (fused_b, plan_for(fused_b))]
        )
        assert solo == fused  # bitwise: float equality intended

    def test_payoffs_to_many_matches_pair_payoffs_stream(self):
        """One batch of n games consumes the stream exactly like the
        drivers do — same draws, same per-game payoffs."""
        rng = make_rng(32)
        me = random_pure(rng, 1)
        others = [random_pure(rng, 1) for _ in range(6)]
        batched = self.make(seed=5).payoffs_to_many(me, others)
        replay = self.make(seed=5)
        uniforms = replay.draw_uniforms(len(others))
        # Re-play through the kernel with the same pre-drawn block.
        from repro.core.vectorgame import play_pairs_uniforms

        tables, a_idx, b_idx = _gather_tables(me, others)
        pay_a, _ = play_pairs_uniforms(
            tables, a_idx, b_idx, replay.rounds, replay.payoff, replay.noise,
            uniforms,
        )
        assert np.array_equal(batched, pay_a)

    def test_mixed_config_routes_pure_pairs_to_det_cache(self):
        """In a mixed noiseless config, pure-vs-pure pairs carry no
        randomness: they come from the inherited cache and consume no
        stream."""
        engine = SampledFitnessEngine(
            rounds=12, noise=0.0, rng=make_rng(3), mixed=True
        )
        a, b = tft(1), wsls(1)
        first = engine.pair_payoffs(a, b)
        assert first == engine.pair_payoffs(a, b)
        assert engine.games_played == 0
        # No stream consumption: the next draw equals a fresh same-seed
        # engine's first draw.
        fresh = SampledFitnessEngine(
            rounds=12, noise=0.0, rng=make_rng(3), mixed=True
        )
        assert np.array_equal(engine.draw_uniforms(2), fresh.draw_uniforms(2))

    def test_stats_counters(self):
        engine = self.make()
        engine.payoffs_to_many(tft(1), [wsls(1), tft(1), wsls(1)])
        stats = engine.stats()
        assert stats["games_played"] == 3
        assert stats["batches"] == 1


class _WellMixedStub:
    is_well_mixed = True


_WELL_MIXED = _WellMixedStub()


def _population(strategies):
    from repro.core.population import Population

    return Population.from_strategies(strategies)


def _gather_tables(me, others):
    rows = [me.table]
    ids = {me.key(): 0}
    a_idx, b_idx = [], []
    for opp in others:
        row = ids.get(opp.key())
        if row is None:
            row = len(rows)
            rows.append(opp.table)
            ids[opp.key()] = row
        a_idx.append(0)
        b_idx.append(row)
    return (
        np.stack(rows),
        np.asarray(a_idx, dtype=np.intp),
        np.asarray(b_idx, dtype=np.intp),
    )


class TestSerialParity:
    """run_serial == run_event_driven, bitwise, in batched mode."""

    def check(self, **overrides):
        for config in batched_configs(n=3, **overrides):
            assert_identical(run_serial(config), run_event_driven(config))

    def test_well_mixed_noise(self):
        self.check(memory_steps=2)

    def test_ring_noise(self):
        self.check(n_ssets=13, structure="ring:k=4")

    def test_mixed_strategies(self):
        self.check(noise=0.0, mixed_strategies=True)

    def test_mixed_strategies_with_noise(self):
        self.check(noise=0.02, mixed_strategies=True)

    def test_include_self_play(self):
        self.check(include_self_play=True)


class TestEnsembleLaneParity:
    """Every batched ensemble lane == its same-seed serial event run."""

    def check(self, configs):
        for config, result in zip(configs, run_ensemble(configs)):
            assert_identical(result, run_event_driven(config))

    def test_well_mixed(self):
        self.check(batched_configs(n=5, memory_steps=2))

    def test_graph_non_power_of_two(self):
        self.check(batched_configs(n=4, n_ssets=13, structure="ring:k=4"))

    def test_mixed_strategies(self):
        self.check(batched_configs(n=4, noise=0.0, mixed_strategies=True))

    def test_include_self_play(self):
        self.check(batched_configs(n=3, include_self_play=True))

    def test_heterogeneous_batch(self):
        """Batched noisy lanes grouped alongside deterministic lanes in
        one run_ensemble call; everyone keeps their serial trajectory."""
        configs = batched_configs(n=2) + [
            EvolutionConfig(
                memory_steps=1, n_ssets=8, generations=600, rounds=16, seed=3
            )
        ]
        self.check(configs)

    def test_non_batched_stochastic_still_rejected(self):
        with pytest.raises(ConfigurationError, match="sampled_batched"):
            run_ensemble(
                [EvolutionConfig(n_ssets=8, generations=100, noise=0.1)]
            )


def ks_distance(xs, ys):
    """Two-sample Kolmogorov-Smirnov statistic (no scipy dependency)."""
    xs, ys = np.sort(xs), np.sort(ys)
    grid = np.concatenate([xs, ys])
    cdf_x = np.searchsorted(xs, grid, side="right") / len(xs)
    cdf_y = np.searchsorted(ys, grid, side="right") / len(ys)
    return float(np.max(np.abs(cdf_x - cdf_y)))


def ks_critical(n, m, alpha_coeff=1.949):
    """Critical D at alpha ~ 0.001 (coefficient 1.949)."""
    return alpha_coeff * math.sqrt((n + m) / (n * m))


class TestStatisticalEquivalence:
    """Batched vs scalar legacy: same distributions, different bits."""

    def test_per_game_payoff_distribution(self):
        """KS on single-game payoffs of a fixed noisy pairing."""
        n = 1500
        rounds, noise = 30, 0.05
        a, b = tft(1), wsls(1)
        engine = SampledFitnessEngine(
            rounds=rounds, noise=noise, rng=make_rng(11)
        )
        batched = engine.payoffs_to_many(a, [b] * n)
        legacy_rng = make_rng(12)
        legacy = np.array([
            play_game(a, b, rounds=rounds, noise=noise, rng=legacy_rng).payoff_a
            for _ in range(n)
        ])
        assert ks_distance(batched, legacy) < ks_critical(n, n)
        # Same-path sanity: two independent batched samples also agree.
        other = SampledFitnessEngine(
            rounds=rounds, noise=noise, rng=make_rng(13)
        ).payoffs_to_many(a, [b] * n)
        assert ks_distance(batched, other) < ks_critical(n, n)

    def test_evolution_outcomes_agree(self):
        """CI + KS on evolution-level outcomes across replicate seeds."""
        n = 12
        base = dict(
            memory_steps=1, n_ssets=8, generations=1500, rounds=16,
            noise=0.05, record_events=False,
        )
        scalar_runs = [
            run_event_driven(EvolutionConfig(seed=60 + i, **base))
            for i in range(n)
        ]
        batched_runs = run_ensemble(
            [
                EvolutionConfig(seed=160 + i, sampled_batched=True, **base)
                for i in range(n)
            ]
        )
        for metric in (
            lambda r: r.dominant()[1],
            lambda r: r.n_adoptions / max(1, r.n_pc_events),
        ):
            xs = np.array([metric(r) for r in scalar_runs], dtype=float)
            ys = np.array([metric(r) for r in batched_runs], dtype=float)
            # Welch-style CI on the means (z ~ 4: far looser than the KS
            # bound but tight enough to catch a broken regime, e.g. the
            # noise term not applied at all).
            tolerance = 4.0 * math.sqrt(
                xs.var(ddof=1) / n + ys.var(ddof=1) / n
            ) + 1e-9
            assert abs(xs.mean() - ys.mean()) <= max(tolerance, 0.25)
            assert ks_distance(xs, ys) < ks_critical(n, n)


class MemorySink:
    """In-memory checkpoint sink (JSON round-trip, copied arrays)."""

    def __init__(self):
        self.saved = {}

    def save(self, unit, generation, meta, arrays):
        import json

        meta = json.loads(json.dumps(meta))
        arrays = {k: np.array(v) for k, v in arrays.items()}
        self.saved.setdefault(unit, []).append((generation, meta, arrays))

    def load_latest(self, unit):
        entries = self.saved.get(unit)
        if not entries:
            return None
        _, meta, arrays = entries[-1]
        return meta, arrays


class TestCheckpointResume:
    """The sampled stream travels in the snapshot and resumes bitwise."""

    CONFIG = dict(
        memory_steps=1, n_ssets=8, generations=600, rounds=16, noise=0.05,
        sampled_batched=True, checkpoint_every=200, seed=77,
    )

    def test_supported(self):
        assert checkpointing_supported(EvolutionConfig(**self.CONFIG))

    @pytest.mark.parametrize("driver", [run_serial, run_event_driven],
                             ids=["serial", "event"])
    def test_serial_drivers_resume_bitwise(self, driver):
        config = EvolutionConfig(**self.CONFIG)
        clean = driver(config)
        sink = MemorySink()
        with checkpoint_scope(sink):
            assert_identical(clean, driver(config))
        (unit,) = sink.saved
        generations = [g for g, _, _ in sink.saved[unit]]
        assert generations == [200, 400]
        # The snapshot carries the dedicated stream's state.
        _, meta, _ = sink.saved[unit][-1]
        assert meta["evaluator"]["type"] == "sampled"
        assert meta["evaluator"]["games_played"] > 0
        for index, generation in enumerate(generations):
            pinned = MemorySink()
            pinned.saved[unit] = [sink.saved[unit][index]]
            with checkpoint_scope(pinned):
                resumed = driver(config)
            assert resumed.resumed_from_generation == generation
            assert_identical(clean, resumed)

    def test_ensemble_resumes_bitwise(self):
        configs = [
            EvolutionConfig(**{**self.CONFIG, "seed": 77 + i})
            for i in range(3)
        ]
        clean = [run_event_driven(c) for c in configs]
        sink = MemorySink()
        with checkpoint_scope(sink):
            for a, b in zip(run_ensemble(configs), clean):
                assert_identical(a, b)
        (unit,) = sink.saved
        pinned = MemorySink()
        pinned.saved[unit] = sink.saved[unit][:1]
        with checkpoint_scope(pinned):
            for a, b in zip(run_ensemble(configs), clean):
                assert_identical(a, b)


class TestConfigAndBackends:
    """Config validation / round-trip and the backend routing story."""

    def test_flag_requires_sampled_regime(self):
        with pytest.raises(ConfigurationError, match="sampled_batched"):
            EvolutionConfig(n_ssets=8, sampled_batched=True)
        with pytest.raises(ConfigurationError, match="sampled_batched"):
            EvolutionConfig(
                n_ssets=8, noise=0.1, expected_fitness=True,
                sampled_batched=True,
            )

    def test_round_trip_preserves_flag(self):
        config = EvolutionConfig(n_ssets=8, noise=0.05, sampled_batched=True)
        assert config.to_dict()["sampled_batched"] is True
        assert EvolutionConfig.from_dict(config.to_dict()) == config
        assert "sampled-batched" in config.summary()

    def test_lane_signature_differs(self):
        noisy = dict(
            memory_steps=1, n_ssets=8, generations=100, noise=0.05,
            expected_fitness=True,
        )
        a = EvolutionConfig(**noisy)
        b = EvolutionConfig(
            memory_steps=1, n_ssets=8, generations=100, noise=0.05,
            sampled_batched=True,
        )
        assert lane_signature(a) != lane_signature(b)

    def test_ensemble_backend_accepts_batched(self):
        from repro.api.backends import get_backend

        backend = get_backend("ensemble")()
        backend.validate(
            EvolutionConfig(n_ssets=8, noise=0.05, sampled_batched=True)
        )

    def test_ensemble_backend_rejection_names_the_flag(self):
        from repro.api.backends import get_backend

        backend = get_backend("ensemble")()
        with pytest.raises(ConfigurationError, match="--sampled-batched"):
            backend.validate(EvolutionConfig(n_ssets=8, noise=0.05))

    @pytest.mark.parametrize("name", ["baseline", "multiprocess", "des"])
    def test_bit_parity_backends_point_to_the_flag(self, name):
        from repro.api.backends import get_backend

        backend = get_backend(name)()
        with pytest.raises(ConfigurationError, match="--sampled-batched"):
            backend.validate(EvolutionConfig(n_ssets=8, noise=0.05))

    def test_cli_flag_round_trips(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["evolve", "--noise", "0.05", "--sampled-batched"]
        )
        assert args.sampled_batched is True
