"""Progress, recorder, and checkpoint hooks under the ensemble backend.

The ensemble engine advances many lanes as one array program, but each
lane's hook surface must stay interchangeable with the serial/event path:
progress ticks fire once per event generation with the same counts, the
recorder persists the same event stream, and checkpoints round-trip.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np
import pytest

from repro.api import Simulation, run_sweep
from repro.core import EvolutionConfig, ProgressTick, progress_scope
from repro.io import GenerationRecorder, read_records


def sweep_configs(n: int = 4, **overrides) -> list[EvolutionConfig]:
    base = dict(memory_steps=2, n_ssets=8, generations=400, rounds=16)
    base.update(overrides)
    return [EvolutionConfig(seed=300 + i, **base) for i in range(n)]


def collect_ticks(configs, backend, **sweep_opts):
    ticks = []
    with progress_scope(ticks.append):
        results = run_sweep(configs, backend=backend, **sweep_opts)
    return ticks, results


class TestProgressParity:
    def test_ticks_fire_per_event_generation(self):
        configs = sweep_configs(1)
        ticks, results = collect_ticks(configs, "event")
        event_generations = {e.generation for e in results[0].events}
        assert len(ticks) == len(event_generations)
        assert [t.generation for t in ticks] == sorted(event_generations)
        final = ticks[-1]
        assert final.n_pc_events == results[0].n_pc_events
        assert final.n_adoptions == results[0].n_adoptions
        assert final.n_mutations == results[0].n_mutations

    def test_ensemble_ticks_match_event_backend(self):
        configs = sweep_configs(4)
        event_ticks, _ = collect_ticks(configs, "event", dedupe=False)
        ens_ticks, _ = collect_ticks(configs, "ensemble", dedupe=False)

        def by_run(ticks):
            grouped = defaultdict(list)
            for t in ticks:
                grouped[t.run_index].append(
                    (t.generation, t.n_pc_events, t.n_adoptions, t.n_mutations)
                )
            return {k: sorted(v) for k, v in grouped.items()}

        assert by_run(ens_ticks) == by_run(event_ticks)

    def test_ensemble_ticks_match_on_graph_structure(self):
        configs = sweep_configs(3, structure="ring:k=2")
        event_ticks, _ = collect_ticks(configs, "event", dedupe=False)
        ens_ticks, _ = collect_ticks(configs, "ensemble", dedupe=False)
        assert len(ens_ticks) == len(event_ticks)

    def test_generic_path_ticks_match(self):
        # expected_fitness forces the ensemble's generic (non-shared) group
        # path; hooks must behave identically there.
        configs = sweep_configs(2, expected_fitness=True, noise=0.05)
        event_ticks, _ = collect_ticks(configs, "event", dedupe=False)
        ens_ticks, _ = collect_ticks(configs, "ensemble", dedupe=False)
        assert len(ens_ticks) == len(event_ticks)
        assert {t.run_index for t in ens_ticks} == {0, 1}

    def test_tick_fraction_and_remap(self):
        configs = sweep_configs(3)
        ticks, _ = collect_ticks(configs, "ensemble", dedupe=False)
        assert {t.run_index for t in ticks} <= {0, 1, 2}
        assert all(0.0 < t.fraction <= 1.0 for t in ticks)

    def test_no_scope_no_overhead(self):
        # Without an installed scope the sweep result is bit-identical.
        configs = sweep_configs(2)
        plain = run_sweep(configs, backend="ensemble", dedupe=False)
        ticks, hooked = collect_ticks(configs, "ensemble", dedupe=False)
        assert ticks
        for a, b in zip(plain, hooked):
            assert a.events == b.events
            assert np.array_equal(
                a.population.strategy_matrix(),
                b.population.strategy_matrix(),
            )


class TestRecorderUnderEnsemble:
    def test_record_result_parity(self, tmp_path):
        config = sweep_configs(1)[0]
        ens = Simulation(config, backend="ensemble").run()
        evt = Simulation(config, backend="event").run()
        paths = []
        for tag, result in (("ens", ens), ("evt", evt)):
            path = tmp_path / f"{tag}.jsonl"
            with GenerationRecorder(path) as recorder:
                recorder.record_result(result)
            paths.append(path)
        ens_records = read_records(paths[0])
        evt_records = read_records(paths[1])
        strip = lambda records: [
            {k: v for k, v in r.items() if k != "wallclock_seconds"}
            for r in records
        ]
        assert strip(ens_records) == strip(evt_records)


class TestCheckpointUnderEnsemble:
    def test_save_and_resume(self, tmp_path):
        config = sweep_configs(1)[0]
        path = tmp_path / "pop.npz"
        first = Simulation(
            config, backend="ensemble", checkpoint_path=path
        ).run()
        assert path.exists()
        resumed = Simulation(
            config.with_updates(generations=100),
            backend="ensemble",
            checkpoint_path=path,
            resume=True,
        ).run()
        # The resumed run starts from the saved population, not random init.
        assert resumed.snapshots[0].generation == 0
        np.testing.assert_array_equal(
            resumed.snapshots[0].strategy_matrix,
            first.population.strategy_matrix(),
        )
