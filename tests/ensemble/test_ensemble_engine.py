"""Unit tests for the shared EnsembleEngine and the raw-stream decoders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig, PayoffMatrix
from repro.core.cycle import exact_payoffs
from repro.core.payoff import PAPER_PAYOFF
from repro.core.strategy import all_c, all_d, random_pure, tft, wsls
from repro.ensemble import EnsembleEngine, supports_shared_engine
from repro.ensemble import rawstream
from repro.errors import ConfigurationError, SimulationError, StrategyError
from repro.rng import make_rng


def lanes_engine(n_lanes: int = 2, **kw) -> EnsembleEngine:
    base = dict(memory_steps=1, rounds=16, n_lanes=n_lanes, capacity=8)
    base.update(kw)
    return EnsembleEngine(**base)


class TestPool:
    def test_intern_dedupes_across_lanes(self):
        engine = lanes_engine()
        a0 = engine.acquire(all_d())
        a1 = engine.acquire(all_d())
        assert a0 == a1
        assert len(engine) == 1
        assert engine.strategy(a0) == all_d()

    def test_release_recycles_at_zero(self):
        engine = lanes_engine()
        sid = engine.acquire(all_d())
        assert engine.acquire(all_d()) == sid  # second reference
        engine.release(sid)
        assert len(engine) == 1
        engine.release(sid)
        assert len(engine) == 0
        with pytest.raises(SimulationError):
            engine.strategy(sid)

    def test_release_underflow(self):
        engine = lanes_engine()
        sid = engine.acquire(all_d())
        engine.release(sid)
        with pytest.raises(SimulationError):
            engine.release(sid)

    def test_growth(self):
        engine = lanes_engine(capacity=2)
        rng = make_rng(3)
        sids = [engine.acquire(random_pure(rng, 1)) for _ in range(10)]
        assert engine.capacity >= len(set(sids))

    def test_memory_mismatch_rejected(self):
        engine = lanes_engine()
        with pytest.raises(StrategyError):
            engine.acquire(all_d(2))

    def test_mixed_rejected(self):
        from repro.core.strategy import gtft

        engine = lanes_engine()
        with pytest.raises(StrategyError):
            engine.acquire(gtft())

    def test_non_integer_payoff_rejected(self):
        with pytest.raises(ConfigurationError, match="integer"):
            lanes_engine(
                payoff=PayoffMatrix(reward=3.5, sucker=0.0, temptation=4.5,
                                    punishment=1.0)
            )


class TestFills:
    def test_fill_missing_matches_exact_payoffs(self):
        engine = lanes_engine()
        strategies = [all_c(), all_d(), tft(), wsls()]
        sids = engine.intern_lane(strategies)
        iu, ju = np.triu_indices(4)
        engine.fill_missing(
            sids[iu], sids[ju], np.zeros(len(iu), dtype=np.int64)
        )
        for i, a in enumerate(strategies):
            for j, b in enumerate(strategies):
                pay_a, pay_b, _ = exact_payoffs(a, b, 16, PAPER_PAYOFF)
                assert float(engine.paymat[sids[i], sids[j]]) == pay_a
                assert float(engine.paymat[sids[j], sids[i]]) == pay_b

    def test_fill_missing_is_idempotent(self):
        engine = lanes_engine()
        sids = engine.intern_lane([all_c(), all_d()])
        lanes = np.zeros(2, dtype=np.int64)
        engine.fill_missing(sids, sids[::-1], lanes)
        fills = engine.fills
        engine.fill_missing(sids, sids[::-1], lanes)
        assert engine.fills == fills  # everything already valid

    def test_recycled_slot_invalidated_both_directions(self):
        engine = lanes_engine()
        keep = engine.acquire(all_c())
        dead = engine.acquire(all_d())
        engine.fill_missing(
            np.array([keep]), np.array([dead]), np.zeros(1, dtype=np.int64)
        )
        engine.release(dead)
        reborn = engine.acquire(tft())
        assert reborn == dead  # slot reused
        # The stale (keep, slot) entry must not satisfy the validity check.
        engine.ensure_rows(
            np.array([keep]),
            np.array([[keep, reborn]]),
            np.zeros(1, dtype=np.int64),
        )
        pay_keep, _, _ = exact_payoffs(all_c(), tft(), 16, PAPER_PAYOFF)
        assert float(engine.paymat[keep, reborn]) == pay_keep

    def test_fitness_well_mixed_matches_manual_sum(self):
        engine = lanes_engine()
        strategies = [all_c(), all_d(), tft(), all_c()]
        sids = engine.intern_lane(strategies)
        iu, ju = np.triu_indices(4)
        engine.fill_missing(sids[iu], sids[ju], np.zeros(len(iu), np.int64))
        lane = sids[None, :]
        fit_t, fit_l = engine.fitness_pc_well_mixed(
            lane, sids[:1], sids[1:2], include_self_play=False
        )
        expected_t = sum(
            exact_payoffs(strategies[0], s, 16, PAPER_PAYOFF)[0]
            for s in strategies
        ) - exact_payoffs(strategies[0], strategies[0], 16, PAPER_PAYOFF)[0]
        assert float(fit_t[0]) == expected_t

    def test_compact_preserves_payoffs(self):
        engine = lanes_engine(capacity=512)
        rng = make_rng(9)
        strategies = [random_pure(rng, 1) for _ in range(6)]
        sids = engine.intern_lane(strategies)
        iu, ju = np.triu_indices(len(sids))
        engine.fill_missing(sids[iu], sids[ju], np.zeros(len(iu), np.int64))
        before = {
            (i, j): float(engine.paymat[sids[i], sids[j]])
            for i in range(6)
            for j in range(6)
        }
        mapping = engine.compact()
        assert mapping is not None
        new_sids = mapping[sids]
        assert engine.capacity < 512
        for i in range(6):
            assert engine.strategy(int(new_sids[i])) == strategies[i]
            for j in range(6):
                assert (
                    float(engine.paymat[new_sids[i], new_sids[j]])
                    == before[(i, j)]
                )

    def test_compact_declines_when_occupied(self):
        engine = lanes_engine(capacity=8)
        engine.intern_lane([all_c(), all_d(), tft()])
        assert engine.compact() is None

    def test_check_consistent(self):
        engine = lanes_engine()
        strategies = [all_c(), all_d()]
        sids = engine.intern_lane(strategies)
        engine.check_consistent(sids, strategies)
        with pytest.raises(SimulationError):
            engine.check_consistent(sids, [all_d(), all_d()])


class TestSupportsSharedEngine:
    def test_deterministic_supported(self):
        assert supports_shared_engine(EvolutionConfig())

    def test_expected_regime_not_shared(self):
        assert not supports_shared_engine(
            EvolutionConfig(noise=0.1, expected_fitness=True)
        )

    def test_engine_off_not_shared(self):
        assert not supports_shared_engine(EvolutionConfig(engine=False))

    def test_non_integer_payoff_not_shared(self):
        payoff = PayoffMatrix(reward=3.5, sucker=0.0, temptation=4.5,
                              punishment=1.0)
        assert not supports_shared_engine(EvolutionConfig(payoff=payoff))


class TestRawStream:
    """The decoders must consume the Philox stream exactly like the
    Generator API — across bounds, carry parities, and call splits."""

    #: Bound with a ~1/3 Lemire rejection rate (2**32 % n is huge), so the
    #: fixup path actually runs in-test instead of at its real-world
    #: ~n/2**32 rarity.
    REJECTION_HEAVY = rawstream._REJECTION_HEAVY_N

    @pytest.mark.parametrize(
        "n", [2, 3, 4, 10, 16, 48, 64, 100, 128, REJECTION_HEAVY]
    )
    def test_pc_decoder_matches_generator(self, n):
        for seed in (0, 1, 42):
            ref = rawstream._ScalarPCDecoder(make_rng(seed), n)
            raw = rawstream._RawPCDecoder(make_rng(seed), n)
            for m in (7, 0, 13, 31):
                assert raw.draw(m) == ref.draw(m)

    @pytest.mark.parametrize(
        "n,states",
        [(4, 4), (8, 16), (64, 16), (16, 64), (10, 16), (48, 4), (100, 64),
         (REJECTION_HEAVY, 16)],
    )
    def test_mutation_decoder_matches_generator(self, n, states):
        for seed in (0, 5):
            ref = rawstream._ScalarMutationDecoder(make_rng(seed), n, states)
            raw = rawstream._RawMutationDecoder(make_rng(seed), n, states)
            for m in (5, 0, 9, 2):
                ref_t, ref_tab = ref.draw(m)
                raw_t, raw_tab = raw.draw(m)
                assert raw_t == ref_t
                assert np.array_equal(raw_tab, ref_tab)

    @pytest.mark.parametrize(
        "spec,n",
        [
            ("ring:k=2", 9),
            ("ring:k=4", 16),
            ("grid:rows=3,cols=3", 9),
            ("regular:d=3,seed=2", 10),
            ("smallworld:k=2,p=0.5,seed=3", 17),
            ("scalefree:m=1,seed=4", 20),  # has degree-1 leaves
            ("scalefree:m=3,seed=1", 50),
        ],
    )
    def test_graph_decoder_matches_select_pair(self, spec, n):
        from repro.structure import build_structure

        structure = build_structure(spec, n)
        for seed in (0, 7, 901):
            ref = rawstream._ScalarGraphPCDecoder(make_rng(seed), structure)
            raw = rawstream._RawGraphPCDecoder(make_rng(seed), structure)
            for m in (17, 0, 9, 40):
                assert raw.draw(m) == ref.draw(m)

    def test_graph_decoder_teachers_are_neighbors(self):
        from repro.structure import build_structure

        structure = build_structure("smallworld:k=4,p=0.3,seed=1", 12)
        dec = rawstream.graph_pc_decoder(make_rng(3), structure)
        teachers, learners, uniforms = dec.draw(200)
        for t, l, u in zip(teachers, learners, uniforms):
            assert t in structure.neighbors(l).tolist()
            assert 0.0 <= u < 1.0

    def test_stream_state_advances_identically(self):
        """After decoding, the *same* generator keeps producing the serial
        stream (the commit advanced it exactly)."""
        a, b = make_rng(77), make_rng(77)
        rawstream._RawPCDecoder(a, 16).draw(9)
        rawstream._ScalarPCDecoder(b, 16).draw(9)
        assert a.random() == b.random()
        a2, b2 = make_rng(78), make_rng(78)
        rawstream._RawMutationDecoder(a2, 16, 16).draw(5)
        rawstream._ScalarMutationDecoder(b2, 16, 16).draw(5)
        assert a2.random() == b2.random()
        from repro.structure import build_structure

        structure = build_structure("scalefree:m=1,seed=4", 20)
        a3, b3 = make_rng(79), make_rng(79)
        rawstream._RawGraphPCDecoder(a3, structure).draw(25)
        rawstream._ScalarGraphPCDecoder(b3, structure).draw(25)
        assert a3.random() == b3.random()
        # Non-pow2 bound: the rejection bookkeeping must commit exactly too.
        a4, b4 = make_rng(80), make_rng(80)
        rawstream._RawPCDecoder(a4, TestRawStream.REJECTION_HEAVY).draw(40)
        rawstream._ScalarPCDecoder(b4, TestRawStream.REJECTION_HEAVY).draw(40)
        assert a4.random() == b4.random()

    def test_non_power_of_two_decodes_raw(self):
        """Lemire rejections are fixed up, so non-pow2 bounds stay on the
        raw fast path (ROADMAP item landed)."""
        assert rawstream.raw_decoding_supported(100)
        assert isinstance(
            rawstream.pc_decoder(make_rng(0), 100),
            rawstream._RawPCDecoder,
        )

    def test_out_of_range_bounds_fall_back(self):
        assert not rawstream.raw_decoding_supported(1)
        assert not rawstream.raw_decoding_supported(1 << 32)

    def test_supported_passes_self_check(self):
        assert rawstream.raw_decoding_supported(64)


class TestFitnessPCGraph:
    """The cross-lane CSR gather equals per-lane fitness_neighbors."""

    def _setup(self, spec, n, n_lanes=3, memory=1, seed=0):
        from repro.structure import build_structure

        structure = build_structure(spec, n)
        engine = EnsembleEngine(memory, rounds=20, n_lanes=n_lanes)
        rng = make_rng(seed)
        sids = np.empty((n_lanes, n), dtype=np.int64)
        for r in range(n_lanes):
            sids[r] = engine.intern_lane(
                [random_pure(rng, memory) for _ in range(n)]
            )
        return structure, engine, sids

    @pytest.mark.parametrize(
        "spec,n",
        [("ring:k=2", 9), ("smallworld:k=4,p=0.4,seed=2", 12),
         ("scalefree:m=2,seed=3", 12)],
    )
    @pytest.mark.parametrize("include_self", [False, True])
    def test_matches_per_lane_gathers(self, spec, n, include_self):
        structure, engine, sids = self._setup(spec, n)
        lanes = np.array([0, 2, 1, 2], dtype=np.int64)
        teachers = np.array([0, 3, n - 1, 0], dtype=np.int64)
        learners = np.array([1, 5, 0, n - 1], dtype=np.int64)
        fit_t, fit_l = engine.fitness_pc_graph(
            sids, lanes, teachers, learners, structure, include_self,
            ensure=True,
        )
        for i in range(len(lanes)):
            r = int(lanes[i])
            for node, got in ((int(teachers[i]), fit_t[i]),
                              (int(learners[i]), fit_l[i])):
                expected = engine.fitness_neighbors(
                    int(sids[r, node]),
                    sids[r][structure.neighbors(node)],
                    include_self,
                )
                assert got == expected

    def test_ensure_fills_exactly_what_is_read(self):
        structure, engine, sids = self._setup("ring:k=2", 9, memory=2)
        lanes = np.array([1], dtype=np.int64)
        teachers = np.array([4], dtype=np.int64)
        learners = np.array([7], dtype=np.int64)
        before = engine.fills
        fit_t, fit_l = engine.fitness_pc_graph(
            sids, lanes, teachers, learners, structure, ensure=True
        )
        assert engine.fills > before
        # A second identical query is fully served from the matrix.
        again = engine.fills
        engine.fitness_pc_graph(
            sids, lanes, teachers, learners, structure, ensure=True
        )
        assert engine.fills == again
