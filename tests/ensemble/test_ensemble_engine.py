"""Unit tests for the shared EnsembleEngine and the raw-stream decoders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig, PayoffMatrix
from repro.core.cycle import exact_payoffs
from repro.core.payoff import PAPER_PAYOFF
from repro.core.strategy import all_c, all_d, random_pure, tft, wsls
from repro.ensemble import EnsembleEngine, supports_shared_engine
from repro.ensemble import rawstream
from repro.errors import ConfigurationError, SimulationError, StrategyError
from repro.rng import make_rng


def lanes_engine(n_lanes: int = 2, **kw) -> EnsembleEngine:
    base = dict(memory_steps=1, rounds=16, n_lanes=n_lanes, capacity=8)
    base.update(kw)
    return EnsembleEngine(**base)


class TestPool:
    def test_intern_dedupes_across_lanes(self):
        engine = lanes_engine()
        a0 = engine.acquire(all_d())
        a1 = engine.acquire(all_d())
        assert a0 == a1
        assert len(engine) == 1
        assert engine.strategy(a0) == all_d()

    def test_release_recycles_at_zero(self):
        engine = lanes_engine()
        sid = engine.acquire(all_d())
        assert engine.acquire(all_d()) == sid  # second reference
        engine.release(sid)
        assert len(engine) == 1
        engine.release(sid)
        assert len(engine) == 0
        with pytest.raises(SimulationError):
            engine.strategy(sid)

    def test_release_underflow(self):
        engine = lanes_engine()
        sid = engine.acquire(all_d())
        engine.release(sid)
        with pytest.raises(SimulationError):
            engine.release(sid)

    def test_growth(self):
        engine = lanes_engine(capacity=2)
        rng = make_rng(3)
        sids = [engine.acquire(random_pure(rng, 1)) for _ in range(10)]
        assert engine.capacity >= len(set(sids))

    def test_memory_mismatch_rejected(self):
        engine = lanes_engine()
        with pytest.raises(StrategyError):
            engine.acquire(all_d(2))

    def test_mixed_rejected(self):
        from repro.core.strategy import gtft

        engine = lanes_engine()
        with pytest.raises(StrategyError):
            engine.acquire(gtft())

    def test_non_integer_payoff_rejected(self):
        with pytest.raises(ConfigurationError, match="integer"):
            lanes_engine(
                payoff=PayoffMatrix(reward=3.5, sucker=0.0, temptation=4.5,
                                    punishment=1.0)
            )


class TestFills:
    def test_fill_missing_matches_exact_payoffs(self):
        engine = lanes_engine()
        strategies = [all_c(), all_d(), tft(), wsls()]
        sids = engine.intern_lane(strategies)
        iu, ju = np.triu_indices(4)
        engine.fill_missing(
            sids[iu], sids[ju], np.zeros(len(iu), dtype=np.int64)
        )
        for i, a in enumerate(strategies):
            for j, b in enumerate(strategies):
                pay_a, pay_b, _ = exact_payoffs(a, b, 16, PAPER_PAYOFF)
                assert float(engine.paymat[sids[i], sids[j]]) == pay_a
                assert float(engine.paymat[sids[j], sids[i]]) == pay_b

    def test_fill_missing_is_idempotent(self):
        engine = lanes_engine()
        sids = engine.intern_lane([all_c(), all_d()])
        lanes = np.zeros(2, dtype=np.int64)
        engine.fill_missing(sids, sids[::-1], lanes)
        fills = engine.fills
        engine.fill_missing(sids, sids[::-1], lanes)
        assert engine.fills == fills  # everything already valid

    def test_recycled_slot_invalidated_both_directions(self):
        engine = lanes_engine()
        keep = engine.acquire(all_c())
        dead = engine.acquire(all_d())
        engine.fill_missing(
            np.array([keep]), np.array([dead]), np.zeros(1, dtype=np.int64)
        )
        engine.release(dead)
        reborn = engine.acquire(tft())
        assert reborn == dead  # slot reused
        # The stale (keep, slot) entry must not satisfy the validity check.
        engine.ensure_rows(
            np.array([keep]),
            np.array([[keep, reborn]]),
            np.zeros(1, dtype=np.int64),
        )
        pay_keep, _, _ = exact_payoffs(all_c(), tft(), 16, PAPER_PAYOFF)
        assert float(engine.paymat[keep, reborn]) == pay_keep

    def test_fitness_well_mixed_matches_manual_sum(self):
        engine = lanes_engine()
        strategies = [all_c(), all_d(), tft(), all_c()]
        sids = engine.intern_lane(strategies)
        iu, ju = np.triu_indices(4)
        engine.fill_missing(sids[iu], sids[ju], np.zeros(len(iu), np.int64))
        lane = sids[None, :]
        fit_t, fit_l = engine.fitness_pc_well_mixed(
            lane, sids[:1], sids[1:2], include_self_play=False
        )
        expected_t = sum(
            exact_payoffs(strategies[0], s, 16, PAPER_PAYOFF)[0]
            for s in strategies
        ) - exact_payoffs(strategies[0], strategies[0], 16, PAPER_PAYOFF)[0]
        assert float(fit_t[0]) == expected_t

    def test_compact_preserves_payoffs(self):
        engine = lanes_engine(capacity=512)
        rng = make_rng(9)
        strategies = [random_pure(rng, 1) for _ in range(6)]
        sids = engine.intern_lane(strategies)
        iu, ju = np.triu_indices(len(sids))
        engine.fill_missing(sids[iu], sids[ju], np.zeros(len(iu), np.int64))
        before = {
            (i, j): float(engine.paymat[sids[i], sids[j]])
            for i in range(6)
            for j in range(6)
        }
        mapping = engine.compact()
        assert mapping is not None
        new_sids = mapping[sids]
        assert engine.capacity < 512
        for i in range(6):
            assert engine.strategy(int(new_sids[i])) == strategies[i]
            for j in range(6):
                assert (
                    float(engine.paymat[new_sids[i], new_sids[j]])
                    == before[(i, j)]
                )

    def test_compact_declines_when_occupied(self):
        engine = lanes_engine(capacity=8)
        engine.intern_lane([all_c(), all_d(), tft()])
        assert engine.compact() is None

    def test_check_consistent(self):
        engine = lanes_engine()
        strategies = [all_c(), all_d()]
        sids = engine.intern_lane(strategies)
        engine.check_consistent(sids, strategies)
        with pytest.raises(SimulationError):
            engine.check_consistent(sids, [all_d(), all_d()])


class TestSupportsSharedEngine:
    def test_deterministic_supported(self):
        assert supports_shared_engine(EvolutionConfig())

    def test_expected_regime_not_shared(self):
        assert not supports_shared_engine(
            EvolutionConfig(noise=0.1, expected_fitness=True)
        )

    def test_engine_off_not_shared(self):
        assert not supports_shared_engine(EvolutionConfig(engine=False))

    def test_non_integer_payoff_not_shared(self):
        payoff = PayoffMatrix(reward=3.5, sucker=0.0, temptation=4.5,
                              punishment=1.0)
        assert not supports_shared_engine(EvolutionConfig(payoff=payoff))


class TestRawStream:
    """The decoders must consume the Philox stream exactly like the
    Generator API — across bounds, carry parities, and call splits."""

    @pytest.mark.parametrize("n", [2, 4, 16, 64, 128])
    def test_pc_decoder_matches_generator(self, n):
        for seed in (0, 1, 42):
            ref = rawstream._ScalarPCDecoder(make_rng(seed), n)
            raw = rawstream._RawPCDecoder(make_rng(seed), n)
            for m in (7, 0, 13, 31):
                assert raw.draw(m) == ref.draw(m)

    @pytest.mark.parametrize("n,states", [(4, 4), (8, 16), (64, 16), (16, 64)])
    def test_mutation_decoder_matches_generator(self, n, states):
        for seed in (0, 5):
            ref = rawstream._ScalarMutationDecoder(make_rng(seed), n, states)
            raw = rawstream._RawMutationDecoder(make_rng(seed), n, states)
            for m in (5, 0, 9, 2):
                ref_t, ref_tab = ref.draw(m)
                raw_t, raw_tab = raw.draw(m)
                assert raw_t == ref_t
                assert np.array_equal(raw_tab, ref_tab)

    def test_stream_state_advances_identically(self):
        """After decoding, the *same* generator keeps producing the serial
        stream (the commit advanced it exactly)."""
        a, b = make_rng(77), make_rng(77)
        rawstream._RawPCDecoder(a, 16).draw(9)
        rawstream._ScalarPCDecoder(b, 16).draw(9)
        assert a.random() == b.random()
        a2, b2 = make_rng(78), make_rng(78)
        rawstream._RawMutationDecoder(a2, 16, 16).draw(5)
        rawstream._ScalarMutationDecoder(b2, 16, 16).draw(5)
        assert a2.random() == b2.random()

    def test_non_power_of_two_uses_scalar(self):
        assert not rawstream.raw_decoding_supported(100)
        assert isinstance(
            rawstream.pc_decoder(make_rng(0), 100),
            rawstream._ScalarPCDecoder,
        )

    def test_supported_passes_self_check(self):
        assert rawstream.raw_decoding_supported(64)
