"""Float32-paymat eligibility boundary.

The shared ensemble engine stores the pair matrix at float32 when game
totals fit float32's exact-integer range — ``rounds * max|payoff| <
2**24`` — and float64 otherwise.  For the paper payoff [3, 0, 4, 1]
(``max|payoff| = 4``) the boundary sits at ``rounds = 4_194_304``: one
round less stays compact, the boundary itself must widen.  Either side,
trajectories are bit-identical to the same-seed serial event run (sums
are accumulated in float64 in both layouts).
"""

from __future__ import annotations

import numpy as np

from repro.core import EvolutionConfig
from repro.core.evolution import run_event_driven
from repro.ensemble import run_ensemble
from repro.ensemble.engine import EnsembleEngine

#: rounds * 4 == 2**24 exactly at this value — the first float64 point.
BOUNDARY_ROUNDS = 4_194_304


class TestDtypeSelection:
    def test_below_boundary_is_float32(self):
        engine = EnsembleEngine(memory_steps=1, rounds=BOUNDARY_ROUNDS - 1)
        assert engine._store.dtype == np.float32

    def test_at_boundary_is_float64(self):
        engine = EnsembleEngine(memory_steps=1, rounds=BOUNDARY_ROUNDS)
        assert engine._store.dtype == np.float64

    def test_small_rounds_is_float32(self):
        engine = EnsembleEngine(memory_steps=1, rounds=200)
        assert engine._store.dtype == np.float32

    def test_blocked_store_inherits_dtype(self):
        compact = EnsembleEngine(
            memory_steps=1, rounds=BOUNDARY_ROUNDS - 1, paymat_block=8
        )
        wide = EnsembleEngine(
            memory_steps=1, rounds=BOUNDARY_ROUNDS, paymat_block=8
        )
        assert compact._store.dtype == np.float32
        assert wide._store.dtype == np.float64


class TestBoundaryParity:
    """Bit-identical to the serial event run on either side of 2**24."""

    def check(self, rounds: int, **overrides) -> None:
        configs = [
            EvolutionConfig(
                memory_steps=1, n_ssets=8, generations=300, rounds=rounds,
                seed=4200 + i, **overrides,
            )
            for i in range(3)
        ]
        for config, result in zip(configs, run_ensemble(configs)):
            serial = run_event_driven(config)
            assert result.events == serial.events
            assert result.n_pc_events == serial.n_pc_events
            assert result.n_adoptions == serial.n_adoptions
            assert result.n_mutations == serial.n_mutations
            assert np.array_equal(
                result.population.strategy_matrix(),
                serial.population.strategy_matrix(),
            )

    def test_last_float32_rounds(self):
        self.check(BOUNDARY_ROUNDS - 1)

    def test_first_float64_rounds(self):
        self.check(BOUNDARY_ROUNDS)

    def test_boundary_under_blocked_paymat(self):
        self.check(BOUNDARY_ROUNDS - 1, paymat_block=4)
        self.check(BOUNDARY_ROUNDS, paymat_block=4)
