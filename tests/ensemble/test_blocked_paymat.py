"""Blocked-paymat suite: ``BlockedPairStore`` == dense, bit for bit.

The blocked store's contract is that sharding the pair matrix into
on-demand ``B x B`` blocks (``EvolutionConfig.paymat_block``) is pure
storage: every trajectory — with blocks smaller than the interned
strategy count, through pool growth, and through LRU eviction-then-refill
under ``engine_pool_cap`` — is bit-identical to the same-seed dense run,
while resident bytes track the *touched* pair surface instead of O(K²).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig
from repro.core.engine import FitnessEngine
from repro.core.evolution import EvolutionResult, run_event_driven
from repro.core.paymat import BlockedPairStore, validate_paymat_block
from repro.ensemble import run_ensemble, run_ensemble_detailed
from repro.errors import ConfigurationError


def assert_identical(a: EvolutionResult, b: EvolutionResult) -> None:
    """Trajectory + outcome comparison (bitwise on every float)."""
    assert a.events == b.events
    assert a.n_pc_events == b.n_pc_events
    assert a.n_adoptions == b.n_adoptions
    assert a.n_mutations == b.n_mutations
    assert a.generations_run == b.generations_run
    assert np.array_equal(
        a.population.strategy_matrix(), b.population.strategy_matrix()
    )
    assert a.dominant()[1] == b.dominant()[1]


def replicate_configs(n: int = 4, **overrides) -> list[EvolutionConfig]:
    base = dict(
        memory_steps=2, n_ssets=8, generations=600, rounds=16, paymat_block=4
    )
    base.update(overrides)
    return [EvolutionConfig(seed=3100 + i, **base) for i in range(n)]


def check_blocked_parity(configs: list[EvolutionConfig]) -> None:
    """Every blocked ensemble lane == its *dense* same-seed serial run."""
    results = run_ensemble(configs)
    for config, result in zip(configs, results):
        dense = config.with_updates(paymat_block=0, engine_pool_cap=0)
        assert_identical(result, run_event_driven(dense))


class TestStoreUnit:
    """Direct BlockedPairStore behavior (NumPy backend)."""

    def test_roundtrip_and_absent_reads_zero(self):
        store = BlockedPairStore(16, 4, np.float64)
        a = np.array([1, 5])
        b = np.array([9, 2])
        store.write_pairs(a, b, np.array([3.0, 7.0]), np.array([4.0, 8.0]))
        assert store.take(1, 9) == 3.0
        assert store.take(9, 1) == 4.0
        assert store.take(5, 2) == 7.0
        # Unwritten cells read 0 through the permanent absent block.
        assert store.take(14, 15) == 0.0
        assert np.array_equal(
            store.take(np.array([1, 14]), np.array([9, 15])),
            np.array([3.0, 0.0]),
        )

    def test_pair_valid_is_two_way(self):
        store = BlockedPairStore(16, 4, np.float64)
        store.write_pairs(
            np.array([1]), np.array([9]), np.array([3.0]), np.array([4.0])
        )
        assert store.pair_valid(1, 9)
        assert store.pair_valid(9, 1)
        assert not store.pair_valid(1, 2)
        assert not store.pair_valid(14, 15)

    def test_invalidate_row_kills_both_directions(self):
        store = BlockedPairStore(16, 4, np.float64)
        store.write_pairs(
            np.array([1]), np.array([9]), np.array([3.0]), np.array([4.0])
        )
        store.invalidate_row(1)
        assert not store.pair_valid(1, 9)
        assert not store.pair_valid(9, 1)
        # Re-writing re-validates under the new epoch.
        store.write_pairs(
            np.array([1]), np.array([9]), np.array([5.0]), np.array([6.0])
        )
        assert store.pair_valid(1, 9)
        assert store.take(1, 9) == 5.0

    def test_growth_past_initial_block_grid(self):
        # grow() replaces the host block table once the grid widens; reads
        # and writes on both old and new blocks must stay live (this pins
        # the _sync_table repoint on the NumPy backend).
        store = BlockedPairStore(16, 4, np.float64)
        store.write_pairs(
            np.array([1]), np.array([9]), np.array([3.0]), np.array([4.0])
        )
        store.grow(64)
        assert store.take(1, 9) == 3.0
        assert store.pair_valid(1, 9)
        store.write_pairs(
            np.array([40]), np.array([50]), np.array([7.0]), np.array([8.0])
        )
        assert store.take(40, 50) == 7.0
        assert store.take(50, 40) == 8.0
        assert store.pair_valid(40, 50)
        assert store.take(60, 63) == 0.0

    def test_epoch_wraparound_clears_row(self):
        # Epochs cap at 32766 so a two-epoch stamp sum fits uint16; the
        # wrap must clear BOTH directions of the row's cells (one-way
        # validity queries would otherwise see stale mirror stamps).
        store = BlockedPairStore(16, 4, np.float64)
        store._epoch[3] = 32766
        store.write_pairs(
            np.array([3]), np.array([5]), np.array([1.0]), np.array([2.0])
        )
        assert store.pair_valid(3, 5)
        store.invalidate_row(3)  # wraps: eager row clear, epoch back to 1
        assert int(store._epoch[3]) == 1
        assert not store.pair_valid(3, 5)
        assert not store.pair_valid(5, 3)
        store.write_pairs(
            np.array([3]), np.array([5]), np.array([9.0]), np.array([9.0])
        )
        assert store.pair_valid(3, 5)
        assert store.pair_valid(5, 3)
        assert store.take(3, 5) == 9.0

    def test_rebuild_carries_two_way_valid_pairs(self):
        store = BlockedPairStore(16, 4, np.float64)
        store.write_pairs(
            np.array([0, 2]), np.array([9, 10]),
            np.array([1.0, 3.0]), np.array([2.0, 4.0]),
        )
        fresh = store.rebuild(np.array([0, 2, 9, 10]), 16)
        # Live sids renumber to their index positions.
        assert fresh.take(0, 2) == 1.0  # old (0, 9)
        assert fresh.take(2, 0) == 2.0
        assert fresh.take(1, 3) == 3.0  # old (2, 10)
        assert fresh.pair_valid(0, 2)
        assert fresh.pair_valid(1, 3)
        assert not fresh.pair_valid(0, 1)

    def test_lru_eviction_under_block_cap(self):
        store = BlockedPairStore(64, 4, np.float64, block_cap=2)
        for i in range(5):
            store.tick()
            sid = np.array([i * 8])
            store.write_pairs(
                sid, sid + 4, np.array([float(i)]), np.array([float(i)])
            )
        assert store.blocks_evicted > 0
        assert store.blocks_resident <= 2 + 2  # soft cap: working set pinned
        # The most recent pair survives; evicted pairs read invalid (and
        # their payoff cells read absent-zero).
        store.tick()
        assert store.pair_valid(32, 36)
        assert not store.pair_valid(0, 4)
        assert store.take(0, 4) == 0.0

    def test_stats_keys(self):
        store = BlockedPairStore(16, 4, np.float64)
        stats = store.stats()
        assert stats["paymat_block"] == 4
        assert stats["paymat_bytes"] > 0
        assert stats["peak_paymat_bytes"] >= stats["paymat_bytes"]
        assert stats["blocks_resident"] == 0
        store.write_pairs(
            np.array([1]), np.array([9]), np.array([3.0]), np.array([4.0])
        )
        stats = store.stats()
        assert stats["blocks_resident"] == 2  # (0,2) and (2,0)
        assert stats["block_fills"] == 2

    @pytest.mark.parametrize("bad", [-1, 2, 3, 6, 12])
    def test_validate_rejects_bad_blocks(self, bad):
        with pytest.raises(ConfigurationError, match="paymat_block"):
            validate_paymat_block(bad)
        with pytest.raises(ConfigurationError, match="paymat_block"):
            EvolutionConfig(paymat_block=bad)


class TestEnsembleParity:
    """Blocked ensemble lanes == dense same-seed serial event runs."""

    def test_well_mixed(self):
        check_blocked_parity(replicate_configs())

    def test_well_mixed_deep_memory(self):
        check_blocked_parity(
            replicate_configs(n=3, memory_steps=3, generations=400)
        )

    def test_ring_graph(self):
        check_blocked_parity(
            replicate_configs(n_ssets=9, structure="ring:k=2")
        )

    def test_smallworld_graph(self):
        check_blocked_parity(
            replicate_configs(
                n=3, n_ssets=12, structure="smallworld:k=4,p=0.3,seed=2"
            )
        )

    def test_eviction_then_refill_mid_run(self):
        # A tight block cap forces mid-run evictions; refills are bit-exact
        # in the deterministic regime, so the trajectory must not move.
        configs = replicate_configs(generations=800, engine_pool_cap=8)
        results, metas = run_ensemble_detailed(configs)
        stats = metas[0]["shared_engine"]
        assert stats["blocks_evicted"] > 0
        for config, result in zip(configs, results):
            dense = config.with_updates(paymat_block=0, engine_pool_cap=0)
            assert_identical(result, run_event_driven(dense))

    def test_graph_ensemble_memory_drop(self):
        # On a sparse-touch topology the blocked store's resident bytes
        # must undercut the dense K x K allocation.
        base = dict(
            n=8, n_ssets=16, generations=1200, structure="ring:k=2",
        )
        _, dense_metas = run_ensemble_detailed(
            replicate_configs(paymat_block=0, **base)
        )
        _, blocked_metas = run_ensemble_detailed(
            replicate_configs(paymat_block=4, **base)
        )
        dense_bytes = dense_metas[0]["shared_engine"]["paymat_bytes"]
        blocked_bytes = blocked_metas[0]["shared_engine"]["paymat_bytes"]
        assert blocked_bytes < dense_bytes
        assert blocked_metas[0]["shared_engine"]["paymat_block"] == 4

    def test_capped_run_bounds_resident_bytes(self):
        configs = replicate_configs(generations=800, engine_pool_cap=8)
        _, metas = run_ensemble_detailed(configs)
        stats = metas[0]["shared_engine"]
        # Soft cap: bounded by cap + the in-flight working set.
        assert stats["blocks_resident"] <= 8 + 8


class TestCoreEngineParity:
    """The per-run event backend under a blocked paymat."""

    @pytest.mark.parametrize("structure", ["well-mixed", "ring:k=2"])
    def test_serial_event_blocked_equals_dense(self, structure):
        blocked = EvolutionConfig(
            memory_steps=2, n_ssets=8, generations=600, rounds=16,
            structure=structure, seed=77, paymat_block=4,
        )
        dense = blocked.with_updates(paymat_block=0)
        assert_identical(
            run_event_driven(blocked), run_event_driven(dense)
        )

    def test_expected_regime_rejects_blocked(self):
        with pytest.raises(ConfigurationError, match="deterministic"):
            FitnessEngine(
                memory_steps=1, rounds=8, expected=True, paymat_block=8
            )
