"""Lane-parity suite: every ensemble lane == the same-seed serial event run.

The lane-batched driver's core contract is that batching is *pure
execution*: for any supported configuration, each lane's trajectory —
every event record (including the float fitness values the Fermi rule
consumed), every snapshot, the final population — is bit-identical to
running that config alone through :func:`repro.core.run_event_driven`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EvolutionConfig
from repro.core.evolution import EvolutionResult, run_event_driven
from repro.ensemble import lane_signature, run_ensemble, run_ensemble_detailed
from repro.errors import ConfigurationError


def assert_identical(ensemble: EvolutionResult, serial: EvolutionResult) -> None:
    """Full trajectory + outcome comparison (bitwise on every float)."""
    assert ensemble.events == serial.events
    assert ensemble.n_pc_events == serial.n_pc_events
    assert ensemble.n_adoptions == serial.n_adoptions
    assert ensemble.n_mutations == serial.n_mutations
    assert ensemble.generations_run == serial.generations_run
    assert np.array_equal(
        ensemble.population.strategy_matrix(),
        serial.population.strategy_matrix(),
    )
    assert [s.adoptions for s in ensemble.population.ssets] == [
        s.adoptions for s in serial.population.ssets
    ]
    assert [s.mutations for s in ensemble.population.ssets] == [
        s.mutations for s in serial.population.ssets
    ]
    assert ensemble.dominant()[1] == serial.dominant()[1]
    assert len(ensemble.snapshots) == len(serial.snapshots)
    for a, b in zip(ensemble.snapshots, serial.snapshots):
        assert a.generation == b.generation
        assert np.array_equal(a.strategy_matrix, b.strategy_matrix)
        assert a.dominant_share == b.dominant_share


def replicate_configs(n: int = 5, **overrides) -> list[EvolutionConfig]:
    base = dict(memory_steps=1, n_ssets=8, generations=500, rounds=16)
    base.update(overrides)
    return [EvolutionConfig(seed=1000 + i, **base) for i in range(n)]


def check_parity(configs: list[EvolutionConfig]) -> None:
    results = run_ensemble(configs)
    for config, result in zip(configs, results):
        assert_identical(result, run_event_driven(config))


class TestDeterministicParity:
    """Shared-engine lanes across memory depths and structures."""

    @pytest.mark.parametrize("memory", [1, 2, 3])
    def test_well_mixed(self, memory):
        check_parity(
            replicate_configs(memory_steps=memory, n_ssets=8, rounds=20)
        )

    @pytest.mark.parametrize("memory", [1, 2, 3])
    def test_ring(self, memory):
        check_parity(
            replicate_configs(
                memory_steps=memory, n_ssets=9, rounds=20,
                structure="ring:k=2",
            )
        )

    def test_grid(self):
        check_parity(
            replicate_configs(memory_steps=2, n_ssets=9,
                              structure="grid:rows=3,cols=3")
        )

    def test_regular(self):
        check_parity(
            replicate_configs(memory_steps=2, n_ssets=10,
                              structure="regular:d=3,seed=4")
        )

    @pytest.mark.parametrize("memory", [1, 2, 3])
    def test_smallworld(self, memory):
        check_parity(
            replicate_configs(
                memory_steps=memory, n_ssets=12, rounds=20,
                structure="smallworld:k=4,p=0.3,seed=2",
            )
        )

    def test_scalefree(self):
        check_parity(
            replicate_configs(memory_steps=2, n_ssets=12,
                              structure="scalefree:m=2,seed=5")
        )

    def test_scalefree_degree_one_nodes(self):
        # m=1 trees have leaves: integers(1) consumes no stream, which the
        # graph raw decoder must mirror (NumPy's rng == 0 special case).
        from repro.structure import build_structure

        assert int(build_structure("scalefree:m=1,seed=2", 10).degrees.min()) == 1
        check_parity(
            replicate_configs(memory_steps=1, n_ssets=10,
                              structure="scalefree:m=1,seed=2")
        )

    def test_non_power_of_two_population(self):
        # Exercises the Lemire rejection fixup path of the raw decoders.
        check_parity(replicate_configs(memory_steps=2, n_ssets=10))

    def test_non_power_of_two_graph(self):
        check_parity(
            replicate_configs(memory_steps=2, n_ssets=15,
                              structure="smallworld:k=2,p=0.5,seed=1")
        )

    def test_complete_graph(self):
        check_parity(
            replicate_configs(memory_steps=1, n_ssets=8, structure="complete")
        )

    def test_tiny_population(self):
        check_parity(replicate_configs(n_ssets=2, generations=300, rounds=8))

    def test_include_self_play(self):
        check_parity(replicate_configs(memory_steps=2, include_self_play=True))

    def test_include_self_play_ring(self):
        check_parity(
            replicate_configs(include_self_play=True, structure="ring:k=2")
        )

    def test_include_self_play_deep_memory_graph(self):
        # memory-3 graphs take the on-demand ensure path incl. the
        # self-play diagonal.
        check_parity(
            replicate_configs(
                n=3, memory_steps=3, n_ssets=9, generations=300,
                include_self_play=True, structure="ring:k=2",
            )
        )

    def test_downhill_learning(self):
        check_parity(replicate_configs(allow_downhill_learning=True))

    def test_snapshots_match(self):
        check_parity(
            replicate_configs(
                memory_steps=2, generations=700, record_every=97
            )
        )

    def test_record_events_off_keeps_counters(self):
        configs = replicate_configs(record_events=False)
        for config, result in zip(configs, run_ensemble(configs)):
            serial = run_event_driven(config)
            assert result.events == [] == serial.events
            assert result.n_pc_events == serial.n_pc_events
            assert result.n_adoptions == serial.n_adoptions
            assert result.n_mutations == serial.n_mutations

    def test_small_batch_size_same_trajectory(self):
        configs = replicate_configs(n=3)
        a = run_ensemble(configs)
        b = run_ensemble(configs, batch_size=64)
        for x, y in zip(a, b):
            assert x.events == y.events

    def test_zero_generations(self):
        configs = replicate_configs(n=2, generations=0)
        for config, result in zip(configs, run_ensemble(configs)):
            assert_identical(result, run_event_driven(config))


class TestPerLaneEvaluatorParity:
    """Expected-fitness / legacy regimes run per-lane evaluators."""

    def test_expected_fitness_noise(self):
        check_parity(
            replicate_configs(
                n=4, generations=300, noise=0.02, expected_fitness=True
            )
        )

    def test_expected_fitness_mixed(self):
        check_parity(
            replicate_configs(
                n=3, n_ssets=6, generations=200, rounds=12,
                mixed_strategies=True, expected_fitness=True,
            )
        )

    def test_expected_fitness_ring(self):
        check_parity(
            replicate_configs(
                n=3, generations=300, noise=0.02, expected_fitness=True,
                structure="ring:k=2",
            )
        )

    def test_legacy_cache(self):
        check_parity(replicate_configs(n=4, generations=300, engine=False))

    def test_custom_interaction_model_falls_back(self):
        """A hand-rolled InteractionModel subclass (no CSR adjacency)
        cannot ride the shared graph fast path; the driver must route it
        through the per-lane generic path and stay serial-identical."""
        from repro.structure import InteractionModel

        class Star(InteractionModel):
            # Hub-and-spokes implemented straight on the abstract API.
            name = "star-test"

            def spec(self):
                return self.name

            def neighbors(self, sset_id):
                self._check_id(sset_id)
                if sset_id == 0:
                    return np.arange(1, self.n_ssets, dtype=np.int64)
                return np.array([0], dtype=np.int64)

            def select_pair(self, rng):
                learner = int(rng.integers(self.n_ssets))
                nbrs = self.neighbors(learner)
                teacher = int(nbrs[int(rng.integers(len(nbrs)))])
                return teacher, learner

            def fitness_of(self, population, sset_id, evaluator,
                           include_self_play=False):
                from repro.core.engine import FitnessEngine

                if isinstance(evaluator, FitnessEngine):
                    return evaluator.fitness_neighbors(
                        population.sid_of(sset_id),
                        population.sids[self.neighbors(sset_id)],
                        include_self_play,
                    )
                me = population[sset_id].strategy
                total = sum(
                    evaluator.payoff_to(me, population[int(j)].strategy)
                    for j in self.neighbors(sset_id)
                )
                if include_self_play:
                    total += evaluator.payoff_to(me, me)
                return total

        star = Star(8)
        configs = [
            EvolutionConfig(memory_steps=1, n_ssets=8, generations=400,
                            rounds=16, structure=star, seed=1000 + i)
            for i in range(3)
        ]
        check_parity(configs)

    def test_non_integer_payoff_falls_back(self):
        from repro.core import PayoffMatrix

        payoff = PayoffMatrix(reward=3.5, sucker=0.0, temptation=4.5,
                              punishment=1.0)
        check_parity(replicate_configs(n=3, generations=300, payoff=payoff))


class TestDriverInterface:
    def test_sampled_stochastic_rejected(self):
        config = EvolutionConfig(noise=0.1, n_ssets=8, generations=100)
        with pytest.raises(ConfigurationError, match="sampled-stochastic"):
            run_ensemble([config])

    def test_bad_batch_size(self):
        with pytest.raises(ConfigurationError, match="batch_size"):
            run_ensemble(replicate_configs(n=1), batch_size=0)

    def test_population_count_mismatch(self):
        with pytest.raises(ConfigurationError, match="initial populations"):
            run_ensemble(replicate_configs(n=2), [None])

    def test_empty(self):
        assert run_ensemble([]) == []

    def test_initial_populations(self):
        from repro.core import Population
        from repro.rng import make_rng

        configs = replicate_configs(n=3)
        pops = [Population.random(c, make_rng(7 + i))
                for i, c in enumerate(configs)]
        import copy

        serial = [
            run_event_driven(c, copy.deepcopy(p))
            for c, p in zip(configs, pops)
        ]
        ensembled = run_ensemble(configs, [copy.deepcopy(p) for p in pops])
        for a, b in zip(ensembled, serial):
            assert_identical(a, b)

    def test_heterogeneous_configs_grouped(self):
        """Different sciences in one call: grouped by signature, each lane
        still serial-identical, results in input order."""
        configs = [
            EvolutionConfig(memory_steps=1, n_ssets=8, generations=400,
                            rounds=16, seed=1),
            EvolutionConfig(memory_steps=2, n_ssets=8, generations=400,
                            rounds=16, seed=2),
            EvolutionConfig(memory_steps=1, n_ssets=8, generations=400,
                            rounds=16, seed=3),
            EvolutionConfig(memory_steps=1, n_ssets=8, generations=400,
                            rounds=16, noise=0.05, expected_fitness=True,
                            seed=4),
        ]
        results = run_ensemble(configs)
        for config, result in zip(configs, results):
            assert result.config is config
            assert_identical(result, run_event_driven(config))

    def test_signature_groups_replicates(self):
        a, b = replicate_configs(n=2)
        assert lane_signature(a) == lane_signature(b)
        assert lane_signature(a) != lane_signature(
            a.with_updates(memory_steps=2)
        )

    def test_detailed_meta(self):
        configs = replicate_configs(n=4)
        results, metas = run_ensemble_detailed(configs)
        assert len(results) == len(metas) == 4
        for meta in metas:
            assert meta["lanes"] == 4
            assert meta["shared_engine"]["lanes"] == 4
            assert meta["shared_engine"]["fills"] > 0
        # expected regime reports no shared engine
        _, metas = run_ensemble_detailed(
            replicate_configs(n=2, generations=200, noise=0.02,
                              expected_fitness=True)
        )
        assert metas[0]["shared_engine"] is None

    def test_cache_counters_match_serial_in_per_lane_mode(self):
        """Per-lane evaluators are the exact serial objects, so even the
        hit/miss counters agree there."""
        configs = replicate_configs(n=3, generations=300, noise=0.02,
                                    expected_fitness=True)
        for config, result in zip(configs, run_ensemble(configs)):
            serial = run_event_driven(config)
            assert result.cache_hits == serial.cache_hits
            assert result.cache_misses == serial.cache_misses
