"""Tests for the discrete-event MPI simulator."""

import pytest

from repro.errors import CommunicationError, DeadlockError
from repro.mpisim import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Irecv,
    Isend,
    Recv,
    Reduce,
    Send,
    Simulator,
    UniformNetwork,
    Wait,
)


def make_sim(n, latency=1e-6, bandwidth=1e9, trace=False):
    return Simulator(n, UniformNetwork(n, latency, bandwidth), trace_events=trace)


class TestCompute:
    def test_compute_advances_clock(self):
        def prog():
            yield Compute(2.5)

        report = make_sim(1).run([prog()])
        assert report.finish_times == [2.5]
        assert report.traces[0].compute_seconds == 2.5

    def test_labels_accumulate(self):
        def prog():
            yield Compute(1.0, label="games")
            yield Compute(0.5, label="games")
            yield Compute(0.25, label="fermi")

        report = make_sim(1).run([prog()])
        assert report.traces[0].compute_by_label == {"games": 1.5, "fermi": 0.25}
        assert report.compute_by_label()["games"] == 1.5

    def test_negative_compute_rejected(self):
        def prog():
            yield Compute(-1.0)

        with pytest.raises(CommunicationError):
            make_sim(1).run([prog()])


class TestPointToPoint:
    def test_send_recv_payload(self):
        def sender():
            yield Send(dest=1, tag=7, nbytes=100, payload={"x": 42})

        def receiver():
            msg = yield Recv(source=0, tag=7)
            assert msg == {"x": 42}

        make_sim(2).run([sender(), receiver()])

    def test_receiver_waits_for_transit(self):
        latency = 1e-3

        def sender():
            yield Compute(1.0)
            yield Send(dest=1, tag=0, nbytes=0)

        def receiver():
            yield Recv(source=0, tag=0)

        report = make_sim(2, latency=latency).run([sender(), receiver()])
        # Receiver finishes after sender's compute + latency.
        assert report.finish_times[1] >= 1.0 + latency
        assert report.traces[1].comm_seconds >= 1.0

    def test_tag_matching(self):
        def sender():
            yield Send(dest=1, tag=1, nbytes=0, payload="one")
            yield Send(dest=1, tag=2, nbytes=0, payload="two")

        def receiver():
            b = yield Recv(source=0, tag=2)
            a = yield Recv(source=0, tag=1)
            assert (a, b) == ("one", "two")

        make_sim(2).run([sender(), receiver()])

    def test_any_source(self):
        def sender(payload):
            def prog():
                yield Send(dest=2, tag=0, nbytes=0, payload=payload)

            return prog()

        received = []

        def receiver():
            for _ in range(2):
                msg = yield Recv(source=ANY_SOURCE, tag=0)
                received.append(msg)

        make_sim(3).run([sender("a"), sender("b"), receiver()])
        assert sorted(received) == ["a", "b"]

    def test_fifo_per_source_same_tag(self):
        def sender():
            yield Send(dest=1, tag=0, nbytes=0, payload=1)
            yield Send(dest=1, tag=0, nbytes=0, payload=2)

        def receiver():
            first = yield Recv(source=0, tag=0)
            second = yield Recv(source=0, tag=0)
            assert (first, second) == (1, 2)

        make_sim(2).run([sender(), receiver()])

    def test_isend_wait(self):
        def sender():
            req = yield Isend(dest=1, tag=0, nbytes=8, payload=3.14)
            yield Compute(1.0)
            yield Wait(req)

        def receiver():
            value = yield Recv(source=0, tag=0)
            assert value == 3.14

        make_sim(2).run([sender(), receiver()])

    def test_irecv_wait(self):
        def sender():
            yield Compute(0.5)
            yield Send(dest=1, tag=0, nbytes=0, payload="late")

        def receiver():
            req = yield Irecv(source=0, tag=0)
            yield Compute(0.1)
            value = yield Wait(req)
            assert value == "late"

        make_sim(2).run([sender(), receiver()])

    def test_send_to_invalid_rank(self):
        def prog():
            yield Send(dest=9, tag=0, nbytes=0)

        with pytest.raises(CommunicationError):
            make_sim(2).run([prog(), iter(())])

    def test_bandwidth_term(self):
        bw = 1e6  # 1 MB/s

        def sender():
            yield Send(dest=1, tag=0, nbytes=1_000_000)

        def receiver():
            yield Recv(source=0, tag=0)

        report = make_sim(2, latency=0.0, bandwidth=bw).run([sender(), receiver()])
        assert report.finish_times[1] == pytest.approx(1.0, rel=1e-6)


class TestCollectives:
    def test_bcast_delivers_root_payload(self):
        def root():
            got = yield Bcast(root=0, nbytes=10, payload="hello")
            assert got == "hello"

        def other():
            got = yield Bcast(root=0, nbytes=10)
            assert got == "hello"

        make_sim(3).run([root(), other(), other()])

    def test_bcast_synchronizes_clocks(self):
        def fast():
            yield Bcast(root=0, nbytes=0, payload=1)

        def slow():
            yield Compute(5.0)
            yield Bcast(root=0, nbytes=0)

        report = make_sim(2).run([fast(), slow()])
        assert report.finish_times[0] == report.finish_times[1]
        assert report.finish_times[0] > 5.0
        # The fast rank's wait is accounted as communication.
        assert report.traces[0].comm_seconds >= 5.0

    def test_gather(self):
        def prog(rank):
            def inner():
                got = yield Gather(root=0, nbytes=8, payload=rank * 10)
                if rank == 0:
                    assert got == [0, 10, 20]
                else:
                    assert got is None

            return inner()

        make_sim(3).run([prog(0), prog(1), prog(2)])

    def test_reduce_sum(self):
        def prog(rank):
            def inner():
                got = yield Reduce(root=1, nbytes=8, payload=rank + 1)
                if rank == 1:
                    assert got == 6

            return inner()

        make_sim(3).run([prog(0), prog(1), prog(2)])

    def test_allreduce_everyone_gets_result(self):
        results = []

        def prog(rank):
            def inner():
                got = yield Allreduce(nbytes=8, payload=rank)
                results.append(got)

            return inner()

        make_sim(4).run([prog(r) for r in range(4)])
        assert results == [6, 6, 6, 6]

    def test_barrier(self):
        def fast():
            yield Barrier()
            yield Compute(1.0)

        def slow():
            yield Compute(3.0)
            yield Barrier()

        report = make_sim(2).run([fast(), slow()])
        assert report.finish_times[0] > 3.0

    def test_mismatched_collectives_rejected(self):
        def a():
            yield Bcast(root=0, nbytes=0)

        def b():
            yield Barrier()

        with pytest.raises(CommunicationError):
            make_sim(2).run([a(), b()])

    def test_sequences_of_collectives(self):
        order = []

        def prog(rank):
            def inner():
                v1 = yield Bcast(root=0, nbytes=0, payload="first" if rank == 0 else None)
                v2 = yield Bcast(root=1, nbytes=0, payload="second" if rank == 1 else None)
                order.append((rank, v1, v2))

            return inner()

        make_sim(2).run([prog(0), prog(1)])
        assert order[0][1:] == ("first", "second")
        assert order[1][1:] == ("first", "second")


class TestDeadlockDetection:
    def test_recv_without_send(self):
        def prog():
            yield Recv(source=0, tag=0)

        def idle():
            yield Compute(1.0)

        with pytest.raises(DeadlockError) as err:
            make_sim(2).run([idle(), prog()])
        assert "rank 1" in str(err.value)

    def test_partial_collective(self):
        def a():
            yield Barrier()

        def b():
            yield Compute(1.0)  # never joins the barrier

        with pytest.raises(DeadlockError) as err:
            make_sim(2).run([a(), b()])
        assert "collective" in str(err.value).lower() or "Barrier" in str(err.value)

    def test_wrong_program_count(self):
        with pytest.raises(CommunicationError):
            make_sim(2).run([iter(())])


class TestTracing:
    def test_events_recorded(self):
        def sender():
            yield Compute(1.0, label="games")
            yield Send(dest=1, tag=0, nbytes=8)

        def receiver():
            yield Recv(source=0, tag=0)

        report = make_sim(2, trace=True).run([sender(), receiver()])
        names = [e[0] for e in report.traces[0].events]
        assert names == ["compute:games", "send"]
        assert [e[0] for e in report.traces[1].events] == ["recv"]

    def test_totals(self):
        def prog(rank):
            def inner():
                yield Compute(1.0)
                yield Barrier()

            return inner()

        report = make_sim(3).run([prog(r) for r in range(3)])
        assert report.total_compute == pytest.approx(3.0)
        assert report.makespan >= 1.0
