"""Tests for the recorder and checkpointing."""

import numpy as np
import pytest

from repro.core import EvolutionConfig, Population, run_event_driven, tft, wsls
from repro.errors import CheckpointError
from repro.io import (
    GenerationRecorder,
    load_population,
    read_records,
    save_population,
)


@pytest.fixture
def result():
    return run_event_driven(
        EvolutionConfig(n_ssets=8, generations=800, rounds=16, seed=13)
    )


class TestRecorder:
    def test_roundtrip_events(self, tmp_path, result):
        path = tmp_path / "run.jsonl"
        with GenerationRecorder(path) as rec:
            rec.record_result(result)
        records = read_records(path)
        events = [r for r in records if r["type"] == "event"]
        assert len(events) == len(result.events)
        assert events[0]["generation"] == result.events[0].generation
        summaries = [r for r in records if r["type"] == "summary"]
        assert len(summaries) == 1
        assert summaries[0]["generation"] == result.generations_run

    def test_requires_context_manager(self, tmp_path, result):
        rec = GenerationRecorder(tmp_path / "x.jsonl")
        with pytest.raises(CheckpointError):
            rec.record_result(result)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_records(tmp_path / "absent.jsonl")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event"}\nnot json\n')
        with pytest.raises(CheckpointError):
            read_records(path)

    def test_creates_parent_dirs(self, tmp_path, result):
        path = tmp_path / "nested" / "deep" / "run.jsonl"
        with GenerationRecorder(path) as rec:
            rec.record_summary(0, "0110", 1.0)
        assert path.exists()


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        pop = Population.from_strategies([wsls(1), tft(1)], agents_per_sset=3)
        path = tmp_path / "pop.npz"
        save_population(pop, path)
        restored = load_population(path)
        assert len(restored) == 2
        assert restored.memory_steps == 1
        np.testing.assert_array_equal(
            restored.strategy_matrix(), pop.strategy_matrix()
        )
        assert restored[0].n_agents == 3

    def test_roundtrip_evolved_population(self, tmp_path, result):
        path = tmp_path / "evolved.npz"
        save_population(result.population, path)
        restored = load_population(path)
        np.testing.assert_array_equal(
            restored.strategy_matrix(), result.population.strategy_matrix()
        )
        # Histogram reconstructed consistently.
        assert (
            restored.dominant_share()[1] == result.population.dominant_share()[1]
        )

    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_population(tmp_path / "absent.npz")

    def test_corrupt_checkpoint(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(CheckpointError):
            load_population(path)

    def test_memory_six_checkpoint(self, tmp_path):
        from repro.core import random_pure
        from repro.rng import make_rng

        rng = make_rng(5)
        pop = Population.from_strategies([random_pure(rng, 6) for _ in range(4)])
        path = tmp_path / "mem6.npz"
        save_population(pop, path)
        restored = load_population(path)
        assert restored.memory_steps == 6
        assert restored.strategy_matrix().shape == (4, 4096)


class TestRunHeader:
    def test_record_result_writes_header_with_structure(self, tmp_path):
        config = EvolutionConfig(
            n_ssets=8, generations=400, rounds=16, seed=13, structure="ring:k=2"
        )
        result = run_event_driven(config)
        path = tmp_path / "run.jsonl"
        with GenerationRecorder(path) as rec:
            rec.record_result(result)
        records = read_records(path)
        headers = [r for r in records if r["type"] == "run"]
        assert len(headers) == 1
        assert records[0] is headers[0]  # header comes first
        assert headers[0]["structure"] == "ring:k=2"
        assert headers[0]["n_ssets"] == 8
        assert headers[0]["seed"] == 13
