"""Checkpoint round-tripping of the population-structure spec."""

import numpy as np
import pytest

from repro.core import Population, tft, wsls
from repro.errors import CheckpointError
from repro.io import load_checkpoint, load_population, save_population


@pytest.fixture
def population():
    return Population.from_strategies([tft(1), wsls(1), tft(1), wsls(1)])


class TestStructureRoundTrip:
    def test_spec_round_trips(self, tmp_path, population):
        path = tmp_path / "pop.npz"
        save_population(population, path, structure="ring:k=2")
        loaded, spec = load_checkpoint(path)
        assert spec == "ring:k=2"
        assert [s.strategy for s in loaded.ssets] == [
            s.strategy for s in population.ssets
        ]

    def test_no_structure_saves_none(self, tmp_path, population):
        path = tmp_path / "pop.npz"
        save_population(population, path)
        _, spec = load_checkpoint(path)
        assert spec is None

    def test_load_population_ignores_structure(self, tmp_path, population):
        path = tmp_path / "pop.npz"
        save_population(population, path, structure="grid:rows=2,cols=2")
        loaded = load_population(path)
        assert len(loaded) == 4

    def test_legacy_checkpoint_without_structure_field(self, tmp_path, population):
        """Pre-structure checkpoints (no 'structure' entry at all) still
        load, reporting no spec — callers treat that as well-mixed."""
        path = tmp_path / "legacy.npz"
        matrix = population.strategy_matrix()
        np.savez_compressed(
            path,
            version=np.int64(1),
            memory_steps=np.int64(population.memory_steps),
            strategy_matrix=matrix,
            n_agents=np.array(
                [s.n_agents for s in population.ssets], dtype=np.int64
            ),
            is_pure=np.bool_(True),
        )
        loaded, spec = load_checkpoint(path)
        assert spec is None
        assert len(loaded) == len(population)

    def test_legacy_resume_defaults_to_well_mixed(self, tmp_path):
        """A legacy (structure-less) checkpoint resumes fine under the
        default well-mixed config but is rejected under a graph config."""
        from repro.api import Simulation
        from repro.core import EvolutionConfig

        config = EvolutionConfig(n_ssets=4, generations=100, seed=1)
        path = tmp_path / "legacy.npz"
        result = Simulation(config).run()
        save_population(result.population, path)  # legacy: no structure

        resumed = Simulation(
            config.with_updates(seed=2), checkpoint_path=path, resume=True
        ).run()
        assert resumed.generations_run == 100

        ring = config.with_updates(structure="ring:k=2")
        with pytest.raises(CheckpointError):
            Simulation(ring, checkpoint_path=path, resume=True).run()

    def test_missing_file_still_errors(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.npz")
