"""Crash-safety sweep: artifacts torn at every byte must never lie.

The contract under test (ISSUE PR 8, satellite 4): a result artifact
truncated at *any* byte boundary — a crash mid-write, a torn disk — must
either load bit-identically (truncation was a no-op) or fail as a clean,
typed miss (:class:`~repro.errors.CheckpointError`), never load wrong
data and never escape as an unrelated exception.  All tearing goes
through the :mod:`repro.faults` corrupt machinery (explicit ``at``
offsets), the same harness the chaos suites arm against a live server.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import faults
from repro.api import run_sweep
from repro.core import EvolutionConfig
from repro.errors import CheckpointError
from repro.io.results_writer import load_result, save_result
from repro.service import ResultStore

CONFIG = EvolutionConfig(n_ssets=8, generations=60, rounds=8, seed=911)

ARTIFACT_FILES = ("population.npz", "events.jsonl", "meta.json")


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One saved artifact plus its parsed form and raw bytes per file."""
    directory = tmp_path_factory.mktemp("pristine") / "run"
    result = run_sweep([CONFIG], backend="ensemble")[0]
    save_result(result, directory)
    raw = {
        name: (directory / name).read_bytes() for name in ARTIFACT_FILES
    }
    return directory, result, raw


def truncate_via_harness(path, offset: int) -> None:
    """Tear ``path`` at ``offset`` through the fault-injection machinery —
    the same corrupt path the armed chaos plans drive in a live server."""
    plan = faults.FaultPlan.from_dict({"faults": [
        {"site": "test.tear", "action": "corrupt", "at": offset},
    ]})
    with faults.armed(plan):
        faults.corrupt_file("test.tear", path)
    assert plan.stats()[0]["triggered"] == 1


def assert_bit_identical(loaded, reference) -> None:
    assert np.array_equal(
        loaded.population.strategy_matrix(),
        reference.population.strategy_matrix(),
    )
    assert loaded.n_pc_events == reference.n_pc_events
    assert loaded.n_adoptions == reference.n_adoptions
    assert loaded.n_mutations == reference.n_mutations
    assert loaded.generations_run == reference.generations_run
    assert len(loaded.events) == len(reference.events)


@pytest.mark.parametrize("name", ARTIFACT_FILES)
def test_every_byte_truncation_loads_identically_or_misses_cleanly(
    name, pristine
):
    directory, result, raw = pristine
    path = directory / name
    size = len(raw[name])
    clean_loads = 0
    for offset in range(size + 1):
        truncate_via_harness(path, offset)
        try:
            loaded = load_result(directory)
        except CheckpointError:
            pass  # a typed, clean miss — the acceptable failure mode
        else:
            # Anything that loads must be the full, bit-identical result.
            assert_bit_identical(loaded, result)
            clean_loads += 1
        finally:
            path.write_bytes(raw[name])  # restore for the next offset
    # Data files are checksummed: only the no-op tear (offset == size)
    # may load.  meta.json is its own completeness marker, so tears that
    # leave semantically complete JSON (e.g. a lost trailing newline) may
    # also load — bit-identically, as asserted above.
    if name == "meta.json":
        assert clean_loads >= 1
    else:
        assert clean_loads == 1
    assert_bit_identical(load_result(directory), result)  # restored intact


def test_missing_meta_is_a_clean_miss_not_corruption(pristine, tmp_path):
    directory, result, raw = pristine
    (directory / "meta.json").unlink()
    try:
        with pytest.raises(CheckpointError, match="no result artifact"):
            load_result(directory, quarantine=True)
        # quarantine=True must NOT quarantine an incomplete artifact: the
        # crash simply happened before meta, and a re-save completes it.
        assert directory.exists()
    finally:
        (directory / "meta.json").write_bytes(raw["meta.json"])
    assert_bit_identical(load_result(directory), result)


class TestCrashMidSave:
    """Raise faults between the writer's stages: every interruption point
    leaves either no meta (clean miss) or a fully verifiable artifact."""

    @pytest.mark.parametrize("stage", ["start", "population", "events"])
    def test_interrupted_save_then_resave_recovers(self, stage, tmp_path):
        result = run_sweep([CONFIG], backend="ensemble")[0]
        directory = tmp_path / "run"
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "io.save_result", "match": {"stage": stage}},
        ]})
        with faults.armed(plan):
            with pytest.raises(Exception):
                save_result(result, directory)
        # meta.json is written last: the interrupted save never produced
        # one, so the load is a clean miss, not a lie.
        with pytest.raises(CheckpointError, match="no result artifact"):
            load_result(directory)
        save_result(result, directory)  # the crash-then-rewrite path
        assert_bit_identical(load_result(directory), result)

    @pytest.mark.parametrize("offset_fraction", [0.0, 0.3, 0.7, 1.0])
    @pytest.mark.parametrize("name", ARTIFACT_FILES)
    def test_fault_injected_save_tears_are_caught(
        self, name, offset_fraction, tmp_path
    ):
        """End-to-end: the corrupt spec fires *inside* save_result."""
        result = run_sweep([CONFIG], backend="ensemble")[0]
        clean = tmp_path / "clean"
        save_result(result, clean)
        size = (clean / name).stat().st_size
        offset = int(size * offset_fraction)
        directory = tmp_path / "torn"
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "io.save_result", "action": "corrupt", "at": offset,
             "match": {"name": name}},
        ]})
        with faults.armed(plan):
            save_result(result, directory)
        if offset == size:
            assert_bit_identical(load_result(directory), result)
        else:
            with pytest.raises(CheckpointError):
                load_result(directory)
            save_result(result, directory)
            assert_bit_identical(load_result(directory), result)


class TestStoreManifest:
    def test_every_byte_manifest_truncation_is_miss_or_identical(
        self, tmp_path
    ):
        store = ResultStore(artifact_dir=tmp_path)
        result = run_sweep([CONFIG], backend="ensemble")[0]
        fingerprint = "f" * 64
        store.put(fingerprint, [result])
        manifest = tmp_path / fingerprint / "manifest.json"
        raw = manifest.read_bytes()
        hits = 0
        for offset in range(len(raw) + 1):
            store.clear()  # force the disk path
            truncate_via_harness(manifest, offset)
            loaded = store.get(fingerprint)
            if loaded is not None:
                assert_bit_identical(loaded[0], result)
                hits += 1
            manifest.write_bytes(raw)
        # Tears that leave complete JSON (the no-op tear, a lost trailing
        # newline) load bit-identically — asserted above; everything
        # shorter was a clean miss.
        assert hits >= 1

    def test_quarantined_run_is_a_miss_and_resave_recovers(self, tmp_path):
        store = ResultStore(artifact_dir=tmp_path)
        result = run_sweep([CONFIG], backend="ensemble")[0]
        fingerprint = "a" * 64
        store.put(fingerprint, [result])
        run_dir = tmp_path / fingerprint / "run-0000"
        events = run_dir / "events.jsonl"
        truncate_via_harness(events, events.stat().st_size // 2)
        store.clear()
        assert store.get(fingerprint) is None  # miss, not a crash
        # The damaged run directory was quarantined out of the load path.
        assert not run_dir.exists()
        assert (tmp_path / fingerprint / "run-0000.corrupt").exists()
        # Re-execution stores afresh over the quarantine remnants.
        store.put(fingerprint, [result])
        store.clear()
        loaded = store.get(fingerprint)
        assert loaded is not None
        assert_bit_identical(loaded[0], result)


def test_save_result_checksums_cover_all_data_files(pristine):
    directory, _, raw = pristine
    meta = json.loads(raw["meta.json"])
    assert set(meta["checksums"]) == {"population.npz", "events.jsonl"}
    assert meta["version"] == 2
