"""Run-state snapshots torn at every byte must never lie.

The durability half of the mid-run checkpointing contract (ISSUE PR 9):
a snapshot truncated at *any* byte boundary — a crash mid-write, a torn
disk — must either load bit-identically or fail as a typed
:class:`~repro.errors.CheckpointError`, never load wrong state and never
escape as an unrelated exception.  On the resume path that typed failure
must degrade gracefully: quarantine the damage, fall back to the previous
snapshot, and finally to a full replay — with the finished run bit-identical
in every case.  Mirrors ``test_results_writer_crashsafety.py``; all tearing
goes through the :mod:`repro.faults` corrupt machinery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.core import EvolutionConfig
from repro.core.evolution import run_serial
from repro.core.runstate import checkpoint_scope
from repro.errors import CheckpointError
from repro.io.run_checkpoint import (
    RunCheckpointer,
    load_run_checkpoint,
    save_run_checkpoint,
)

#: Small on purpose: the every-byte sweep loads the artifact once per byte.
CONFIG = EvolutionConfig(
    n_ssets=8, generations=80, rounds=8, seed=911,
    record_every=40, checkpoint_every=40,
)

SNAPSHOT_FILES = ("state.npz", "meta.json")


def checkpointed_run(config, root, **kwargs):
    checkpointer = RunCheckpointer(root, **kwargs)
    with checkpoint_scope(checkpointer):
        result = run_serial(config)
    return result, checkpointer


def assert_bit_identical(a, b) -> None:
    assert np.array_equal(
        a.population.strategy_matrix(), b.population.strategy_matrix()
    )
    assert a.events == b.events
    assert a.n_pc_events == b.n_pc_events
    assert a.n_adoptions == b.n_adoptions
    assert a.n_mutations == b.n_mutations
    assert a.generations_run == b.generations_run


def assert_same_snapshot(a, b) -> None:
    meta_a, arrays_a = a
    meta_b, arrays_b = b
    assert meta_a == meta_b
    assert set(arrays_a) == set(arrays_b)
    for name in arrays_a:
        assert np.array_equal(arrays_a[name], arrays_b[name]), name


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One mid-run snapshot directory plus its parsed form and raw bytes."""
    root = tmp_path_factory.mktemp("pristine")
    _, checkpointer = checkpointed_run(CONFIG, root)
    (unit_dir,) = [p for p in root.iterdir() if p.name.startswith("unit-")]
    (snapshot,) = sorted(unit_dir.iterdir())
    assert snapshot.name == f"gen-{40:012d}"
    loaded = load_run_checkpoint(snapshot)
    raw = {name: (snapshot / name).read_bytes() for name in SNAPSHOT_FILES}
    return snapshot, loaded, raw


def truncate_via_harness(path, offset: int) -> None:
    """Tear ``path`` at ``offset`` through the fault-injection machinery."""
    plan = faults.FaultPlan.from_dict({"faults": [
        {"site": "test.tear", "action": "corrupt", "at": offset},
    ]})
    with faults.armed(plan):
        faults.corrupt_file("test.tear", path)
    assert plan.stats()[0]["triggered"] == 1


@pytest.mark.parametrize("name", SNAPSHOT_FILES)
def test_every_byte_truncation_loads_identically_or_misses_cleanly(
    name, pristine
):
    snapshot, loaded, raw = pristine
    path = snapshot / name
    size = len(raw[name])
    clean_loads = 0
    for offset in range(size + 1):
        truncate_via_harness(path, offset)
        try:
            torn = load_run_checkpoint(snapshot)
        except CheckpointError:
            pass  # a typed, clean miss — the acceptable failure mode
        else:
            assert_same_snapshot(torn, loaded)
            clean_loads += 1
        finally:
            path.write_bytes(raw[name])  # restore for the next offset
    # state.npz is checksummed: only the no-op tear (offset == size) may
    # load.  meta.json tears that leave semantically complete JSON (e.g.
    # a lost trailing newline) may also load — bit-identically.
    if name == "meta.json":
        assert clean_loads >= 1
    else:
        assert clean_loads == 1
    assert_same_snapshot(load_run_checkpoint(snapshot), loaded)


def test_missing_meta_is_a_clean_miss_not_corruption(pristine):
    snapshot, loaded, raw = pristine
    (snapshot / "meta.json").unlink()
    try:
        with pytest.raises(CheckpointError, match="no run-state checkpoint"):
            load_run_checkpoint(snapshot, quarantine=True)
        # An incomplete snapshot must NOT be quarantined: the crash simply
        # happened before meta, and the next cadence boundary re-saves it.
        assert snapshot.exists()
    finally:
        (snapshot / "meta.json").write_bytes(raw["meta.json"])
    assert_same_snapshot(load_run_checkpoint(snapshot), loaded)


class TestCrashMidSave:
    """Raise faults between the writer's stages: every interruption point
    leaves either no meta (clean miss) or a fully verifiable snapshot."""

    @pytest.mark.parametrize("stage", ["start", "state"])
    def test_interrupted_save_then_resave_recovers(self, stage, pristine,
                                                   tmp_path):
        _, loaded, _ = pristine
        meta, arrays = loaded
        directory = tmp_path / "snap"
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "io.save_checkpoint", "match": {"stage": stage}},
        ]})
        with faults.armed(plan):
            with pytest.raises(Exception):
                save_run_checkpoint(directory, meta, arrays)
        # meta.json is written last: the interrupted save never produced
        # one, so the load is a clean miss, not a lie.
        with pytest.raises(CheckpointError, match="no run-state checkpoint"):
            load_run_checkpoint(directory)
        save_run_checkpoint(directory, meta, arrays)
        assert_same_snapshot(load_run_checkpoint(directory), loaded)

    @pytest.mark.parametrize("offset_fraction", [0.0, 0.3, 0.7, 1.0])
    @pytest.mark.parametrize("name", SNAPSHOT_FILES)
    def test_fault_injected_save_tears_are_caught(
        self, name, offset_fraction, pristine, tmp_path
    ):
        """End-to-end: the corrupt spec fires *inside* save_run_checkpoint."""
        _, loaded, raw = pristine
        meta, arrays = loaded
        size = len(raw[name])
        offset = int(size * offset_fraction)
        directory = tmp_path / "torn"
        plan = faults.FaultPlan.from_dict({"faults": [
            {"site": "io.save_checkpoint", "action": "corrupt",
             "at": offset, "match": {"name": name}},
        ]})
        with faults.armed(plan):
            save_run_checkpoint(directory, meta, arrays)
        if offset == size:
            assert_same_snapshot(load_run_checkpoint(directory), loaded)
        else:
            with pytest.raises(CheckpointError):
                load_run_checkpoint(directory)
            save_run_checkpoint(directory, meta, arrays)
            assert_same_snapshot(load_run_checkpoint(directory), loaded)


class TestCheckpointerRetention:
    def test_keep_prunes_oldest_generations(self, tmp_path):
        config = CONFIG.with_updates(generations=160)
        _, checkpointer = checkpointed_run(config, tmp_path, keep=2)
        unit_dir, = [p for p in tmp_path.iterdir()
                     if p.name.startswith("unit-")]
        # Boundaries 40, 80, 120 were saved; keep=2 leaves the newest two.
        assert sorted(p.name for p in unit_dir.iterdir()) == [
            f"gen-{80:012d}", f"gen-{120:012d}",
        ]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep must be >= 1"):
            RunCheckpointer(tmp_path, keep=0)

    def test_discard_removes_every_snapshot_of_the_unit(self, tmp_path):
        _, checkpointer = checkpointed_run(CONFIG, tmp_path)
        unit_dir, = [p for p in tmp_path.iterdir()
                     if p.name.startswith("unit-")]
        unit = unit_dir.name[len("unit-"):]
        assert checkpointer.load_latest(unit) is not None
        checkpointer.discard(unit)
        assert not unit_dir.exists()
        assert checkpointer.load_latest(unit) is None
        checkpointer.discard(unit)  # idempotent on a missing unit

    def test_load_latest_on_unknown_unit_is_none(self, tmp_path):
        assert RunCheckpointer(tmp_path).load_latest("0" * 12) is None


class TestResumeFallback:
    """The driver-facing walk: newest snapshot torn -> quarantine, fall
    back to the previous one, and finally to a full replay — the finished
    run bit-identical throughout."""

    def test_torn_newest_falls_back_to_previous_snapshot(self, tmp_path):
        config = CONFIG.with_updates(generations=120)
        clean, _ = checkpointed_run(config, tmp_path / "clean")
        root = tmp_path / "torn"
        _, checkpointer = checkpointed_run(config, root)
        unit_dir, = [p for p in root.iterdir()
                     if p.name.startswith("unit-")]
        newest = unit_dir / f"gen-{80:012d}"
        state = newest / "state.npz"
        truncate_via_harness(state, state.stat().st_size // 2)

        with checkpoint_scope(checkpointer):
            resumed = run_serial(config)
        assert resumed.resumed_from_generation == 40
        assert_bit_identical(resumed, clean)
        # The damage was quarantined out of the walk (forensics, not
        # deletion) and the resumed run re-wrote a loadable gen-80.
        assert (unit_dir / f"gen-{80:012d}.corrupt").exists()
        assert load_run_checkpoint(newest)

    def test_all_snapshots_torn_degrades_to_full_replay(self, tmp_path):
        clean = run_serial(CONFIG)
        root = tmp_path / "torn"
        _, checkpointer = checkpointed_run(CONFIG, root)
        unit_dir, = [p for p in root.iterdir()
                     if p.name.startswith("unit-")]
        (snapshot,) = sorted(unit_dir.iterdir())
        truncate_via_harness(snapshot / "meta.json", 3)

        with checkpoint_scope(checkpointer):
            resumed = run_serial(CONFIG)
        assert resumed.resumed_from_generation is None  # full replay
        assert_bit_identical(resumed, clean)
        assert (unit_dir / f"gen-{40:012d}.corrupt").exists()

    def test_quarantine_dirs_survive_retention_pruning(self, tmp_path):
        config = CONFIG.with_updates(generations=200)
        _, checkpointer = checkpointed_run(config, tmp_path)
        unit_dir, = [p for p in tmp_path.iterdir()
                     if p.name.startswith("unit-")]
        # Boundaries 40..160 were saved; keep=2 left 120 and 160.
        assert sorted(p.name for p in unit_dir.iterdir()) == [
            f"gen-{120:012d}", f"gen-{160:012d}",
        ]
        newest = unit_dir / f"gen-{160:012d}"
        truncate_via_harness(newest / "meta.json", 0)
        unit = unit_dir.name[len("unit-"):]
        assert checkpointer.load_latest(unit) is not None  # gen-120 fallback
        corrupt = unit_dir / f"gen-{160:012d}.corrupt"
        assert corrupt.exists()
        # The re-run resumes from 120, re-saves 160, prunes back down to
        # keep=2 — and must never collect the forensic .corrupt directory.
        with checkpoint_scope(checkpointer):
            resumed = run_serial(config)
        assert resumed.resumed_from_generation == 120
        assert corrupt.exists()
        assert sorted(p.name for p in unit_dir.iterdir()) == [
            f"gen-{120:012d}", f"gen-{160:012d}", f"gen-{160:012d}.corrupt",
        ]
