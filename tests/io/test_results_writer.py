"""Tests for whole-result persistence (save_result / load_result)."""

import json

import numpy as np
import pytest

from repro.core import EvolutionConfig, run_event_driven
from repro.errors import CheckpointError
from repro.io import (
    RESULT_FORMAT_VERSION,
    load_result,
    result_to_dict,
    save_result,
)


@pytest.fixture
def result():
    return run_event_driven(
        EvolutionConfig(n_ssets=8, generations=800, rounds=16, seed=13)
    )


class TestResultToDict:
    def test_science_fields(self, result):
        data = result_to_dict(result)
        assert data["config"] == result.config.to_dict()
        assert data["generations_run"] == result.generations_run
        assert data["n_pc_events"] == result.n_pc_events
        assert data["n_events"] == len(result.events)
        strategy, share = result.dominant()
        assert data["dominant"] == {"bits": strategy.bits(), "share": share}

    def test_population_flag(self, result):
        with_pop = result_to_dict(result, include_population=True)
        matrix = np.asarray(with_pop["population"]["strategy_matrix"])
        assert matrix.shape == result.population.strategy_matrix().shape
        assert "population" not in result_to_dict(
            result, include_population=False
        )

    def test_events_flag(self, result):
        data = result_to_dict(result, include_events=True)
        assert len(data["events"]) == len(result.events)
        first = data["events"][0]
        assert first["generation"] == result.events[0].generation
        assert first["kind"] == result.events[0].kind

    def test_json_compatible(self, result):
        json.dumps(result_to_dict(result, include_events=True))


class TestArtifactRoundTrip:
    def test_round_trip(self, tmp_path, result):
        directory = save_result(result, tmp_path / "artifact")
        loaded = load_result(directory)
        assert loaded.config == result.config.with_updates(
            structure=result.config.canonical_structure()
        )
        np.testing.assert_array_equal(
            loaded.population.strategy_matrix(),
            result.population.strategy_matrix(),
        )
        assert len(loaded.events) == len(result.events)
        assert loaded.events[-1].generation == result.events[-1].generation
        assert loaded.n_pc_events == result.n_pc_events
        assert loaded.n_adoptions == result.n_adoptions
        assert loaded.n_mutations == result.n_mutations
        assert loaded.generations_run == result.generations_run

    def test_missing_artifact(self, tmp_path):
        with pytest.raises(CheckpointError, match="no result artifact"):
            load_result(tmp_path / "absent")

    def test_version_mismatch(self, tmp_path, result):
        directory = save_result(result, tmp_path / "artifact")
        meta = json.loads((directory / "meta.json").read_text())
        meta["version"] = RESULT_FORMAT_VERSION + 99
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="version"):
            load_result(directory)

    def test_corrupt_meta(self, tmp_path, result):
        directory = save_result(result, tmp_path / "artifact")
        (directory / "meta.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_result(directory)
