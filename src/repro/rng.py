"""Deterministic random-number-stream management.

The paper's Nature Agent is the single source of randomness for population
dynamics, which is what makes its parallel runs reproducible: every rank sees
the same broadcast decisions.  We mirror that design: a single
:class:`SeedSequenceTree` derives named, independent Philox streams for each
subsystem (nature, game noise, per-rank programs, ...), so that

* the same master seed always produces the same trajectory, and
* changing the decomposition (rank count, thread count) does not change the
  science, because science-relevant draws all come from the ``nature`` stream.

Philox is counter-based, making spawned streams statistically independent.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["SeedSequenceTree", "make_rng", "spawn_rngs"]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a Philox-backed :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Master seed.  ``None`` draws entropy from the OS (non-reproducible).
    """
    return np.random.Generator(np.random.Philox(seed))


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from one master seed."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.Generator(np.random.Philox(c)) for c in children]


class SeedSequenceTree:
    """Named, hierarchical seed derivation.

    Every distinct ``name`` (an iterable of string/int path components) maps
    to a deterministic child seed of the master seed.  Repeated requests for
    the same name return *fresh generators with the same state*, which is what
    tests need to replay a stream.

    Examples
    --------
    >>> tree = SeedSequenceTree(1234)
    >>> nature = tree.generator("nature")
    >>> rank3 = tree.generator("rank", 3)
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The master seed this tree derives from."""
        return self._seed

    def _child_key(self, parts: Iterable[object]) -> tuple[int, ...]:
        # Stable mapping of a name path onto SeedSequence spawn_key integers.
        key: list[int] = []
        for part in parts:
            if isinstance(part, (int, np.integer)):
                key.append(int(part) & 0xFFFFFFFF)
            else:
                # FNV-1a over the utf-8 bytes: stable across runs/processes
                # (unlike hash(), which is salted).
                h = 0x811C9DC5
                for b in str(part).encode("utf-8"):
                    h = ((h ^ b) * 0x01000193) & 0xFFFFFFFF
                key.append(h)
        return tuple(key)

    def seed_sequence(self, *name: object) -> np.random.SeedSequence:
        """Return the derived :class:`~numpy.random.SeedSequence` for ``name``."""
        return np.random.SeedSequence(self._seed, spawn_key=self._child_key(name))

    def generator(self, *name: object) -> np.random.Generator:
        """Return a fresh Philox generator for the named stream."""
        return np.random.Generator(np.random.Philox(self.seed_sequence(*name)))
