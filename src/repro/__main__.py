"""Command-line interface: ``python -m repro <command>`` (or ``repro ...``).

Commands
--------
``list``                      list the registered experiments
``backends``                  list the registered execution backends
``structures``                list the registered population-structure families
``run <id> [--full]``         regenerate one paper table/figure
``run-all [--full]``          regenerate everything
``evolve [options]``          run one evolution and print the outcome
``resume <artifact>``         finish an interrupted run from a mid-run snapshot
``sweep [options]``           run an ensemble of evolutions (process pool)
``serve [options]``           start the sweep service (JSON over HTTP)
``submit [options]``          submit a sweep to a running service
``jobs --url URL``            list a running service's jobs
``result <job-id> --url URL`` fetch a finished job's results
``cancel <job-id> --url URL`` cancel a queued or running job

``serve`` is restart-safe with ``--journal``: admitted jobs are written to
an fsync'd write-ahead log and replayed on the next start, and ``SIGTERM``
triggers a graceful drain (stop admitting, finish running jobs up to
``--drain-timeout``, journal the rest, exit clean).  ``--faults`` (or the
``REPRO_FAULTS`` environment variable) arms a deterministic
fault-injection plan — see :mod:`repro.faults` — which is how the chaos
tests prove all of the above.

Long runs survive interruption with ``--checkpoint-dir``: ``evolve``,
``sweep`` and ``serve`` snapshot full run state every
``--checkpoint-every`` generations (:mod:`repro.core.runstate`), rerunning
the same command resumes **bit-identically** from the newest valid
snapshot, and ``resume <artifact>`` (or ``evolve --resume-from``) pins an
explicit snapshot directory.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path

from .analysis import (
    classify,
    largest_cluster_fraction,
    nearest_classic,
    neighborhood_cooperation,
    render_raster,
)
from .api import Simulation, available_backends, get_backend, run_sweep
from .core import PAPER_MUTATION_RATE, PAPER_PC_RATE, EvolutionConfig
from .experiments import Scale, all_experiments, get, set_default_backend
from .structure import structure_families
from .xp import KNOWN_BACKENDS


def _cmd_list(_args: argparse.Namespace) -> int:
    for exp in all_experiments():
        print(f"{exp.experiment_id:<10} {exp.paper_ref:<22} {exp.title}")
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    for name in available_backends():
        print(f"{name:<14} {get_backend(name).summary}")
    return 0


def _cmd_structures(_args: argparse.Namespace) -> int:
    for name, params in structure_families():
        print(f"{name:<14} {params}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = Scale.FULL if args.full else Scale.SMOKE
    if args.backend is not None:
        set_default_backend(args.backend)
    result = get(args.experiment).run(scale)
    print(result)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    scale = Scale.FULL if args.full else Scale.SMOKE
    if args.backend is not None:
        set_default_backend(args.backend)
    for exp in all_experiments():
        print(exp.run(scale))
        print()
    return 0


def _evolution_config(args: argparse.Namespace, memory: int) -> EvolutionConfig:
    return EvolutionConfig(
        memory_steps=memory,
        n_ssets=args.ssets,
        generations=args.generations,
        rounds=args.rounds,
        pc_rate=args.pc_rate,
        mutation_rate=args.mutation_rate,
        noise=args.noise,
        expected_fitness=args.expected_fitness,
        sampled_batched=args.sampled_batched,
        structure=args.structure,
        record_every=args.record_every,
        seed=args.seed,
        engine=args.engine,
        record_events=args.record_events,
        engine_pool_cap=args.engine_pool_cap,
        paymat_block=args.paymat_block,
        array_backend=args.array_backend,
        checkpoint_every=args.checkpoint_every,
    )


def _backend_opts(args: argparse.Namespace) -> dict[str, object]:
    """Map CLI flags onto the selected backend's options."""
    if args.backend == "multiprocess":
        return {"workers": args.workers if args.workers is not None else 2}
    if args.backend == "des":
        return {"n_ranks": args.ranks}
    return {}


def _load_resume_artifact(path: Path):
    """``(meta, arrays)`` of the snapshot at ``path``, with clear errors.

    Accepts either one snapshot directory (``state.npz`` + ``meta.json``)
    or a unit directory holding ``gen-*`` snapshots (newest loadable one
    wins).  A *file* can only be a version-1 population checkpoint
    (``.npz``) — those hold a final population, not mid-run state, and get
    a :class:`~repro.errors.CheckpointError` pointing at the right flags.
    """
    from .errors import CheckpointError
    from .io.run_checkpoint import load_run_checkpoint

    if path.is_file():
        raise CheckpointError(
            f"{path} is a file — that is a version-1 population checkpoint "
            f"(.npz), which stores a final population, not mid-run state; "
            f"start from it with `repro evolve --checkpoint {path} "
            f"--resume`. Mid-run run-state snapshots are directories "
            f"(state.npz + meta.json) written under --checkpoint-dir"
        )
    generations = sorted(path.glob("gen-*")) if path.is_dir() else []
    if generations and not (path / "meta.json").exists():
        last_error: CheckpointError | None = None
        for candidate in reversed(generations):
            try:
                return load_run_checkpoint(candidate)
            except CheckpointError as err:
                last_error = err
        assert last_error is not None
        raise last_error
    return load_run_checkpoint(path)


class _PinnedSnapshotSink:
    """Checkpoint sink serving one explicit snapshot (``--resume-from``).

    ``load_latest`` ignores the unit key — the caller pinned the artifact,
    and the driver's own resume validation refuses any science mismatch
    with the field-by-field did-you-mean error
    (:func:`repro.core.runstate.validate_resume_config`).  Saves forward
    to a real :class:`~repro.io.run_checkpoint.RunCheckpointer` when
    ``--checkpoint-dir`` is also given, and are dropped otherwise.
    """

    def __init__(self, path: Path, forward=None) -> None:
        self.path = path
        self.forward = forward

    def save(self, unit, generation, meta, arrays) -> None:
        if self.forward is not None:
            self.forward.save(unit, generation, meta, arrays)

    def load_latest(self, unit):
        return _load_resume_artifact(self.path)


def _arm_cli_checkpointing(args: argparse.Namespace):
    """Context manager installing the sink the checkpoint flags ask for."""
    from .core.runstate import checkpoint_scope
    from .io.run_checkpoint import RunCheckpointer

    sink = None
    if getattr(args, "checkpoint_dir", None) is not None:
        sink = RunCheckpointer(args.checkpoint_dir)
    if getattr(args, "resume_from", None) is not None:
        sink = _PinnedSnapshotSink(Path(args.resume_from), forward=sink)
    return checkpoint_scope(sink) if sink is not None else nullcontext()


def _describe_dominant(result) -> str:
    dominant, share = result.dominant()
    name = classify(dominant)
    if name is None and dominant.is_pure:
        near, dist = nearest_classic(dominant)
        name = f"~{near}+{dist}"
    bits = dominant.bits() if dominant.is_pure else "<mixed>"
    return (
        f"dominant: {bits} ({name}) at {share:.1%} "
        f"after {result.generations_run:,} generations "
        f"({result.n_pc_events} PC events, {result.n_mutations} mutations)"
    )


def _cmd_evolve(args: argparse.Namespace) -> int:
    simulation = Simulation(
        _evolution_config(args, args.memory),
        backend=args.backend,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        **_backend_opts(args),
    )
    with _arm_cli_checkpointing(args):
        result = simulation.run()
    print(render_raster(result.population.strategy_matrix(), max_rows=20,
                        title="final population"))
    print()
    print(result.config.summary())
    print(_describe_dominant(result))
    if not result.config.is_well_mixed:
        coop = neighborhood_cooperation(
            result.population, result.config.structure,
            rounds=result.config.rounds, payoff=result.config.payoff,
            noise=result.config.noise,
        )
        cluster = largest_cluster_fraction(
            result.population, result.config.structure
        )
        print(f"neighborhood cooperation: {float(coop.mean()):.1%} mean "
              f"(min {float(coop.min()):.1%}, max {float(coop.max()):.1%}); "
              f"largest dominant cluster: {cluster:.1%} of SSets")
    assert result.backend_report is not None
    print(result.backend_report.summary())
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .core.runstate import checkpoint_scope
    from .errors import CheckpointError
    from .io.run_checkpoint import RunCheckpointer

    artifact = Path(args.artifact)
    # Load eagerly so a missing/corrupt/v1 artifact fails with its clear
    # error before any science starts; the configs come from the snapshot
    # itself, so the drivers' resume validation passes by construction.
    meta, _ = _load_resume_artifact(artifact)
    kind = meta.get("kind")
    forward = (
        RunCheckpointer(args.checkpoint_dir)
        if args.checkpoint_dir is not None
        else None
    )
    sink = _PinnedSnapshotSink(artifact, forward=forward)
    if kind == "run":
        config = EvolutionConfig.from_dict(meta["config"])
        with checkpoint_scope(sink):
            results = [Simulation(config, backend=args.backend).run()]
    elif kind == "ensemble":
        configs = [EvolutionConfig.from_dict(d) for d in meta["configs"]]
        with checkpoint_scope(sink):
            results = run_sweep(configs, backend="ensemble", workers=1)
    else:
        raise CheckpointError(
            f"{artifact}: unrecognised run-state snapshot kind {kind!r} "
            f"(expected 'run' or 'ensemble')"
        )
    for result in results:
        print(result.config.summary())
        print(_describe_dominant(result))
        if result.backend_report is not None:
            print(result.backend_report.summary())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    labels = [
        (memory, run)
        for memory in args.memory_values
        for run in range(args.runs)
    ]
    configs = [_evolution_config(args, memory) for memory, _ in labels]

    def report(index: int, result) -> None:
        memory, run = labels[index]
        seed = result.config.seed
        print(f"[memory={memory} run={run} seed={seed}] "
              f"{_describe_dominant(result)}")

    # --workers always means "processes working for you": the sweep pool in
    # general, or the backend's fitness pool for the multiprocess backend
    # (runs then execute one at a time so counts don't multiply).  Building
    # the instance here keeps backend options clear of run_sweep's own
    # workers= keyword.  The ensemble backend defaults to a single
    # lane-batched process (one shared engine across every replicate);
    # pass --workers explicitly to chunk its lanes over a pool.
    backend = get_backend(args.backend)(**_backend_opts(args))
    if args.backend == "multiprocess":
        pool_workers = 1
    elif args.workers is not None:
        pool_workers = args.workers
    else:
        pool_workers = 1 if args.backend == "ensemble" else 2
    base_seed = args.base_seed if args.base_seed is not None else args.seed
    # Snapshots reach in-process execution only (the sink is thread-local);
    # a pooled sweep runs them without checkpointing.
    with _arm_cli_checkpointing(args):
        run_sweep(
            configs,
            backend=backend,
            workers=pool_workers,
            on_result=report,
            base_seed=base_seed,
        )
    print(f"\n{len(configs)} runs complete "
          f"(backend={args.backend}, workers={pool_workers})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from . import faults
    from .service import JobQueue, ResultStore, SweepServer, WarmEnginePool

    plan = (
        faults.FaultPlan.from_json(args.faults)
        if args.faults
        else faults.FaultPlan.from_env()
    )
    if plan is not None:
        faults.arm(plan)
    store = ResultStore(
        max_entries=args.cache_entries, artifact_dir=args.artifact_dir
    )
    pool = WarmEnginePool() if args.warm_pool else None
    queue = JobQueue(
        workers=args.workers if args.workers is not None else 2,
        max_queued=args.max_queued,
        store=store,
        pool=pool,
        journal=args.journal,
        checkpoint_dir=args.checkpoint_dir,
    )
    server = SweepServer(
        host=args.host, port=args.port, queue=queue, verbose=args.verbose
    )

    draining = threading.Event()

    def _on_sigterm(signum: int, frame: object) -> None:
        # The handler interrupts serve_forever's own thread, so the drain
        # must run elsewhere: shutting the listener down from in here
        # would deadlock on the very loop this handler suspended.
        if draining.is_set():
            return
        draining.set()
        threading.Thread(
            target=server.drain,
            args=(args.drain_timeout,),
            name="sweep-drain",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, _on_sigterm)
    print(f"sweep service listening on {server.url} "
          f"(workers={queue.workers}, max_queued={queue.max_queued}, "
          f"warm_pool={'on' if pool is not None else 'off'}, "
          f"artifacts={args.artifact_dir or 'off'}, "
          f"journal={args.journal or 'off'}, "
          f"checkpoints={args.checkpoint_dir or 'off'})")
    if queue.recovered_total:
        print(f"journal replayed {queue.recovered_total} pending job(s)"
              + (f" ({queue.recovery_errors} unreadable)"
                 if queue.recovery_errors else ""))
    if plan is not None:
        print(f"fault plan armed: {len(plan.specs)} fault spec(s), "
              f"seed={plan.seed}")
    sys.stdout.flush()
    try:
        server.serve_forever()
    finally:
        queue.close()
    if draining.is_set():
        print("drained cleanly; journaled jobs will replay on restart")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import SweepClient

    client = SweepClient(args.url)
    status = client.submit_sweep(
        _evolution_config(args, args.memory),
        n_runs=args.runs,
        base_seed=args.base_seed,
        backend=args.backend,
        priority=args.priority,
        label=args.label,
    )
    job_id = status["job_id"]
    print(f"{job_id} state={status['state']} "
          f"cache_hit={status['cache_hit']} "
          f"fingerprint={status['fingerprint'][:16]}…")
    if not args.wait:
        return 0
    final = client.wait(job_id, timeout=args.timeout)
    if final["state"] == "failed":
        print(f"repro: error: job failed: {final['error']}", file=sys.stderr)
        return 2
    payload = client.result(job_id, population=False)
    for i, run in enumerate(payload["results"]):
        dominant = run["dominant"]
        print(f"[run={i} seed={run['config']['seed']}] "
              f"dominant: {dominant['bits']} at {dominant['share']:.1%} "
              f"after {run['generations_run']:,} generations")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from .service import SweepClient

    for status in SweepClient(args.url).jobs():
        progress = status["progress"]
        print(f"{status['job_id']:<12} {status['state']:<8} "
              f"{status['priority']:<12} "
              f"runs={progress['runs_done']}/{progress['runs_total']} "
              f"cache_hit={status['cache_hit']} "
              f"label={status['label'] or '-'}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from .service import SweepClient

    response = SweepClient(args.url).cancel(args.job_id)
    if response["cancelled"]:
        print(f"{response['job_id']} cancel requested "
              f"(state={response['state']})")
        return 0
    print(f"repro: {response['job_id']} already finished "
          f"(state={response['state']}); nothing to cancel",
          file=sys.stderr)
    return 1


def _cmd_result(args: argparse.Namespace) -> int:
    from .service import SweepClient

    payload = SweepClient(args.url).result(
        args.job_id, population=not args.no_population, events=args.events
    )
    if payload.get("state") != "done":
        print(f"repro: job {args.job_id} is {payload.get('state')!r}; "
              f"poll again later", file=sys.stderr)
        return 1
    if args.json:
        import json as _json

        print(_json.dumps(payload, indent=2))
        return 0
    print(f"{payload['job_id']} cache_hit={payload['cache_hit']} "
          f"runs={len(payload['results'])}")
    for i, run in enumerate(payload["results"]):
        dominant = run["dominant"]
        print(f"[run={i} seed={run['config']['seed']}] "
              f"dominant: {dominant['bits']} at {dominant['share']:.1%} "
              f"after {run['generations_run']:,} generations "
              f"({run['n_pc_events']} PC events, "
              f"{run['n_mutations']} mutations)")
    return 0


def _add_evolution_arguments(parser: argparse.ArgumentParser) -> None:
    """Science flags shared by ``evolve`` and ``sweep``."""
    parser.add_argument("--ssets", type=int, default=128,
                        help="number of Strategy Sets (default 128)")
    parser.add_argument("--generations", type=int, default=100_000)
    parser.add_argument("--rounds", type=int, default=200,
                        help="IPD rounds per game (default 200)")
    parser.add_argument("--pc-rate", type=float, default=PAPER_PC_RATE,
                        dest="pc_rate",
                        help="pairwise-comparison rate (default: paper's 0.1)")
    parser.add_argument("--mutation-rate", type=float,
                        default=PAPER_MUTATION_RATE, dest="mutation_rate",
                        help="mutation rate (default: paper's 0.05)")
    parser.add_argument("--noise", type=float, default=0.0,
                        help="trembling-hand error probability per move")
    parser.add_argument("--expected-fitness", action="store_true",
                        dest="expected_fitness",
                        help="exact expected payoffs (Markov engine) instead "
                             "of sampled games; recommended with --noise")
    parser.add_argument("--sampled-batched", action="store_true",
                        dest="sampled_batched",
                        help="batch sampled-stochastic games (--noise or "
                             "mixed strategies without --expected-fitness) "
                             "into one vectorised kernel per event over a "
                             "dedicated seed stream; unlocks the ensemble "
                             "backend for noisy sweeps. Statistically "
                             "equivalent to the scalar sampled path, not "
                             "bit-identical; bit-reproducible per seed")
    parser.add_argument("--structure", default="well-mixed",
                        help="population structure: well-mixed (default), "
                             "complete, ring:k=4, grid, grid:rows=8,cols=8, "
                             "regular:d=4,seed=7, smallworld:k=4,p=0.1,seed=7, "
                             "or scalefree:m=2,seed=7 (see `repro structures`)")
    parser.add_argument("--record-every", type=int, default=0,
                        dest="record_every",
                        help="snapshot the population every N generations")
    parser.add_argument("--engine", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="dense interned-strategy fitness engine "
                             "(default on; --no-engine forces the legacy "
                             "payoff-cache reference path — trajectories "
                             "are bit-identical either way)")
    parser.add_argument("--record-events", dest="record_events",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="keep per-event records in the result "
                             "(--no-record-events saves memory on very "
                             "long runs; counters are kept regardless)")
    parser.add_argument("--engine-pool-cap", type=int, default=0,
                        dest="engine_pool_cap",
                        help="bound the expected-fitness engine's strategy "
                             "pool: once live+retired strategies reach the "
                             "cap, the oldest retired slot is recycled "
                             "(0 = unbounded, the legacy-mirroring default). "
                             "Under --paymat-block it instead bounds the "
                             "resident payoff blocks (LRU eviction, "
                             "trajectory unchanged)")
    parser.add_argument("--paymat-block", type=int, default=0,
                        dest="paymat_block",
                        help="shard the payoff matrix into NxN blocks "
                             "allocated on demand (power of two >= 4; "
                             "0 = one dense allocation, the default). "
                             "Deterministic regime only; trajectories are "
                             "bit-identical to the dense layout")
    parser.add_argument("--array-backend", choices=list(KNOWN_BACKENDS),
                        default="numpy", dest="array_backend",
                        help="array namespace for hot-path payoff storage "
                             "and fitness gathers (default numpy); an "
                             "unavailable cupy/jax stack falls back to "
                             "numpy and the report records what ran. RNG "
                             "decoding stays on host, so trajectories are "
                             "backend-independent")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        dest="checkpoint_every",
                        help="snapshot full run state every N generations "
                             "(0 = never, the default); with "
                             "--checkpoint-dir an interrupted run resumes "
                             "bit-identically from the newest snapshot")
    parser.add_argument("--seed", type=int, default=2013)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (multiprocess backend / "
                             "sweep; default 2 — except the ensemble "
                             "backend, which lane-batches the whole sweep "
                             "in one process unless told otherwise)")
    parser.add_argument("--ranks", type=int, default=8,
                        help="simulated MPI ranks (des backend)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Evolutionary game dynamics reproduction (IPDPS 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments").set_defaults(
        func=_cmd_list
    )
    sub.add_parser(
        "backends", help="list registered execution backends"
    ).set_defaults(func=_cmd_backends)
    sub.add_parser(
        "structures",
        help="list registered population-structure families and their "
             "spec parameters",
    ).set_defaults(func=_cmd_structures)

    run = sub.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment", help="experiment id, e.g. table6 or fig4")
    run.add_argument("--full", action="store_true", help="paper-scale run")
    # Only serial/event handle the stochastic expected-fitness configs the
    # evolution experiments (fig2) use; the other backends would reject them.
    experiment_backends = ["serial", "event"]
    run.add_argument("--backend", choices=experiment_backends, default=None,
                     help="execution backend for experiments that run "
                          "front-end evolutions (currently fig2); DES-based "
                          "experiments are unaffected")
    run.set_defaults(func=_cmd_run)

    run_all = sub.add_parser("run-all", help="regenerate everything")
    run_all.add_argument("--full", action="store_true")
    run_all.add_argument("--backend", choices=experiment_backends,
                         default=None)
    run_all.set_defaults(func=_cmd_run_all)

    evolve = sub.add_parser("evolve", help="run an evolution")
    evolve.add_argument("--memory", type=int, default=1,
                        help="memory steps n of the strategy model")
    evolve.add_argument("--backend", choices=available_backends(),
                        default="event")
    evolve.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="save the final population to PATH (.npz)")
    evolve.add_argument("--resume", action="store_true",
                        help="start from --checkpoint when the file exists")
    evolve.add_argument("--checkpoint-dir", default=None, dest="checkpoint_dir",
                        metavar="DIR",
                        help="write mid-run run-state snapshots under DIR "
                             "every --checkpoint-every generations; "
                             "rerunning the same command resumes "
                             "bit-identically from the newest one")
    evolve.add_argument("--resume-from", default=None, dest="resume_from",
                        metavar="ARTIFACT",
                        help="resume from an explicit snapshot directory "
                             "(a gen-NNN artifact or its unit directory); "
                             "refused with a field-by-field mismatch "
                             "report if the flags describe different "
                             "science than the snapshot")
    _add_evolution_arguments(evolve)
    evolve.set_defaults(func=_cmd_evolve)

    resume = sub.add_parser(
        "resume",
        help="finish an interrupted run from a mid-run snapshot (the "
             "config comes from the snapshot itself)",
    )
    resume.add_argument("artifact", metavar="ARTIFACT",
                        help="snapshot directory (gen-NNN artifact or its "
                             "unit directory) written by --checkpoint-dir")
    resume.add_argument("--backend", choices=["serial", "event"],
                        default="event",
                        help="driver for single-run snapshots (ensemble "
                             "snapshots always replay on the ensemble "
                             "backend); trajectories are bit-identical "
                             "either way")
    resume.add_argument("--checkpoint-dir", default=None,
                        dest="checkpoint_dir", metavar="DIR",
                        help="keep snapshotting the resumed run under DIR "
                             "at the snapshot config's cadence")
    resume.set_defaults(func=_cmd_resume)

    sweep = sub.add_parser(
        "sweep",
        help="run an ensemble of evolutions (lane-batched with "
             "--backend ensemble; process pool with --workers)",
    )
    sweep.add_argument("--memory", type=int, nargs="+", default=[1],
                       dest="memory_values",
                       help="memory steps to sweep (one or more values)")
    sweep.add_argument("--runs", type=int, default=4,
                       help="replicates per memory value (default 4)")
    sweep.add_argument("--base-seed", type=int, default=None, dest="base_seed",
                       help="master seed every run's seed is derived from "
                            "(default: --seed), so replicates are distinct "
                            "but reproducible")
    sweep.add_argument("--backend", choices=available_backends(),
                       default="event")
    sweep.add_argument("--checkpoint-dir", default=None, dest="checkpoint_dir",
                       metavar="DIR",
                       help="write mid-run run-state snapshots under DIR "
                            "every --checkpoint-every generations "
                            "(in-process sweeps only); rerunning the same "
                            "sweep resumes bit-identically")
    _add_evolution_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="start the sweep service: JSON-over-HTTP job queue with "
             "result caching and warm engine pools",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 = let the OS pick; default 8642)")
    serve.add_argument("--workers", type=int, default=None,
                       help="concurrently executing jobs (default 2)")
    serve.add_argument("--max-queued", type=int, default=64,
                       dest="max_queued",
                       help="waiting-job bound before submissions are "
                            "rejected with 429 (default 64)")
    serve.add_argument("--cache-entries", type=int, default=256,
                       dest="cache_entries",
                       help="in-memory result-cache LRU size (default 256)")
    serve.add_argument("--artifact-dir", default=None, dest="artifact_dir",
                       metavar="DIR",
                       help="also persist results under DIR/<fingerprint>/ "
                            "so cache hits survive restarts")
    serve.add_argument("--warm-pool", action=argparse.BooleanOptionalAction,
                       default=True, dest="warm_pool",
                       help="keep deterministic pair evaluations warm "
                            "across jobs (default on)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="durable job journal (fsync'd JSONL WAL): "
                            "admitted jobs survive crashes and restarts — "
                            "pending work replays from PATH on start")
    serve.add_argument("--checkpoint-dir", default=None,
                       dest="checkpoint_dir", metavar="DIR",
                       help="mid-run run-state snapshots for jobs whose "
                            "configs set checkpoint_every: a replayed or "
                            "retried job resumes bit-identically from its "
                            "newest snapshot instead of recomputing from "
                            "generation zero")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       dest="drain_timeout",
                       help="seconds SIGTERM lets running jobs finish "
                            "before they are cancelled back to the journal "
                            "(default 30)")
    serve.add_argument("--faults", default=None, metavar="PLAN",
                       help="arm a deterministic fault-injection plan: "
                            "inline JSON or @path (also honored from the "
                            "REPRO_FAULTS environment variable); testing "
                            "only — see repro.faults")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a sweep to a running service"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8642",
                        help="service base URL")
    submit.add_argument("--memory", type=int, default=1,
                        help="memory steps n of the strategy model")
    submit.add_argument("--runs", type=int, default=4,
                        help="replicates (seeds derive client-side from "
                             "--base-seed / --seed)")
    submit.add_argument("--base-seed", type=int, default=None,
                        dest="base_seed",
                        help="master seed for replicate derivation "
                             "(default: --seed)")
    submit.add_argument("--backend", choices=available_backends(),
                        default="ensemble")
    submit.add_argument("--priority", choices=["interactive", "batch"],
                        default="batch")
    submit.add_argument("--label", default="", help="free-form job tag")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print each "
                             "run's outcome")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait timeout in seconds (default 600)")
    _add_evolution_arguments(submit)
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser("jobs", help="list a running service's jobs")
    jobs.add_argument("--url", default="http://127.0.0.1:8642")
    jobs.set_defaults(func=_cmd_jobs)

    cancel = sub.add_parser(
        "cancel", help="cancel a queued or running job"
    )
    cancel.add_argument("job_id", metavar="JOB_ID")
    cancel.add_argument("--url", default="http://127.0.0.1:8642")
    cancel.set_defaults(func=_cmd_cancel)

    result = sub.add_parser(
        "result", help="fetch a finished job's results"
    )
    result.add_argument("job_id", metavar="JOB_ID")
    result.add_argument("--url", default="http://127.0.0.1:8642")
    result.add_argument("--events", action="store_true",
                        help="include per-event records in the payload")
    result.add_argument("--no-population", action="store_true",
                        dest="no_population",
                        help="skip final population matrices")
    result.add_argument("--json", action="store_true",
                        help="dump the raw JSON payload")
    result.set_defaults(func=_cmd_result)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse and dispatch; library errors propagate (tests rely on this)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


def cli(argv: list[str] | None = None) -> int:
    """Console entry point: render library errors as clean CLI messages."""
    from .errors import ReproError

    try:
        return main(argv)
    except ReproError as err:
        print(f"repro: error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(cli())
