"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                      list the registered experiments
``run <id> [--full]``         regenerate one paper table/figure
``run-all [--full]``          regenerate everything
``evolve [options]``          run an evolution and print the outcome
"""

from __future__ import annotations

import argparse
import sys

from .analysis import classify, nearest_classic, render_raster
from .core import EvolutionConfig, run_event_driven
from .experiments import Scale, all_experiments, get


def _cmd_list(_args: argparse.Namespace) -> int:
    for exp in all_experiments():
        print(f"{exp.experiment_id:<10} {exp.paper_ref:<22} {exp.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = Scale.FULL if args.full else Scale.SMOKE
    result = get(args.experiment).run(scale)
    print(result)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    scale = Scale.FULL if args.full else Scale.SMOKE
    for exp in all_experiments():
        print(exp.run(scale))
        print()
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    config = EvolutionConfig(
        memory_steps=args.memory,
        n_ssets=args.ssets,
        generations=args.generations,
        rounds=args.rounds,
        noise=args.noise,
        expected_fitness=args.noise > 0,
        seed=args.seed,
    )
    result = run_event_driven(config)
    dominant, share = result.dominant()
    name = classify(dominant)
    if name is None and dominant.is_pure:
        near, dist = nearest_classic(dominant)
        name = f"~{near}+{dist}"
    print(render_raster(result.population.strategy_matrix(), max_rows=20,
                        title="final population"))
    bits = dominant.bits() if dominant.is_pure else "<mixed>"
    print(f"\ndominant: {bits} ({name}) at {share:.1%} "
          f"after {result.generations_run:,} generations "
          f"({result.n_pc_events} PC events, {result.n_mutations} mutations)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Evolutionary game dynamics reproduction (IPDPS 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment", help="experiment id, e.g. table6 or fig4")
    run.add_argument("--full", action="store_true", help="paper-scale run")
    run.set_defaults(func=_cmd_run)

    run_all = sub.add_parser("run-all", help="regenerate everything")
    run_all.add_argument("--full", action="store_true")
    run_all.set_defaults(func=_cmd_run_all)

    evolve = sub.add_parser("evolve", help="run an evolution")
    evolve.add_argument("--memory", type=int, default=1)
    evolve.add_argument("--ssets", type=int, default=128)
    evolve.add_argument("--generations", type=int, default=100_000)
    evolve.add_argument("--rounds", type=int, default=200)
    evolve.add_argument("--noise", type=float, default=0.0)
    evolve.add_argument("--seed", type=int, default=2013)
    evolve.set_defaults(func=_cmd_evolve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
