"""Array-namespace seam: NumPy by default, CuPy/JAX when available.

The ensemble fast path (PR 4/5) already has the shape of an accelerator
program — ``(R, n_ssets)`` sid arrays, dense payoff-matrix gathers, CSR
segment reductions — but every array op was spelled ``np.*``.  This module
is the seam that lets the hot-path containers live on a device namespace
while everything that guards bit parity stays on host:

* :func:`get_array_backend` resolves a requested backend name
  (``"numpy"``, ``"cupy"``, ``"jax"``) to an :class:`ArrayBackend` — the
  namespace module plus the handful of capabilities the engines need
  (``to_device``/``to_host`` transfers and a ``segment_reduce`` that is
  ``np.add.reduceat`` on NumPy and a cumsum-difference on namespaces
  without ``reduceat``).
* A backend whose import fails resolves to the NumPy backend with a
  ``note`` recording why — callers report what was *actually* used
  (:class:`~repro.api.report.BackendReport.array_backend`) instead of
  silently running on host.
* Unknown names raise :class:`~repro.errors.ConfigurationError` — a typo
  should fail, only a missing accelerator stack should fall back.

**Host-side RNG invariant.**  Only payoff storage and fitness gathers go
through the seam.  The Philox raw-stream decoding
(:mod:`repro.ensemble.rawstream`), strategy interning, Fermi decisions and
event bookkeeping stay host NumPy/Python, so every lane consumes the exact
serial RNG stream and stays bit-identical to its same-seed serial ``event``
run regardless of where the matrix lives.  On the NumPy backend the seam
is the identity: the same arrays, the same ops, the same bits — which is
why the golden + lane-parity suites pin it unmodified.

The cumsum-difference ``segment_reduce`` fallback is summation-order
exact for the engines' use because deterministic payoffs are
integer-valued and well under 2**53 in aggregate; non-NumPy backends are
only ever engaged for that integer-exact regime.
"""

from __future__ import annotations

import numpy as np

from .errors import ConfigurationError

__all__ = ["ArrayBackend", "KNOWN_BACKENDS", "get_array_backend"]

#: Backend names :func:`get_array_backend` accepts.
KNOWN_BACKENDS = ("numpy", "cupy", "jax")


class ArrayBackend:
    """One resolved array namespace plus the capabilities the engines use.

    Attributes
    ----------
    requested:
        The name the caller asked for (``config.array_backend`` / the
        ``--array-backend`` flag / the backend option).
    resolved:
        The namespace actually in use — ``requested`` when its import
        succeeded, ``"numpy"`` after a clean fallback.
    xp:
        The array-API-style module (``numpy``, ``cupy`` or ``jax.numpy``).
    note:
        Why ``resolved`` differs from ``requested`` (``None`` when they
        match) — surfaced through reports so a run that silently landed on
        host is visible.
    """

    __slots__ = ("requested", "resolved", "xp", "note")

    def __init__(self, requested: str, resolved: str, xp, note: str | None):
        self.requested = requested
        self.resolved = resolved
        self.xp = xp
        self.note = note

    @property
    def is_numpy(self) -> bool:
        return self.resolved == "numpy"

    def describe(self) -> str:
        """``"numpy"``, or ``"numpy (cupy unavailable: ...)"`` after a
        fallback — the provenance string reports and benchmarks carry."""
        if self.note is None:
            return self.resolved
        return f"{self.resolved} ({self.note})"

    # -- transfers -------------------------------------------------------------

    def to_device(self, array: np.ndarray):
        """Host array -> backend namespace (identity on NumPy)."""
        if self.is_numpy:
            return array
        return self.xp.asarray(array)

    def to_host(self, array) -> np.ndarray:
        """Backend array -> host ``np.ndarray`` (identity on NumPy)."""
        if self.is_numpy:
            return array
        if hasattr(array, "get"):  # CuPy
            return array.get()
        return np.asarray(array)  # JAX (and anything array-API coercible)

    # -- capabilities ----------------------------------------------------------

    def zeros(self, shape, dtype):
        return self.xp.zeros(shape, dtype=dtype)

    def segment_reduce(self, values, seg: np.ndarray):
        """Per-segment sums of ``values`` under CSR offsets ``seg``.

        ``seg`` is the ``(n_segments + 1,)`` host offset array of
        :meth:`~repro.structure.graphs.GraphStructure.neighbor_segments`.
        On NumPy this is exactly the engines' historical
        ``np.add.reduceat(values.astype(np.float64, copy=False), seg[:-1])``
        (bit-identical, reduceat quirks included — the engines never build
        empty segments).  Namespaces without ``reduceat`` use an inclusive
        cumsum difference, exact for the integer-valued payoffs this seam
        serves.
        """
        if self.is_numpy:
            return np.add.reduceat(
                values.astype(np.float64, copy=False), seg[:-1]
            )
        xp = self.xp
        csum = xp.cumsum(values.astype(np.float64), axis=0)
        csum = xp.concatenate((xp.zeros(1, dtype=np.float64), csum))
        offsets = self.to_device(np.asarray(seg, dtype=np.int64))
        return csum[offsets[1:]] - csum[offsets[:-1]]


def _resolve(requested: str) -> ArrayBackend:
    if requested == "numpy":
        return ArrayBackend("numpy", "numpy", np, None)
    if requested == "cupy":
        try:
            import cupy  # noqa: F401 - optional accelerator namespace

            cupy.zeros(1)  # fail here, not mid-run, when no device is usable
            return ArrayBackend("cupy", "cupy", cupy, None)
        except Exception as err:  # ImportError or CUDA runtime failure
            return ArrayBackend(
                "cupy", "numpy", np, f"cupy unavailable: {err}"
            )
    if requested == "jax":
        try:
            import jax.numpy as jnp  # noqa: F401 - optional namespace

            return ArrayBackend("jax", "jax", jnp, None)
        except Exception as err:
            return ArrayBackend("jax", "numpy", np, f"jax unavailable: {err}")
    raise ConfigurationError(
        f"unknown array backend {requested!r}; known: "
        f"{', '.join(KNOWN_BACKENDS)}"
    )


_CACHE: dict[str, ArrayBackend] = {}


def get_array_backend(name: str | None = None) -> ArrayBackend:
    """Resolve ``name`` (default ``"numpy"``) to an :class:`ArrayBackend`.

    Resolution is cached per name: the fallback probe (importing an absent
    CuPy/JAX stack) is paid once per process, not once per engine.
    """
    requested = name or "numpy"
    found = _CACHE.get(requested)
    if found is None:
        found = _resolve(requested)
        _CACHE[requested] = found
    return found
