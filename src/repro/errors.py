"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "StrategyError",
    "DecompositionError",
    "SimulationError",
    "CommunicationError",
    "DeadlockError",
    "MemoryCapacityError",
    "CalibrationError",
    "CheckpointError",
    "ServiceError",
    "QueueFullError",
    "JobNotFoundError",
    "TransientError",
    "JobCancelledError",
    "JobTimeoutError",
    "DrainingError",
    "FaultInjected",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid simulation or machine configuration."""


class StrategyError(ReproError, ValueError):
    """Malformed strategy table (wrong length, values out of range, ...)."""


class DecompositionError(ReproError, ValueError):
    """SSet-to-rank / agent-to-thread decomposition is infeasible."""


class SimulationError(ReproError, RuntimeError):
    """A simulation (serial, parallel, or DES) entered an invalid state."""


class CommunicationError(SimulationError):
    """Mis-matched message passing inside the MPI simulator."""


class DeadlockError(CommunicationError):
    """The MPI simulator detected that no rank can make progress."""


class MemoryCapacityError(ReproError, RuntimeError):
    """The requested configuration does not fit in the modelled machine memory."""


class CalibrationError(ReproError, RuntimeError):
    """Performance-model calibration failed or produced non-physical constants."""


class CheckpointError(ReproError, RuntimeError):
    """Checkpoint file is missing fields or is incompatible with this version."""


class ServiceError(ReproError, RuntimeError):
    """The sweep service rejected a request or hit a server-side failure."""


class QueueFullError(ServiceError):
    """Job queue at capacity — backpressure rejection (HTTP 429)."""


class JobNotFoundError(ServiceError):
    """No job with the requested id (HTTP 404)."""


class TransientError(ReproError, RuntimeError):
    """A failure expected to clear on retry (worker hiccup, flaky backend).

    The sweep service's default :class:`~repro.service.retry.RetryPolicy`
    classifies this class — alongside ``OSError``/``TimeoutError``/
    ``ConnectionError`` — as retryable; raise it from custom backends (or
    inject it through :mod:`repro.faults`) to request another attempt.
    """


class JobCancelledError(ServiceError):
    """A job was cancelled cooperatively (client cancel, drain, or fault)."""


class JobTimeoutError(JobCancelledError):
    """A job exceeded its wall-clock timeout and was cancelled."""


class DrainingError(ServiceError):
    """The service is draining and no longer admits work (HTTP 503)."""


class FaultInjected(ReproError, RuntimeError):
    """Default exception raised by an armed fault-injection site."""
