"""repro — reproduction of Randles et al., IPDPS 2013.

"Massively Parallel Model of Extended Memory Use in Evolutionary Game
Dynamics": memory-n iterated Prisoner's Dilemma populations evolved through
pairwise-comparison learning and mutation, with a multi-level parallel
decomposition (Strategy Sets over MPI ranks, agents over threads)
reproduced on a simulated Blue Gene substrate.

Quickstart
----------
>>> from repro import EvolutionConfig, Simulation
>>> result = Simulation(EvolutionConfig(n_ssets=64, generations=50_000)).run()
>>> strategy, share = result.dominant()

Every execution substrate hides behind the same front-end: pick it with
``Simulation(config, backend=...)`` (``baseline``, ``serial``, ``event``,
``multiprocess``, ``des``, or anything registered through
:func:`repro.api.register_backend`), and batch independent runs with
:func:`run_sweep`.

Package map
-----------
``repro.api``         unified Simulation front-end + backend registry
``repro.core``        the evolutionary model (strategies, games, dynamics)
``repro.ensemble``    lane-batched ensemble engine (whole sweeps as one
                      array program, bit-identical per lane)
``repro.structure``   population structures (well-mixed, ring, grid, ...)
``repro.mpisim``      discrete-event MPI simulator
``repro.machine``     Blue Gene/P, Blue Gene/Q and generic machine models
``repro.framework``   the paper's parallel algorithm on the simulated machine
``repro.perfmodel``   calibrated analytic scaling model (paper-scale runs)
``repro.runtime``     real multiprocessing execution of the science runs
``repro.analysis``    k-means, strategy classification, metrics, heatmaps
``repro.experiments`` regenerates every table and figure of the paper
``repro.io``          generation recorder, checkpoints, result artifacts
``repro.service``     sweep-as-a-service: job queue, result cache, HTTP
                      front door (import explicitly: ``repro.service``)
``repro.faults``      deterministic fault-injection harness (import
                      explicitly: ``from repro import faults``)
"""

from .api import (
    Backend,
    BackendReport,
    Simulation,
    available_backends,
    get_backend,
    register_backend,
    run_sweep,
)
from .structure import (
    InteractionModel,
    available_structures,
    build_structure,
    register_structure,
)
from .core import (
    PAPER_BETA,
    PAPER_MUTATION_RATE,
    PAPER_PAYOFF,
    PAPER_PC_RATE,
    PAPER_ROUNDS,
    EvolutionConfig,
    EvolutionResult,
    GameResult,
    PayoffMatrix,
    Population,
    Strategy,
    all_c,
    all_d,
    grim,
    gtft,
    play_game,
    run_baseline,
    run_event_driven,
    run_serial,
    strategy_space_size,
    tf2t,
    tft,
    wsls,
)
from .ensemble import run_ensemble
from .version import __version__

__all__ = [
    "__version__",
    "Backend",
    "BackendReport",
    "Simulation",
    "available_backends",
    "get_backend",
    "register_backend",
    "run_ensemble",
    "run_sweep",
    "InteractionModel",
    "available_structures",
    "build_structure",
    "register_structure",
    "EvolutionConfig",
    "EvolutionResult",
    "GameResult",
    "PayoffMatrix",
    "Population",
    "Strategy",
    "PAPER_BETA",
    "PAPER_MUTATION_RATE",
    "PAPER_PAYOFF",
    "PAPER_PC_RATE",
    "PAPER_ROUNDS",
    "all_c",
    "all_d",
    "grim",
    "gtft",
    "play_game",
    "run_baseline",
    "run_event_driven",
    "run_serial",
    "strategy_space_size",
    "tf2t",
    "tft",
    "wsls",
]
