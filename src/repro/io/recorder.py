"""Generation recording — the Nature Agent's file I/O.

The paper's Nature Agent "handles all file I/O to record the global
variables across generations".  :class:`GenerationRecorder` writes one JSON
line per population-dynamics event plus periodic summary records, so long
runs can be monitored and post-processed without keeping everything in
memory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from ..core.evolution import EventRecord, EvolutionResult
from ..errors import CheckpointError

__all__ = ["GenerationRecorder", "read_records"]


class GenerationRecorder:
    """Append-only JSONL writer for evolution events and summaries."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: IO[str] | None = None

    def __enter__(self) -> "GenerationRecorder":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _write(self, record: dict) -> None:
        if self._fh is None:
            raise CheckpointError(
                "recorder is not open; use it as a context manager"
            )
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def record_run_header(self, config) -> None:
        """Write the run's science configuration (one header per run).

        Persisting the structure spec makes record files self-describing:
        the per-event source/target ids are only interpretable against the
        interaction graph they were drawn on.
        """
        self._write(
            {
                "type": "run",
                "memory_steps": config.memory_steps,
                "n_ssets": config.n_ssets,
                "generations": config.generations,
                "structure": config.canonical_structure(),
                "seed": config.seed,
            }
        )

    def record_event(self, event: EventRecord) -> None:
        """Write one learning/mutation event."""
        self._write(
            {
                "type": "event",
                "generation": event.generation,
                "kind": event.kind,
                "source": event.source,
                "target": event.target,
                "applied": event.applied,
                "teacher_fitness": event.teacher_fitness,
                "learner_fitness": event.learner_fitness,
            }
        )

    def record_summary(
        self, generation: int, dominant_bits: str, dominant_share: float
    ) -> None:
        """Write a periodic population summary."""
        self._write(
            {
                "type": "summary",
                "generation": generation,
                "dominant": dominant_bits,
                "share": dominant_share,
            }
        )

    def record_result(self, result: EvolutionResult) -> None:
        """Write a full run: header, all events, and the final summary."""
        self.record_run_header(result.config)
        for event in result.events:
            self.record_event(event)
        strategy, share = result.dominant()
        self.record_summary(
            result.generations_run,
            strategy.bits() if strategy.is_pure else "<mixed>",
            share,
        )


def read_records(path: str | Path) -> list[dict]:
    """Read back a recorder file."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no record file at {path}")
    out = []
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise CheckpointError(
                    f"corrupt record at {path}:{line_no}: {err}"
                ) from err
    return out
