"""Run recording and checkpointing (the Nature Agent's file I/O)."""

from .checkpoint import load_checkpoint, load_population, save_population
from .recorder import GenerationRecorder, read_records

__all__ = [
    "load_checkpoint",
    "load_population",
    "save_population",
    "GenerationRecorder",
    "read_records",
]
