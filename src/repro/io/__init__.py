"""Run recording and checkpointing (the Nature Agent's file I/O)."""

from .checkpoint import load_checkpoint, load_population, save_population
from .recorder import GenerationRecorder, read_records
from .results_writer import (
    RESULT_FORMAT_VERSION,
    load_result,
    result_to_dict,
    save_result,
)
from .run_checkpoint import (
    RunCheckpointer,
    load_run_checkpoint,
    save_run_checkpoint,
)

__all__ = [
    "load_checkpoint",
    "load_population",
    "save_population",
    "RunCheckpointer",
    "load_run_checkpoint",
    "save_run_checkpoint",
    "GenerationRecorder",
    "read_records",
    "RESULT_FORMAT_VERSION",
    "result_to_dict",
    "save_result",
    "load_result",
]
