"""Mid-run run-state snapshots as crash-safe artifact directories.

A run-state snapshot (the v2 format of :mod:`repro.core.runstate`: population
state, evaluator state, RNG stream positions, event/snapshot logs, counters)
is one small directory —

``state.npz``
    every array of the capture, compressed;
``meta.json``
    the capture's JSON metadata plus the state file's sha256 checksum.

Crash safety follows :mod:`repro.io.results_writer` exactly: the state file
is written and fsync'd *first* and ``meta.json`` — carrying its checksum —
is laid down last, so its presence marks the snapshot complete.  A crash
mid-save leaves no ``meta.json`` and reads as a clean miss; a torn or
bit-flipped file fails its checksum, raises
:class:`~repro.errors.CheckpointError`, and with ``quarantine=True`` is
renamed ``<name>.corrupt`` first.  The writes double as
:mod:`repro.faults` injection sites (``"io.save_checkpoint"``) for the
torn-write sweeps.

:class:`RunCheckpointer` is the file-backed
:class:`~repro.core.runstate.CheckpointSink`: one directory per resumable
unit (the config hash of :func:`~repro.core.runstate.unit_key`), one
snapshot subdirectory per captured generation, newest-``keep`` retention.
Because every save lands in its *own* generation directory, the previous
snapshot is never overwritten in place — :meth:`RunCheckpointer.load_latest`
walks generations newest-first, quarantines damage, and falls back to the
older snapshot (and finally to a fresh start) instead of failing the run.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from pathlib import Path
from typing import Any

import numpy as np

from .. import faults
from ..errors import CheckpointError
from .results_writer import _quarantine, _sha256_file

__all__ = ["save_run_checkpoint", "load_run_checkpoint", "RunCheckpointer"]

_META = "meta.json"
_STATE = "state.npz"
_GEN_DIR = re.compile(r"gen-(\d+)")


def save_run_checkpoint(
    directory: str | Path,
    meta: dict[str, Any],
    arrays: dict[str, np.ndarray],
) -> Path:
    """Persist one captured run state; returns the snapshot directory.

    State file first (fsync'd), checksummed ``meta.json`` last — the
    completeness marker (see the module docstring).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    # A re-save over an existing snapshot (the same boundary reached again
    # after a resume) must pass through an incomplete state, or a crash
    # between the old meta and the new state file could leave a "complete"
    # snapshot with mismatched contents.
    meta_path = directory / _META
    meta_path.unlink(missing_ok=True)

    faults.check("io.save_checkpoint", stage="start")
    state_path = directory / _STATE
    with state_path.open("wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    faults.check("io.save_checkpoint", stage="state")

    record = dict(meta)
    record["checksums"] = {_STATE: _sha256_file(state_path)}
    with meta_path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    # Corruption points last, after the checksum was taken from the
    # pristine bytes (a tear that lands after the writer finished is
    # exactly what the checksum exists to catch).
    faults.corrupt_file("io.save_checkpoint", state_path, name=_STATE)
    faults.corrupt_file("io.save_checkpoint", meta_path, name=_META)
    return directory


def load_run_checkpoint(
    directory: str | Path, *, quarantine: bool = False
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Load ``(meta, arrays)`` saved by :func:`save_run_checkpoint`.

    A missing ``meta.json`` is an *incomplete* snapshot and raises a plain
    miss; a failed checksum or unparseable file raises corruption, with the
    directory first renamed ``<name>.corrupt`` under ``quarantine=True``.
    The format ``version``/``kind`` fields inside ``meta`` are the
    *drivers'* contract (:mod:`repro.core.runstate`), not verified here.
    """
    directory = Path(directory)
    meta_path = directory / _META
    if not meta_path.exists():
        raise CheckpointError(f"no run-state checkpoint at {directory}")

    def corrupt(detail: str) -> CheckpointError:
        if quarantine:
            moved = _quarantine(directory)
            detail += f" (checkpoint quarantined at {moved})"
        return CheckpointError(
            f"corrupt run-state checkpoint at {directory}: {detail}"
        )

    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as err:
        raise corrupt(f"unreadable {_META}: {err}") from err
    if not isinstance(meta, dict):
        raise corrupt(f"{_META} is not an object")
    checksums = meta.get("checksums")
    if not isinstance(checksums, dict):
        raise corrupt(f"{_META} carries no checksums")
    state_path = directory / _STATE
    if not state_path.exists():
        raise corrupt(f"missing {_STATE}")
    expected = checksums.get(_STATE)
    actual = _sha256_file(state_path)
    if actual != expected:
        raise corrupt(
            f"{_STATE} sha256 mismatch: expected {expected}, got {actual}"
        )
    try:
        with np.load(state_path) as data:
            arrays = {name: data[name] for name in data.files}
    except Exception as err:
        raise corrupt(f"unreadable {_STATE}: {err}") from err
    meta = {k: v for k, v in meta.items() if k != "checksums"}
    return meta, arrays


class RunCheckpointer:
    """File-backed checkpoint sink: ``root/unit-<hash>/gen-<G>/``.

    ``keep`` bounds disk per unit: after each save, older generation
    directories beyond the newest ``keep`` are deleted (quarantined
    ``.corrupt`` directories are never touched — they are somebody's
    forensic evidence, and their names no longer parse as generations).
    """

    def __init__(self, root: str | Path, *, keep: int = 2):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.keep = keep

    def _unit_dir(self, unit: str) -> Path:
        return self.root / f"unit-{unit[:12]}"

    @staticmethod
    def _generations(unit_dir: Path) -> list[tuple[int, Path]]:
        if not unit_dir.is_dir():
            return []
        found = []
        for path in unit_dir.iterdir():
            match = _GEN_DIR.fullmatch(path.name)
            if match is not None and path.is_dir():
                found.append((int(match.group(1)), path))
        return sorted(found)

    def save(
        self,
        unit: str,
        generation: int,
        meta: dict[str, Any],
        arrays: dict[str, np.ndarray],
    ) -> Path:
        unit_dir = self._unit_dir(unit)
        target = save_run_checkpoint(
            unit_dir / f"gen-{generation:012d}", meta, arrays
        )
        for _gen, stale in self._generations(unit_dir)[: -self.keep]:
            shutil.rmtree(stale, ignore_errors=True)
        return target

    def discard(self, unit: str) -> None:
        """Delete every snapshot of ``unit`` (a finished run needs none)."""
        shutil.rmtree(self._unit_dir(unit), ignore_errors=True)

    def load_latest(
        self, unit: str
    ) -> tuple[dict[str, Any], dict[str, np.ndarray]] | None:
        """Newest loadable snapshot for ``unit``, or ``None``.

        Damaged snapshots are quarantined and the walk falls back to the
        next-newest; an exhausted walk is a clean miss (full replay).
        """
        for _gen, path in reversed(self._generations(self._unit_dir(unit))):
            try:
                return load_run_checkpoint(path, quarantine=True)
            except CheckpointError:
                continue
        return None
