"""Whole-result persistence: an :class:`EvolutionResult` as an artifact.

The checkpoint module persists *populations* and the recorder persists
*event streams*; services and batch pipelines need both plus the config and
counters as one self-describing unit.  :func:`save_result` lays a result
down as a small artifact directory reusing those two writers —

``meta.json``
    format version, the config's :meth:`~repro.core.EvolutionConfig.to_dict`
    round-trip, counters, and the dominant-strategy summary.
``population.npz``
    the final population through :func:`~repro.io.checkpoint.save_population`
    (structure spec included, so it resumes like any checkpoint).
``events.jsonl``
    the run's event stream through :class:`~repro.io.recorder.GenerationRecorder`
    (header + events + final summary, the recorder's standard layout).

— and :func:`load_result` re-assembles an :class:`EvolutionResult` from it.
Snapshots and the live ``backend_report`` are *not* persisted (the report's
backend name survives in ``meta.json``); a loaded result is science-complete
(config, population, events, counters) but carries no execution envelope.

:func:`result_to_dict` is the JSON-body form the sweep service returns over
HTTP: the same information as the artifact, inline, with the population
matrix and event list optional so status polls stay small.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..core.config import EvolutionConfig
from ..core.evolution import EventRecord, EvolutionResult
from ..errors import CheckpointError
from .checkpoint import load_population, save_population
from .recorder import GenerationRecorder, read_records

__all__ = [
    "RESULT_FORMAT_VERSION",
    "result_to_dict",
    "save_result",
    "load_result",
]

RESULT_FORMAT_VERSION = 1

_META = "meta.json"
_POPULATION = "population.npz"
_EVENTS = "events.jsonl"


def result_to_dict(
    result: EvolutionResult,
    *,
    include_population: bool = True,
    include_events: bool = False,
) -> dict[str, Any]:
    """JSON-compatible view of a result (the sweep service's wire form).

    ``include_population`` inlines the final strategy matrix (row per SSet);
    ``include_events`` inlines the full event stream — float fitness values
    survive the JSON round-trip bit-exactly (shortest-repr float64), which
    the service's cache-parity tests rely on.
    """
    strategy, share = result.dominant()
    data: dict[str, Any] = {
        "config": result.config.to_dict(),
        "generations_run": result.generations_run,
        "n_pc_events": result.n_pc_events,
        "n_adoptions": result.n_adoptions,
        "n_mutations": result.n_mutations,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "wallclock_seconds": result.wallclock_seconds,
        "dominant": {
            "bits": strategy.bits() if strategy.is_pure else None,
            "share": share,
        },
        "backend": (
            result.backend_report.backend
            if result.backend_report is not None
            else None
        ),
        "n_events": len(result.events),
        "n_snapshots": len(result.snapshots),
    }
    if include_population:
        matrix = result.population.strategy_matrix()
        data["population"] = {
            "memory_steps": result.population.memory_steps,
            "is_pure": matrix.dtype == np.uint8,
            "strategy_matrix": matrix.tolist(),
        }
    if include_events:
        data["events"] = [
            {
                "generation": e.generation,
                "kind": e.kind,
                "source": e.source,
                "target": e.target,
                "applied": e.applied,
                "teacher_fitness": e.teacher_fitness,
                "learner_fitness": e.learner_fitness,
            }
            for e in result.events
        ]
    return data


def save_result(result: EvolutionResult, directory: str | Path) -> Path:
    """Persist ``result`` as an artifact directory; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = result_to_dict(result, include_population=False)
    meta["version"] = RESULT_FORMAT_VERSION
    (directory / _META).write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    save_population(
        result.population,
        directory / _POPULATION,
        structure=result.config.canonical_structure(),
    )
    with GenerationRecorder(directory / _EVENTS) as recorder:
        recorder.record_result(result)
    return directory


def load_result(directory: str | Path) -> EvolutionResult:
    """Re-assemble the :class:`EvolutionResult` saved by :func:`save_result`.

    The loaded result carries the saved config, population, events and
    counters; snapshots and the backend report are not persisted (see the
    module docstring).
    """
    directory = Path(directory)
    meta_path = directory / _META
    if not meta_path.exists():
        raise CheckpointError(f"no result artifact at {directory}")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        raise CheckpointError(
            f"corrupt result meta at {meta_path}: {err}"
        ) from err
    version = meta.get("version")
    if version != RESULT_FORMAT_VERSION:
        raise CheckpointError(
            f"result artifact {directory} has version {version!r}, "
            f"expected {RESULT_FORMAT_VERSION}"
        )
    config = EvolutionConfig.from_dict(meta["config"])
    population = load_population(directory / _POPULATION)
    events = [
        EventRecord(
            generation=int(record["generation"]),
            kind=str(record["kind"]),
            source=int(record["source"]),
            target=int(record["target"]),
            applied=bool(record["applied"]),
            teacher_fitness=float(record["teacher_fitness"]),
            learner_fitness=float(record["learner_fitness"]),
        )
        for record in read_records(directory / _EVENTS)
        if record.get("type") == "event"
    ]
    result = EvolutionResult(config=config, population=population, events=events)
    result.n_pc_events = int(meta["n_pc_events"])
    result.n_adoptions = int(meta["n_adoptions"])
    result.n_mutations = int(meta["n_mutations"])
    result.cache_hits = int(meta["cache_hits"])
    result.cache_misses = int(meta["cache_misses"])
    result.generations_run = int(meta["generations_run"])
    result.wallclock_seconds = float(meta["wallclock_seconds"])
    return result
