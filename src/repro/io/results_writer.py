"""Whole-result persistence: an :class:`EvolutionResult` as an artifact.

The checkpoint module persists *populations* and the recorder persists
*event streams*; services and batch pipelines need both plus the config and
counters as one self-describing unit.  :func:`save_result` lays a result
down as a small artifact directory reusing those two writers —

``meta.json``
    format version, the config's :meth:`~repro.core.EvolutionConfig.to_dict`
    round-trip, counters, and the dominant-strategy summary.
``population.npz``
    the final population through :func:`~repro.io.checkpoint.save_population`
    (structure spec included, so it resumes like any checkpoint).
``events.jsonl``
    the run's event stream through :class:`~repro.io.recorder.GenerationRecorder`
    (header + events + final summary, the recorder's standard layout).

— and :func:`load_result` re-assembles an :class:`EvolutionResult` from it.
Snapshots and the live ``backend_report`` are *not* persisted (the report's
backend name survives in ``meta.json``); a loaded result is science-complete
(config, population, events, counters) but carries no execution envelope.

**Crash safety and integrity** (format version 2): the data files are
written and fsync'd *first* and ``meta.json`` — which carries their sha256
checksums — is written, fsync'd, and laid down *last*, so its presence
marks the artifact complete: a crash mid-save leaves no ``meta.json`` and
reads as a clean miss, never a partial result.  :func:`load_result`
verifies every checksum before parsing; a truncated or bit-flipped file
raises :class:`~repro.errors.CheckpointError`, and with
``quarantine=True`` (how the service's :class:`~repro.service.store.ResultStore`
calls it) the damaged artifact directory is renamed ``<name>.corrupt``
first so it can never be served and the job simply re-executes.  The
writes double as :mod:`repro.faults` injection sites (``"io.save_result"``)
so the crash-safety tests can tear files at chosen byte boundaries.

:func:`result_to_dict` is the JSON-body form the sweep service returns over
HTTP: the same information as the artifact, inline, with the population
matrix and event list optional so status polls stay small.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from .. import faults
from ..core.config import EvolutionConfig
from ..core.evolution import EventRecord, EvolutionResult
from ..errors import CheckpointError
from .checkpoint import load_population, save_population
from .recorder import GenerationRecorder, read_records

__all__ = [
    "RESULT_FORMAT_VERSION",
    "result_to_dict",
    "save_result",
    "load_result",
]

RESULT_FORMAT_VERSION = 2

_META = "meta.json"
_POPULATION = "population.npz"
_EVENTS = "events.jsonl"


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_file(path: Path) -> None:
    """Force ``path``'s bytes to stable storage (write ordering is what
    makes the meta-last completeness marker trustworthy)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def result_to_dict(
    result: EvolutionResult,
    *,
    include_population: bool = True,
    include_events: bool = False,
) -> dict[str, Any]:
    """JSON-compatible view of a result (the sweep service's wire form).

    ``include_population`` inlines the final strategy matrix (row per SSet);
    ``include_events`` inlines the full event stream — float fitness values
    survive the JSON round-trip bit-exactly (shortest-repr float64), which
    the service's cache-parity tests rely on.
    """
    strategy, share = result.dominant()
    data: dict[str, Any] = {
        "config": result.config.to_dict(),
        "generations_run": result.generations_run,
        "n_pc_events": result.n_pc_events,
        "n_adoptions": result.n_adoptions,
        "n_mutations": result.n_mutations,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "wallclock_seconds": result.wallclock_seconds,
        "dominant": {
            "bits": strategy.bits() if strategy.is_pure else None,
            "share": share,
        },
        "backend": (
            result.backend_report.backend
            if result.backend_report is not None
            else None
        ),
        "n_events": len(result.events),
        "n_snapshots": len(result.snapshots),
    }
    if include_population:
        matrix = result.population.strategy_matrix()
        data["population"] = {
            "memory_steps": result.population.memory_steps,
            "is_pure": matrix.dtype == np.uint8,
            "strategy_matrix": matrix.tolist(),
        }
    if include_events:
        data["events"] = [
            {
                "generation": e.generation,
                "kind": e.kind,
                "source": e.source,
                "target": e.target,
                "applied": e.applied,
                "teacher_fitness": e.teacher_fitness,
                "learner_fitness": e.learner_fitness,
            }
            for e in result.events
        ]
    return data


def save_result(result: EvolutionResult, directory: str | Path) -> Path:
    """Persist ``result`` as an artifact directory; returns the directory.

    Data files first (fsync'd), checksummed ``meta.json`` last — the
    completeness marker (see the module docstring).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    # A re-save over an older artifact must pass through an incomplete
    # state, or a crash between the old meta and the new data files could
    # leave a "complete" artifact with mismatched contents.
    meta_path = directory / _META
    meta_path.unlink(missing_ok=True)

    faults.check("io.save_result", stage="start")
    save_population(
        result.population,
        directory / _POPULATION,
        structure=result.config.canonical_structure(),
    )
    _fsync_file(directory / _POPULATION)
    faults.check("io.save_result", stage="population")
    with GenerationRecorder(directory / _EVENTS) as recorder:
        recorder.record_result(result)
    _fsync_file(directory / _EVENTS)
    faults.check("io.save_result", stage="events")

    meta = result_to_dict(result, include_population=False)
    meta["version"] = RESULT_FORMAT_VERSION
    meta["checksums"] = {
        _POPULATION: _sha256_file(directory / _POPULATION),
        _EVENTS: _sha256_file(directory / _EVENTS),
    }
    with meta_path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    # Corruption points last, after the checksums were taken from the
    # pristine bytes: a corrupt spec here simulates a tear that lands
    # *after* the writer finished (torn disk, partial flush at power
    # loss), which is exactly what the checksums exist to catch.
    faults.corrupt_file("io.save_result", directory / _POPULATION,
                        name=_POPULATION)
    faults.corrupt_file("io.save_result", directory / _EVENTS, name=_EVENTS)
    faults.corrupt_file("io.save_result", meta_path, name=_META)
    return directory


def _quarantine(directory: Path) -> Path:
    """Rename a damaged artifact out of the load path (``<name>.corrupt``,
    uniquified) so it can never be served; returns the new location."""
    target = directory.with_name(directory.name + ".corrupt")
    n = 1
    while target.exists():
        target = directory.with_name(f"{directory.name}.corrupt-{n}")
        n += 1
    directory.rename(target)
    return target


def load_result(
    directory: str | Path, *, quarantine: bool = False
) -> EvolutionResult:
    """Re-assemble the :class:`EvolutionResult` saved by :func:`save_result`.

    Every data file's sha256 is verified against ``meta.json`` before
    parsing; corruption raises :class:`~repro.errors.CheckpointError`, and
    with ``quarantine=True`` the damaged artifact is first renamed
    ``<name>.corrupt`` (the sweep service then treats it as a cache miss
    and re-executes instead of crashing or serving a partial result).

    The loaded result carries the saved config, population, events and
    counters; snapshots and the backend report are not persisted (see the
    module docstring).
    """
    directory = Path(directory)
    meta_path = directory / _META
    if not meta_path.exists():
        # Meta is written last: its absence is an *incomplete* artifact
        # (clean miss), not a corrupt one — nothing to quarantine.
        raise CheckpointError(f"no result artifact at {directory}")

    def corrupt(detail: str) -> CheckpointError:
        if quarantine:
            moved = _quarantine(directory)
            detail += f" (artifact quarantined at {moved})"
        return CheckpointError(f"corrupt result artifact at {directory}: {detail}")

    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as err:
        raise corrupt(f"unreadable meta.json: {err}") from err
    version = meta.get("version")
    if version != RESULT_FORMAT_VERSION:
        raise CheckpointError(
            f"result artifact {directory} has version {version!r}, "
            f"expected {RESULT_FORMAT_VERSION}"
        )
    checksums = meta.get("checksums")
    if not isinstance(checksums, dict):
        raise corrupt("meta.json carries no checksums")
    for name in (_POPULATION, _EVENTS):
        path = directory / name
        if not path.exists():
            raise corrupt(f"missing {name}")
        expected = checksums.get(name)
        actual = _sha256_file(path)
        if actual != expected:
            raise corrupt(
                f"{name} sha256 mismatch: expected {expected}, got {actual}"
            )
    try:
        config = EvolutionConfig.from_dict(meta["config"])
        population = load_population(directory / _POPULATION)
        events = [
            EventRecord(
                generation=int(record["generation"]),
                kind=str(record["kind"]),
                source=int(record["source"]),
                target=int(record["target"]),
                applied=bool(record["applied"]),
                teacher_fitness=float(record["teacher_fitness"]),
                learner_fitness=float(record["learner_fitness"]),
            )
            for record in read_records(directory / _EVENTS)
            if record.get("type") == "event"
        ]
    except CheckpointError:
        raise
    except Exception as err:
        # Checksums passed but parsing still failed — a writer bug or an
        # incompatible artifact; surface it as corruption so the service
        # path degrades to a miss instead of a 500.
        raise corrupt(f"unparseable artifact: {err}") from err
    result = EvolutionResult(config=config, population=population, events=events)
    try:
        result.n_pc_events = int(meta["n_pc_events"])
        result.n_adoptions = int(meta["n_adoptions"])
        result.n_mutations = int(meta["n_mutations"])
        result.cache_hits = int(meta["cache_hits"])
        result.cache_misses = int(meta["cache_misses"])
        result.generations_run = int(meta["generations_run"])
        result.wallclock_seconds = float(meta["wallclock_seconds"])
    except (KeyError, TypeError, ValueError) as err:
        raise corrupt(f"meta.json is missing counters: {err}") from err
    return result
