"""Population checkpointing (save / restore evolved populations)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.population import Population
from ..core.strategy import Strategy
from ..errors import CheckpointError

__all__ = ["save_population", "load_population"]

_FORMAT_VERSION = 1


def save_population(population: Population, path: str | Path) -> None:
    """Save a population's strategies and SSet metadata to ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    matrix = population.strategy_matrix()
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        memory_steps=np.int64(population.memory_steps),
        strategy_matrix=matrix,
        n_agents=np.array([s.n_agents for s in population.ssets], dtype=np.int64),
        is_pure=np.bool_(matrix.dtype == np.uint8),
    )


def load_population(path: str | Path) -> Population:
    """Restore a population saved by :func:`save_population`."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        data = np.load(path)
    except Exception as err:  # zipfile/format errors
        raise CheckpointError(f"unreadable checkpoint {path}: {err}") from err
    required = {"version", "memory_steps", "strategy_matrix", "n_agents"}
    missing = required - set(data.files)
    if missing:
        raise CheckpointError(f"checkpoint {path} missing fields: {sorted(missing)}")
    version = int(data["version"])
    if version != _FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version}, expected {_FORMAT_VERSION}"
        )
    memory_steps = int(data["memory_steps"])
    matrix = data["strategy_matrix"]
    n_agents = data["n_agents"]
    if matrix.shape[0] != n_agents.shape[0]:
        raise CheckpointError(
            f"checkpoint {path} inconsistent: {matrix.shape[0]} strategies vs "
            f"{n_agents.shape[0]} SSet records"
        )
    strategies = [Strategy(row, memory_steps) for row in matrix]
    population = Population.from_strategies(strategies)
    for sset, agents in zip(population.ssets, n_agents):
        sset.n_agents = int(agents)
    return population
