"""Population checkpointing (save / restore evolved populations)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.population import Population
from ..core.strategy import Strategy
from ..errors import CheckpointError

__all__ = ["save_population", "load_population", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_population(
    population: Population,
    path: str | Path,
    *,
    structure: str | None = None,
) -> None:
    """Save a population's strategies and SSet metadata to ``.npz``.

    ``structure`` persists the population-structure spec the run executed
    under (canonical form, e.g. ``"ring:k=4"``), so a resumed run can
    verify it continues on the same interaction graph.  Checkpoints written
    before the structure era simply lack the field and load as well-mixed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    matrix = population.strategy_matrix()
    extra: dict[str, np.ndarray] = {}
    if structure is not None:
        extra["structure"] = np.array(structure, dtype=np.str_)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        memory_steps=np.int64(population.memory_steps),
        strategy_matrix=matrix,
        n_agents=np.array([s.n_agents for s in population.ssets], dtype=np.int64),
        is_pure=np.bool_(matrix.dtype == np.uint8),
        **extra,
    )


def load_checkpoint(path: str | Path) -> tuple[Population, str | None]:
    """Restore ``(population, structure_spec)`` from a checkpoint.

    ``structure_spec`` is ``None`` for legacy checkpoints that predate
    population structures (callers treat that as well-mixed).
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        # np.load on an .npz keeps the zip member handles open until the
        # NpzFile is closed; the context manager releases the descriptor
        # even when a validation error fires mid-parse.
        with np.load(path) as data:
            required = {"version", "memory_steps", "strategy_matrix", "n_agents"}
            missing = required - set(data.files)
            if missing:
                raise CheckpointError(
                    f"checkpoint {path} missing fields: {sorted(missing)}"
                )
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise CheckpointError(
                    f"checkpoint {path} has format version {version}; this "
                    f"reader understands population-checkpoint version "
                    f"{_FORMAT_VERSION} (mid-run run-state snapshots are "
                    f"artifact directories — see repro.io.run_checkpoint)"
                )
            memory_steps = int(data["memory_steps"])
            matrix = data["strategy_matrix"]
            n_agents = data["n_agents"]
            structure = (
                str(data["structure"]) if "structure" in data.files else None
            )
    except CheckpointError:
        raise
    except Exception as err:  # zipfile/format errors
        raise CheckpointError(f"unreadable checkpoint {path}: {err}") from err
    if matrix.shape[0] != n_agents.shape[0]:
        raise CheckpointError(
            f"checkpoint {path} inconsistent: {matrix.shape[0]} strategies vs "
            f"{n_agents.shape[0]} SSet records"
        )
    strategies = [Strategy(row, memory_steps) for row in matrix]
    population = Population.from_strategies(strategies)
    for sset, agents in zip(population.ssets, n_agents):
        sset.n_agents = int(agents)
    return population, structure


def load_population(path: str | Path) -> Population:
    """Restore just the population saved by :func:`save_population`."""
    population, _ = load_checkpoint(path)
    return population
