"""Deterministic fault injection: prove failure paths without real failures.

Production hardening is only trustworthy when every failure path is
exercised on purpose.  This module is a seeded, process-wide fault-plan
registry: a :class:`FaultPlan` names *injection sites* (plain strings such
as ``"service.execute"`` or ``"io.save_result"``) that are compiled into
the sweep service, the drivers, and the results writer.  Arming a plan
makes the chosen site deterministically misbehave on its Nth hit —

``raise``
    raise a chosen exception class (default
    :class:`~repro.errors.FaultInjected`; any :mod:`repro.errors` name or
    builtin exception name resolves);
``delay``
    sleep ``delay`` seconds before continuing (hang simulation — pair with
    job timeouts);
``cancel``
    raise :class:`~repro.errors.JobCancelledError`, killing the in-flight
    job the way a cooperative cancel does;
``corrupt``
    truncate or bit-flip bytes of a just-written file (only honoured by
    :func:`corrupt_file` sites, e.g. the results writer's artifacts).

Sites match on their name plus optional context equality (``match={"name":
"meta.json"}`` hits only the meta write; ``match={"attempt": 1}`` fails
only a job's first attempt).  Hit counting is per spec and thread-safe;
``after`` skips the first N matching hits and ``times`` bounds how many
trigger (``None`` = every one).  Everything a spec does is a pure function
of the plan (plus its ``seed``, which drives corruption offsets when
``at`` is omitted), so an injected failure reproduces exactly — the test
suites rely on this.

**Zero overhead when disarmed**: the process-wide plan is one module
global; :func:`check` returns after a single ``None`` test, and hot loops
can lift even that out with :func:`hook` (returns ``None`` unless an armed
plan names the site, mirroring the progress-callback seam).

Arming::

    from repro import faults

    plan = faults.FaultPlan.from_dict({
        "seed": 7,
        "faults": [
            {"site": "service.execute", "action": "raise",
             "exception": "TransientError", "match": {"attempt": 1}},
        ],
    })
    with faults.armed(plan):
        ...

or, for subprocesses (``repro serve`` reads this at startup), export
``REPRO_FAULTS`` with the same JSON (or ``@/path/to/plan.json``).
"""

from __future__ import annotations

import builtins
import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from . import errors
from .errors import ConfigurationError, FaultInjected, JobCancelledError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "ACTIONS",
    "arm",
    "disarm",
    "armed",
    "active",
    "check",
    "hook",
    "corrupt_file",
    "ENV_VAR",
]

ACTIONS = ("raise", "delay", "cancel", "corrupt")
_CORRUPT_MODES = ("truncate", "flip")

#: Environment variable ``repro serve`` (and anything else that calls
#: :func:`arm_from_env`) reads a plan from: inline JSON, or ``@path``.
ENV_VAR = "REPRO_FAULTS"


def _resolve_exception(name: str) -> type[BaseException]:
    """Map an exception name to a class: :mod:`repro.errors` first, then
    builtins — so plans written as JSON can raise anything tests need."""
    cls = getattr(errors, name, None)
    if cls is None:
        cls = getattr(builtins, name, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        raise ConfigurationError(
            f"fault exception {name!r} is not a repro.errors or builtin "
            "exception class"
        )
    return cls


class FaultSpec:
    """One injection rule: where, what, and on which hits (see module doc)."""

    def __init__(
        self,
        site: str,
        action: str = "raise",
        *,
        exception: str = "FaultInjected",
        message: str = "",
        delay: float = 0.0,
        mode: str = "truncate",
        at: int | None = None,
        after: int = 0,
        times: int | None = 1,
        match: Mapping[str, Any] | None = None,
    ) -> None:
        if not isinstance(site, str) or not site:
            raise ConfigurationError(f"fault site must be a string, got {site!r}")
        if action not in ACTIONS:
            raise ConfigurationError(
                f"fault action {action!r} not in {ACTIONS}"
            )
        if action == "corrupt" and mode not in _CORRUPT_MODES:
            raise ConfigurationError(
                f"corrupt mode {mode!r} not in {_CORRUPT_MODES}"
            )
        if after < 0:
            raise ConfigurationError(f"after must be >= 0, got {after}")
        if times is not None and times < 1:
            raise ConfigurationError(
                f"times must be >= 1 or null (unlimited), got {times}"
            )
        _resolve_exception(exception)  # fail fast on unknown names
        self.site = site
        self.action = action
        self.exception = exception
        self.message = message
        self.delay = float(delay)
        self.mode = mode
        self.at = at
        self.after = after
        self.times = times
        self.match = dict(match or {})
        # Hit accounting (mutated under the owning plan's lock).
        self.hits = 0
        self.triggered = 0

    def matches(self, context: Mapping[str, Any]) -> bool:
        return all(context.get(k) == v for k, v in self.match.items())

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"site": self.site, "action": self.action}
        if self.action == "raise":
            data["exception"] = self.exception
        if self.message:
            data["message"] = self.message
        if self.action == "delay":
            data["delay"] = self.delay
        if self.action == "corrupt":
            data["mode"] = self.mode
            if self.at is not None:
                data["at"] = self.at
        if self.after:
            data["after"] = self.after
        if self.times != 1:
            data["times"] = self.times
        if self.match:
            data["match"] = dict(self.match)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault spec must be a mapping, got {type(data).__name__}"
            )
        known = {
            "site", "action", "exception", "message", "delay", "mode",
            "at", "after", "times", "match",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec field(s): {', '.join(unknown)}"
            )
        return cls(
            data.get("site", ""),
            data.get("action", "raise"),
            exception=data.get("exception", "FaultInjected"),
            message=data.get("message", ""),
            delay=data.get("delay", 0.0),
            mode=data.get("mode", "truncate"),
            at=data.get("at"),
            after=data.get("after", 0),
            times=data.get("times", 1),
            match=data.get("match"),
        )


class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules plus their hit counters."""

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._sites = {spec.site for spec in self.specs}

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fault plan must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"seed", "faults"})
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan field(s): {', '.join(unknown)}"
            )
        raw = data.get("faults", [])
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ConfigurationError("fault plan 'faults' must be a list")
        return cls(
            [FaultSpec.from_dict(d) for d in raw], seed=data.get("seed", 0)
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from inline JSON, or ``@path`` / a file path."""
        text = text.strip()
        if text.startswith("@"):
            text = Path(text[1:]).read_text(encoding="utf-8")
        elif not text.startswith("{"):
            text = Path(text).read_text(encoding="utf-8")
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as err:
            raise ConfigurationError(f"fault plan is not valid JSON: {err}")

    @classmethod
    def from_env(cls, name: str = ENV_VAR) -> "FaultPlan | None":
        """The plan named by environment variable ``name``, or ``None``."""
        raw = os.environ.get(name, "").strip()
        if not raw:
            return None
        return cls.from_json(raw)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    # -- matching --------------------------------------------------------------

    def names_site(self, site: str) -> bool:
        return site in self._sites

    def _fire(
        self, site: str, context: Mapping[str, Any], want_corrupt: bool
    ) -> FaultSpec | None:
        """Count a hit at ``site`` and return the spec that triggers, if any.

        ``want_corrupt`` selects between :func:`check` semantics (corrupt
        specs never trigger — they need a file) and :func:`corrupt_file`
        semantics (only corrupt specs trigger).
        """
        with self._lock:
            for spec in self.specs:
                if spec.site != site or not spec.matches(context):
                    continue
                if (spec.action == "corrupt") != want_corrupt:
                    continue
                spec.hits += 1
                order = spec.hits  # 1-based index among matching hits
                if order <= spec.after:
                    continue
                if spec.times is not None and (
                    order > spec.after + spec.times
                ):
                    continue
                spec.triggered += 1
                return spec
        return None

    def corrupt_offset(self, spec: FaultSpec, size: int) -> int:
        """Deterministic byte offset for a corrupt spec: explicit ``at``
        when given, else seeded from (plan seed, site, trigger ordinal)."""
        if size <= 0:
            return 0
        if spec.at is not None:
            return min(max(spec.at, 0), size - 1 if spec.mode == "flip" else size)
        digest = hashlib.sha256(
            f"{self.seed}:{spec.site}:{spec.triggered}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % size

    def stats(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                {
                    "site": spec.site,
                    "action": spec.action,
                    "hits": spec.hits,
                    "triggered": spec.triggered,
                }
                for spec in self.specs
            ]


#: The process-wide armed plan (None = fault injection fully disabled).
_PLAN: FaultPlan | None = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide (replacing any armed plan); returns it."""
    global _PLAN
    _PLAN = plan
    return plan


def disarm() -> None:
    global _PLAN
    _PLAN = None


def active() -> FaultPlan | None:
    return _PLAN


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the block, restoring the previous plan after."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def _execute(spec: FaultSpec, site: str) -> None:
    message = spec.message or f"injected fault at {site!r}"
    if spec.action == "delay":
        time.sleep(spec.delay)
        return
    if spec.action == "cancel":
        raise JobCancelledError(message)
    raise _resolve_exception(spec.exception)(message)


def check(site: str, **context: Any) -> None:
    """Injection point: no-op unless an armed plan triggers at ``site``.

    Raises the spec's exception (``raise``/``cancel``) or sleeps
    (``delay``).  The disarmed cost is one global read.
    """
    plan = _PLAN
    if plan is None:
        return
    spec = plan._fire(site, context, want_corrupt=False)
    if spec is not None:
        _execute(spec, site)


def hook(site: str) -> Callable[..., None] | None:
    """A bound check for hot loops: ``None`` unless an armed plan names
    ``site`` — drivers lift the disarmed test out of their event loops
    exactly like the progress-callback seam."""
    plan = _PLAN
    if plan is None or not plan.names_site(site):
        return None

    def bound_check(**context: Any) -> None:
        spec = plan._fire(site, context, want_corrupt=False)
        if spec is not None:
            _execute(spec, site)

    return bound_check


def corrupt_file(site: str, path: str | Path, **context: Any) -> None:
    """Corruption point: truncate or bit-flip ``path`` when a corrupt spec
    triggers at ``site`` (writers call this right after laying a file down,
    so tests can tear artifacts at chosen byte boundaries)."""
    plan = _PLAN
    if plan is None:
        return
    spec = plan._fire(site, context, want_corrupt=True)
    if spec is None:
        return
    path = Path(path)
    size = path.stat().st_size
    offset = plan.corrupt_offset(spec, size)
    if spec.mode == "truncate":
        with path.open("rb+") as fh:
            fh.truncate(offset)
    else:  # flip
        if size == 0:
            return
        with path.open("rb+") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
