"""Sweep-as-a-service: job specs, queue, result cache, HTTP server, client.

This package turns the library's :func:`~repro.api.run_sweep` into a
long-lived service (the paper's "production-scale screening" posture):

* :class:`JobSpec` — canonical, fingerprinted description of a sweep
  (:mod:`repro.service.jobspec`);
* :class:`JobQueue` — asyncio priority queue with bounded workers,
  backpressure, coalescing, live progress, retries, timeouts,
  cancellation, and graceful drain (:mod:`repro.service.queue`);
* :class:`JobJournal` — fsync'd JSONL write-ahead log of admissions; a
  restarted queue replays pending jobs (:mod:`repro.service.journal`);
* :class:`RetryPolicy` — per-job transient-failure retries with
  exponential backoff and deterministic jitter
  (:mod:`repro.service.retry`);
* :class:`ResultStore` — fingerprint-keyed LRU + optional disk artifacts
  (:mod:`repro.service.store`);
* :class:`WarmEnginePool` — server-lifetime deterministic pair cache
  (:mod:`repro.service.pools`);
* :class:`SweepServer` / :class:`SweepClient` — stdlib JSON-over-HTTP
  front door and client (:mod:`repro.service.server` / ``.client``).

Everything is stdlib + numpy; no new dependencies.
"""

from .client import SweepClient
from .jobspec import PRIORITIES, SPEC_FORMAT_VERSION, JobSpec
from .journal import JobJournal
from .pools import WarmEnginePool
from .queue import Job, JobQueue, JobState
from .retry import RetryPolicy
from .server import SweepServer
from .store import ResultStore

__all__ = [
    "JobSpec",
    "PRIORITIES",
    "SPEC_FORMAT_VERSION",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "ResultStore",
    "RetryPolicy",
    "WarmEnginePool",
    "SweepServer",
    "SweepClient",
]
