"""Async job queue: priority scheduling, backpressure, durability, retries.

The queue is the service's execution heart.  An :mod:`asyncio` event loop
(own daemon thread) runs one scheduler coroutine that admits jobs into a
bounded worker pool:

* **priority classes** — ``interactive`` jobs jump every queued ``batch``
  job (FIFO within a class): a million small queries coexist with big
  ensembles without head-of-line blocking.
* **backpressure** — at most ``max_queued`` jobs wait; past that,
  :meth:`submit` raises :class:`~repro.errors.QueueFullError`, which the
  HTTP front door maps to ``429`` (now with ``Retry-After``) so callers
  retry with backoff instead of piling work onto a drowning server.
* **result caching** — a submission whose fingerprint is already in the
  :class:`~repro.service.store.ResultStore` completes instantly
  (``cache_hit``), returning the stored — bit-identical — results.
* **coalescing** — a submission whose fingerprint matches a job currently
  queued or running attaches to it instead of executing twice; followers
  resolve the moment the leader finishes.
* **streaming progress** — each run's generation counter and partial
  event counters are updated live through
  :func:`~repro.core.progress.progress_scope` (the driver-level hooks),
  pollable via :meth:`Job.status_dict` while the job runs.

Fault tolerance (PR 8) adds four guarantees on top:

* **durability** — with a ``journal`` path, every admission is written to
  an fsync'd JSONL WAL (:class:`~repro.service.journal.JobJournal`)
  *before* it becomes visible; on restart the journal replays and every
  queued or in-flight job is re-admitted.  A crash loses nothing, and
  results stay bit-identical because job fingerprints pin the science.
* **retries** — a :class:`~repro.service.retry.RetryPolicy` on the spec
  re-attempts transient failures with exponential backoff and
  deterministic jitter; permanent errors (bad configs, bugs) fail fast.
* **timeout / cancel** — ``spec.timeout`` arms a wall-clock deadline and
  :meth:`cancel` serves ``DELETE /jobs/<id>``; both act through one
  :class:`~repro.core.progress.CancelToken` per job that the drivers
  check cooperatively at progress-tick cadence, so a hung or unwanted job
  aborts within one event generation and frees its worker slot.
* **graceful drain** — :meth:`drain` stops admissions, lets running jobs
  finish up to a deadline, cancels stragglers *without* terminal journal
  records (they replay on restart alongside the still-queued backlog),
  and leaves the queue ready for a clean :meth:`close`.

Mid-run checkpointing (PR 9) shrinks the replay cost of all of the above:
with a ``checkpoint_dir``, jobs whose configs set ``checkpoint_every``
snapshot their full run state at that cadence
(:mod:`repro.core.runstate` via :class:`~repro.io.run_checkpoint.RunCheckpointer`),
each save leaves a non-terminal ``checkpoint`` record in the journal, and
a replayed or retried job resumes **bit-identically** from its newest
valid snapshot — same events, same trajectory, same payload — instead of
recomputing from generation zero.  Successful jobs discard their
snapshots; corrupt ones quarantine and fall back (older snapshot, then
full replay).

Jobs execute through :func:`repro.api.run_sweep` in executor threads —
the actual science path is exactly the library one, warm engine pools
(:mod:`repro.service.pools`) included.  Fault-injection sites
(``"service.execute"``, ``"service.journal"``) are compiled in so every
path above is provable with :mod:`repro.faults` instead of luck.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import threading
import time
import traceback
from collections import OrderedDict
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .. import faults
from ..api.backends import get_backend
from ..api.sweep import run_sweep
from ..core.evolution import EvolutionResult
from ..core.progress import CancelToken, ProgressTick, cancel_scope, progress_scope
from ..core.runstate import checkpoint_scope
from ..errors import (
    ConfigurationError,
    DrainingError,
    JobCancelledError,
    JobNotFoundError,
    JobTimeoutError,
    QueueFullError,
    ReproError,
    ServiceError,
)
from ..io.run_checkpoint import RunCheckpointer
from .jobspec import PRIORITIES, JobSpec
from .journal import JobJournal
from .pools import WarmEnginePool
from .retry import RetryPolicy
from .store import ResultStore

__all__ = ["Job", "JobQueue", "JobState"]


class JobState:
    """Job lifecycle states (plain strings on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class Job:
    """One submission's lifecycle, status, and (eventually) results."""

    def __init__(self, job_id: str, spec: JobSpec, fingerprint: str) -> None:
        self.job_id = job_id
        self.spec = spec
        self.fingerprint = fingerprint
        self.state = JobState.QUEUED
        self.submitted_unix = time.time()
        self.started_unix: float | None = None
        self.finished_unix: float | None = None
        self.cache_hit = False
        #: Leader job id when this submission coalesced onto an in-flight
        #: duplicate instead of executing.
        self.coalesced_with: str | None = None
        self.error: str | None = None
        self.results: list[EvolutionResult] | None = None
        #: One token for the job's whole lifetime: client cancels, the
        #: wall-clock deadline, and drain cancellation all land here, and
        #: the drivers poll it cooperatively at progress-tick cadence.
        self.cancel_token = CancelToken()
        self.attempts = 0
        self.retries = 0
        self.last_failure = ""
        #: Original job id when this admission was replayed from a journal.
        self.recovered_from: str | None = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._runs_done = 0
        self._ticks_seen = 0
        self._latest_ticks: dict[int, ProgressTick] = {}

    # -- progress plumbing (called from the executing worker thread) ----------

    def _on_tick(self, tick: ProgressTick) -> None:
        with self._lock:
            self._ticks_seen += 1
            self._latest_ticks[tick.run_index] = tick

    def _on_run_complete(self, index: int, result: EvolutionResult) -> None:
        with self._lock:
            self._runs_done += 1

    # -- state transitions -----------------------------------------------------

    def _begin_attempt(self, attempt: int) -> None:
        with self._lock:
            self.state = JobState.RUNNING
            self.attempts = attempt
            now = time.time()
            if self.started_unix is None:
                self.started_unix = now
            if attempt == 1 and self.spec.timeout is not None:
                # The deadline covers the whole job — retries included —
                # so a retry storm cannot stretch a job past its budget.
                self.cancel_token.deadline = (
                    time.monotonic() + self.spec.timeout
                )

    def _note_retry(self, description: str) -> None:
        with self._lock:
            self.retries += 1
            self.last_failure = description

    def _mark_done(
        self,
        results: list[EvolutionResult],
        *,
        cache_hit: bool,
        coalesced_with: str | None = None,
    ) -> None:
        with self._lock:
            self.results = results
            self.cache_hit = cache_hit
            self.coalesced_with = coalesced_with
            self.state = JobState.DONE
            self.finished_unix = time.time()
            self._runs_done = len(results)
        self._done.set()

    def _mark_failed(
        self, error: str, *, coalesced_with: str | None = None
    ) -> None:
        with self._lock:
            self.error = error
            self.coalesced_with = coalesced_with
            self.state = JobState.FAILED
            self.finished_unix = time.time()
        self._done.set()

    def _mark_cancelled(
        self, reason: str, *, coalesced_with: str | None = None
    ) -> None:
        with self._lock:
            self.error = reason
            self.coalesced_with = coalesced_with
            self.state = JobState.CANCELLED
            self.finished_unix = time.time()
        self._done.set()

    # -- public API ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes (done, failed, or cancelled)."""
        return self._done.wait(timeout)

    def status_dict(self) -> dict[str, Any]:
        """JSON-compatible status snapshot (the ``GET /jobs/<id>`` body)."""
        with self._lock:
            ticks = {
                str(i): {
                    "generation": t.generation,
                    "generations": t.generations,
                    "fraction": round(t.fraction, 6),
                    "n_pc_events": t.n_pc_events,
                    "n_adoptions": t.n_adoptions,
                    "n_mutations": t.n_mutations,
                }
                for i, t in sorted(self._latest_ticks.items())
            }
            return {
                "job_id": self.job_id,
                "state": self.state,
                "fingerprint": self.fingerprint,
                "backend": self.spec.backend,
                "priority": self.spec.priority,
                "label": self.spec.label,
                "n_configs": len(self.spec.configs),
                "submitted_unix": self.submitted_unix,
                "started_unix": self.started_unix,
                "finished_unix": self.finished_unix,
                "cache_hit": self.cache_hit,
                "coalesced_with": self.coalesced_with,
                "error": self.error,
                "attempts": self.attempts,
                "retries": self.retries,
                "timeout": self.spec.timeout,
                "cancel_requested": self.cancel_token.cancelled,
                "recovered_from": self.recovered_from,
                "progress": {
                    "runs_total": len(self.spec.configs),
                    "runs_done": self._runs_done,
                    "ticks_seen": self._ticks_seen,
                    "runs": ticks,
                },
            }


class _CheckpointBridge:
    """Per-job checkpoint sink over the queue's :class:`RunCheckpointer`.

    Delegates saves and loads to the shared file sink while tying the
    activity back to the owning job: every save is journaled as a
    non-terminal ``checkpoint`` record (journal replay skips unknown
    types, so older builds still read the log), queue-level counters are
    bumped for ``GET /stats``, and the unit keys the job touched are
    remembered so a successfully finished job can discard its snapshots.
    """

    def __init__(self, queue: "JobQueue", job: Job) -> None:
        self._queue = queue
        self._job = job
        self.units: set[str] = set()
        self.saves = 0
        self.resumes = 0

    def save(
        self,
        unit: str,
        generation: int,
        meta: dict[str, Any],
        arrays: dict[str, np.ndarray],
    ) -> None:
        assert self._queue.checkpointer is not None
        self._queue.checkpointer.save(unit, generation, meta, arrays)
        self.units.add(unit)
        self.saves += 1
        with self._queue._lock:
            self._queue.checkpoints_written_total += 1
        # Best-effort breadcrumb only — the snapshot itself is already
        # durable, and a failed journal append must not abort the science
        # mid-run.
        try:
            self._queue._journal_record(
                "checkpoint",
                self._job.job_id,
                unit=unit,
                generation=generation,
            )
        except Exception:
            pass

    def load_latest(
        self, unit: str
    ) -> tuple[dict[str, Any], dict[str, np.ndarray]] | None:
        assert self._queue.checkpointer is not None
        state = self._queue.checkpointer.load_latest(unit)
        self.units.add(unit)
        if state is not None:
            self.resumes += 1
            with self._queue._lock:
                self._queue.resumed_total += 1
        return state


class JobQueue:
    """Bounded async job queue over ``run_sweep`` (see module docstring).

    Parameters
    ----------
    workers:
        Executor threads (= concurrently running jobs).
    max_queued:
        Waiting-job bound; submissions past it raise
        :class:`~repro.errors.QueueFullError` (coalesced followers and
        instant cache hits never occupy a slot).
    store:
        Result cache (a fresh in-memory :class:`ResultStore` by default).
    pool:
        Warm engine pool to keep open for the queue's lifetime (optional).
    coalesce:
        Attach duplicate in-flight submissions to the running leader
        instead of executing them twice (default on).
    history:
        Finished jobs retained for ``GET /jobs`` listings.
    journal:
        Path of the durable job journal (JSONL WAL).  When given, every
        admission is journaled before it is visible, and construction
        replays any pending jobs a previous process left behind
        (``recovered_total`` counts them).  ``None`` = in-memory only,
        the PR 6 behavior.
    checkpoint_dir:
        Root directory for mid-run run-state snapshots
        (:class:`~repro.io.run_checkpoint.RunCheckpointer`).  When given,
        jobs whose configs set ``checkpoint_every`` snapshot at that
        cadence, and a replayed or retried job resumes bit-identically
        from its newest valid snapshot instead of recomputing from
        generation zero.  Snapshots reach the in-process sweep path only
        (``spec.workers`` unset/1 — the service default); process-pool
        fan-out runs without them.  A job that finishes successfully
        discards its snapshots.  ``None`` = no mid-run checkpointing.
    """

    def __init__(
        self,
        workers: int = 2,
        max_queued: int = 64,
        store: ResultStore | None = None,
        pool: WarmEnginePool | None = None,
        coalesce: bool = True,
        history: int = 1024,
        journal: str | Path | None = None,
        checkpoint_dir: str | Path | None = None,
        _run_sweep: Callable[..., list[EvolutionResult]] = run_sweep,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_queued < 1:
            raise ConfigurationError(
                f"max_queued must be >= 1, got {max_queued}"
            )
        self.workers = workers
        self.max_queued = max_queued
        self.store = store if store is not None else ResultStore()
        self.pool = pool
        self.coalesce = coalesce
        self.history = history
        self._run_sweep = _run_sweep

        self._lock = threading.Lock()
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._active: dict[str, Job] = {}
        self._followers: dict[str, list[Job]] = {}
        self._closing = False
        self._draining = False
        self._replaying = False
        self.submitted_total = 0
        self.cache_hit_total = 0
        self.coalesced_total = 0
        self.rejected_total = 0
        self.retries_total = 0
        self.cancelled_total = 0
        self.timeout_total = 0
        self.recovered_total = 0
        self.recovery_errors = 0
        #: Shared-engine memory accounting aggregated from finished jobs'
        #: backend reports: the largest ``peak_paymat_bytes`` any job's
        #: lane-batched group reached, plus the most recent group's stats
        #: verbatim (``GET /stats`` surfaces both).
        self.engine_peak_paymat_bytes = 0
        self.last_shared_engine: dict[str, int] | None = None
        self.checkpointer: RunCheckpointer | None = (
            RunCheckpointer(checkpoint_dir)
            if checkpoint_dir is not None
            else None
        )
        self.checkpoints_written_total = 0
        self.resumed_total = 0

        # Read the backlog before the journal is touched for appending —
        # replay is a pure read of whatever the previous process left.
        self.journal: JobJournal | None = None
        pending: list[dict[str, Any]] = []
        if journal is not None:
            pending = JobJournal.replay(journal)
            self.journal = JobJournal(journal)

        if self.pool is not None:
            self.pool.open()

        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="sweep-job"
        )
        self._loop = asyncio.new_event_loop()
        self._wake: asyncio.Event | None = None
        self._scheduler_done = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, name="sweep-queue", daemon=True
        )
        self._started = threading.Event()
        self._thread.start()
        self._started.wait()

        if self.journal is not None:
            self._recover(pending)

    # -- journal plumbing ------------------------------------------------------

    def _journal_record(self, type: str, job_id: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.record(type, job_id, **fields)

    def _journal_terminal(self, type: str, job_id: str, **fields: Any) -> None:
        """Best-effort terminal record, written *before* the job is marked
        (waiters must never observe a terminal job the WAL calls pending).
        A failed append is swallowed: the job stays pending in the WAL and
        a restart simply replays it — deterministic, so that is safe."""
        try:
            self._journal_record(type, job_id, **fields)
        except Exception:
            pass

    def _recover(self, pending: list[dict[str, Any]]) -> None:
        """Re-admit the journal's backlog through the normal submit path.

        The journal is compacted (atomically truncated) first; every
        replayed admission then writes a fresh ``submitted`` record, so
        the log never grows across restart cycles.  Jobs whose results
        landed in the disk store before the crash replay straight into
        cache hits — nothing re-executes unnecessarily.
        """
        assert self.journal is not None
        self.journal.reset()
        if not pending:
            return
        self._replaying = True
        try:
            for record in pending:
                try:
                    spec = JobSpec.from_dict(record.get("spec", {}))
                    self.submit(spec, recovered_from=record.get("job_id"))
                    self.recovered_total += 1
                except ReproError:
                    # A spec this build can no longer parse or validate is
                    # dropped with a counter — recovery must not wedge the
                    # whole queue on one bad record.
                    self.recovery_errors += 1
        finally:
            self._replaying = False

    # -- event loop ------------------------------------------------------------

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._wake = asyncio.Event()
        self._slots = asyncio.Semaphore(self.workers)
        self._loop.call_soon(self._started.set)
        self._loop.create_task(self._scheduler())
        self._loop.run_forever()
        # Drain cancelled callbacks so the loop closes cleanly.
        self._loop.close()

    async def _scheduler(self) -> None:
        """Admit the highest-priority queued job whenever a slot frees up."""
        assert self._wake is not None
        try:
            while True:
                await self._slots.acquire()
                job: Job | None = None
                while job is None:
                    if self._closing:
                        self._slots.release()
                        return
                    self._wake.clear()
                    job = self._pop_next()
                    if job is None:
                        await self._wake.wait()
                asyncio.ensure_future(self._run_job(job))
        finally:
            self._scheduler_done.set()

    async def _run_job(self, job: Job) -> None:
        try:
            await self._loop.run_in_executor(
                self._executor, self._execute, job
            )
        finally:
            self._slots.release()

    def _pop_next(self) -> Job | None:
        with self._lock:
            if not self._heap:
                return None
            _, _, job = heapq.heappop(self._heap)
            return job

    def _notify(self) -> None:
        """Wake the scheduler from any thread."""
        def _set() -> None:
            assert self._wake is not None
            self._wake.set()

        self._loop.call_soon_threadsafe(_set)

    # -- execution (worker thread) --------------------------------------------

    def _execute(self, job: Job) -> None:
        spec = job.spec
        policy = spec.retry if spec.retry is not None else RetryPolicy()
        failure: str | None = None
        outcome = JobState.DONE
        attempt = 0
        # One bridge for the job's whole lifetime, so a retry attempt picks
        # up the snapshots its predecessor wrote instead of replaying from
        # generation zero.
        ckpt = (
            _CheckpointBridge(self, job)
            if self.checkpointer is not None
            else None
        )
        while True:
            attempt += 1
            job._begin_attempt(attempt)
            try:
                self._journal_record("started", job.job_id, attempt=attempt)
                # A cancel that landed while the job sat queued (or during
                # a retry backoff) aborts here, before any science runs.
                job.cancel_token.check()
                faults.check(
                    "service.execute",
                    job_id=job.job_id,
                    attempt=attempt,
                    fingerprint=job.fingerprint,
                )
                with progress_scope(job._on_tick), cancel_scope(
                    job.cancel_token
                ), (
                    checkpoint_scope(ckpt)
                    if ckpt is not None
                    else nullcontext()
                ):
                    results = self._run_sweep(
                        list(spec.configs),
                        backend=spec.backend,
                        workers=spec.workers,
                        share_engine=spec.share_engine,
                        on_result=job._on_run_complete,
                    )
                self.store.put(job.fingerprint, results)
                self._note_engine_stats(results)
                # WAL before visibility: a waiter observing DONE must
                # imply the journal already agrees.  A failed append here
                # falls through to the retry/failure classification — the
                # job is not done until it is durably done.
                self._journal_record("done", job.job_id)
                job._mark_done(results, cache_hit=False)
                outcome = JobState.DONE
                break
            except JobCancelledError as err:
                if isinstance(err, JobTimeoutError):
                    with self._lock:
                        self.timeout_total += 1
                    failure = (
                        f"JobTimeoutError: exceeded the {spec.timeout}s "
                        f"wall-clock timeout on attempt {attempt} "
                        "(cancelled cooperatively at tick cadence)"
                    )
                    self._journal_terminal(
                        "failed", job.job_id, error=failure
                    )
                    job._mark_failed(failure)
                    outcome = JobState.FAILED
                elif self._draining:
                    # Drain cancellation is deliberate non-completion: no
                    # terminal journal record, so the submitted record
                    # survives and a restart replays the job.
                    failure = str(err) or "cancelled"
                    job._mark_cancelled(failure)
                    outcome = JobState.CANCELLED
                else:
                    failure = str(err) or "cancelled"
                    with self._lock:
                        self.cancelled_total += 1
                    self._journal_terminal(
                        "cancelled", job.job_id, reason=failure
                    )
                    job._mark_cancelled(failure)
                    outcome = JobState.CANCELLED
                break
            except Exception as err:
                description = f"{type(err).__name__}: {err}"
                retryable = (
                    policy.is_transient(err)
                    and attempt < policy.max_attempts
                    and not self._closing
                    and not self._draining
                )
                if retryable:
                    with self._lock:
                        self.retries_total += 1
                    job._note_retry(description)
                    delay = policy.backoff_delay(attempt, key=job.fingerprint)
                    # Sleep on the cancel token so a client cancel or a
                    # drain cuts the backoff short; the next iteration's
                    # token check converts it into a cancellation.
                    job.cancel_token.wait(delay)
                    continue
                failure = description
                self._journal_terminal(
                    "failed", job.job_id, error=description
                )
                job._mark_failed(
                    description + "\n" + traceback.format_exc(limit=8)
                )
                outcome = JobState.FAILED
                break
        if ckpt is not None and outcome == JobState.DONE:
            # A finished job's results are in the store; its snapshots are
            # dead weight.  Failed and cancelled jobs keep theirs, so a
            # journal replay resumes mid-run instead of from scratch.
            for unit in ckpt.units:
                self.checkpointer.discard(unit)
        with self._lock:
            followers = self._followers.pop(job.fingerprint, [])
            self._active.pop(job.fingerprint, None)
        if self.pool is not None:
            self.pool.after_job()
        for follower in followers:
            if outcome == JobState.DONE:
                assert job.results is not None
                self._journal_terminal("done", follower.job_id)
                follower._mark_done(
                    job.results, cache_hit=True, coalesced_with=job.job_id
                )
            elif outcome == JobState.CANCELLED:
                if not self._draining:
                    self._journal_terminal(
                        "cancelled", follower.job_id, reason=failure
                    )
                follower._mark_cancelled(
                    failure or "cancelled", coalesced_with=job.job_id
                )
            else:
                self._journal_terminal(
                    "failed", follower.job_id, error=failure
                )
                follower._mark_failed(
                    failure or "failed", coalesced_with=job.job_id
                )

    def _note_engine_stats(self, results: list) -> None:
        """Fold a finished job's shared-engine memory stats into the queue
        aggregates (results without shared-engine reports are skipped)."""
        with self._lock:
            for result in results:
                report = getattr(result, "backend_report", None)
                if report is None or report.shared_engine is None:
                    continue
                stats = report.shared_engine
                peak = int(
                    stats.get(
                        "peak_paymat_bytes", stats.get("paymat_bytes", 0)
                    )
                )
                if peak > self.engine_peak_paymat_bytes:
                    self.engine_peak_paymat_bytes = peak
                self.last_shared_engine = dict(stats)

    # -- submission / lookup ---------------------------------------------------

    def submit(
        self, spec: JobSpec, *, recovered_from: str | None = None
    ) -> Job:
        """Admit a job: cache hit, coalesce, enqueue, or reject (429/503).

        Raises :class:`~repro.errors.ConfigurationError` for an unknown
        backend (a 400 at the front door),
        :class:`~repro.errors.QueueFullError` past ``max_queued``, and
        :class:`~repro.errors.DrainingError` while the queue drains (503).
        Enqueued and coalesced admissions are journaled *before* they
        become visible, so a crash between admission and execution can
        never lose them.
        """
        get_backend(spec.backend)  # unknown names fail fast, pre-queue
        fingerprint = spec.fingerprint()
        with self._lock:
            if self._closing:
                raise ServiceError("the job queue is shutting down")
            if self._draining:
                raise DrainingError(
                    "the sweep service is draining and no longer admits "
                    "jobs; retry against the restarted server"
                )
            self.submitted_total += 1
            job = Job(f"job-{next(self._ids):06d}", spec, fingerprint)
            job.recovered_from = recovered_from
            cached = self.store.get(fingerprint)
            if cached is not None:
                self.cache_hit_total += 1
                self._register(job)
                hit = True
            elif self.coalesce and fingerprint in self._active:
                leader = self._active[fingerprint]
                self._journal_submit(job)
                self._followers.setdefault(fingerprint, []).append(job)
                job.coalesced_with = leader.job_id
                self.coalesced_total += 1
                self._register(job)
                return job
            else:
                # Replay re-admits the whole backlog even when it exceeds
                # max_queued — bouncing journaled jobs at startup would
                # turn a restart into data loss.
                if not self._replaying and len(self._heap) >= self.max_queued:
                    self.rejected_total += 1
                    raise QueueFullError(
                        f"job queue is full ({self.max_queued} waiting); "
                        "retry later or lower submission rate"
                    )
                self._journal_submit(job)
                rank = PRIORITIES.index(spec.priority)
                heapq.heappush(self._heap, (rank, next(self._seq), job))
                self._active[fingerprint] = job
                self._register(job)
                hit = False
        if hit:
            job._mark_done(cached, cache_hit=True)
        else:
            self._notify()
        return job

    def _journal_submit(self, job: Job) -> None:
        """WAL the admission (locked); raising aborts it un-admitted."""
        fields: dict[str, Any] = {
            "fingerprint": job.fingerprint,
            "spec": job.spec.to_dict(),
        }
        if job.recovered_from is not None:
            fields["recovered_from"] = job.recovered_from
        self._journal_record("submitted", job.job_id, **fields)

    def _register(self, job: Job) -> None:
        """Record the job for listings, trimming finished history (locked)."""
        self._jobs[job.job_id] = job
        while len(self._jobs) > self.history:
            for job_id, old in self._jobs.items():
                if old.finished:
                    del self._jobs[job_id]
                    break
            else:
                break  # everything live — let the registry grow

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobNotFoundError(f"no job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        """All known jobs, submission order (oldest first)."""
        with self._lock:
            return list(self._jobs.values())

    # -- cancellation ----------------------------------------------------------

    def cancel(self, job_id: str, reason: str = "cancelled by client") -> bool:
        """Cancel one job (the ``DELETE /jobs/<id>`` path).

        A queued job (or coalesced follower) is removed and terminal
        immediately; a running job's token is cancelled and the drivers
        abort it cooperatively at the next progress tick.  Returns False
        when the job already finished (nothing to cancel).  Raises
        :class:`~repro.errors.JobNotFoundError` for unknown ids.
        """
        job = self.get(job_id)
        finish: list[tuple[Job, str | None]] = []
        with self._lock:
            if job.finished:
                return False
            if job.state == JobState.QUEUED:
                in_heap = any(entry[2] is job for entry in self._heap)
                if in_heap:
                    self._heap = [e for e in self._heap if e[2] is not job]
                    heapq.heapify(self._heap)
                    self._active.pop(job.fingerprint, None)
                    finish.append((job, None))
                    # Orphaned followers die with their leader.
                    for follower in self._followers.pop(
                        job.fingerprint, []
                    ):
                        finish.append((follower, job.job_id))
                else:
                    # A follower: detach it from its leader only.
                    flock = self._followers.get(job.fingerprint, [])
                    if job in flock:
                        flock.remove(job)
                        finish.append((job, job.coalesced_with))
            if not finish:
                # Running (or mid-admission): cooperative cancel; the
                # worker thread writes the terminal state and journal
                # record when the drivers surface the abort.
                job.cancel_token.cancel(reason)
                return True
        for victim, coalesced_with in finish:
            victim.cancel_token.cancel(reason)
            self._journal_terminal(
                "cancelled", victim.job_id, reason=reason
            )
            victim._mark_cancelled(reason, coalesced_with=coalesced_with)
            with self._lock:
                self.cancelled_total += 1
        return True

    # -- stats -----------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def stats(self) -> dict[str, Any]:
        with self._lock:
            states = {
                "queued": 0,
                "running": 0,
                "done": 0,
                "failed": 0,
                "cancelled": 0,
            }
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "workers": self.workers,
                "max_queued": self.max_queued,
                "waiting": len(self._heap),
                "draining": self._draining,
                "states": states,
                "submitted_total": self.submitted_total,
                "cache_hit_total": self.cache_hit_total,
                "coalesced_total": self.coalesced_total,
                "rejected_total": self.rejected_total,
                "retries_total": self.retries_total,
                "cancelled_total": self.cancelled_total,
                "timeout_total": self.timeout_total,
                "recovered_total": self.recovered_total,
                "recovery_errors": self.recovery_errors,
                "journal": (
                    {
                        "path": str(self.journal.path),
                        "records_written": self.journal.records_written,
                    }
                    if self.journal is not None
                    else None
                ),
                "checkpoints": (
                    {
                        "dir": str(self.checkpointer.root),
                        "written_total": self.checkpoints_written_total,
                        "resumed_total": self.resumed_total,
                    }
                    if self.checkpointer is not None
                    else None
                ),
                "engine": {
                    "peak_paymat_bytes": self.engine_peak_paymat_bytes,
                    "last_shared_engine": self.last_shared_engine,
                },
            }

    # -- drain / shutdown ------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> dict[str, int]:
        """Graceful drain: stop admitting, settle running jobs, journal the
        rest.

        New submissions raise :class:`~repro.errors.DrainingError` (503)
        from the first moment.  Queued jobs are cancelled in memory but
        keep their journal ``submitted`` records, so a restart replays
        them; running jobs get up to ``timeout`` seconds to finish, then
        are cancelled cooperatively — also without terminal journal
        records, so they replay too.  Returns counters (``finished`` /
        ``requeued``) and leaves the queue ready for :meth:`close`.
        """
        with self._lock:
            if self._closing:
                raise ServiceError("cannot drain a closed queue")
            first = not self._draining
            self._draining = True
            queued = [job for _, _, job in self._heap] if first else []
            if first:
                self._heap.clear()
            follower_map = {
                job.fingerprint: self._followers.pop(job.fingerprint, [])
                for job in queued
            }
            for job in queued:
                self._active.pop(job.fingerprint, None)
            running = list(self._active.values())
        requeued = 0
        for job in queued:
            job._mark_cancelled(
                "server draining; job journaled and will replay on restart"
            )
            requeued += 1
            for follower in follower_map[job.fingerprint]:
                follower._mark_cancelled(
                    "server draining; job journaled and will replay on "
                    "restart",
                    coalesced_with=job.job_id,
                )
                requeued += 1
        self._notify()
        deadline = time.monotonic() + timeout
        finished = 0
        stragglers: list[Job] = []
        for job in running:
            remaining = deadline - time.monotonic()
            if job.wait(max(0.0, remaining)):
                finished += 1
            else:
                stragglers.append(job)
        for job in stragglers:
            job.cancel_token.cancel(
                "drain deadline reached; job journaled and will replay on "
                "restart"
            )
        for job in stragglers:
            # Cooperative aborts land within one event generation; the
            # bounded grace keeps a truly wedged backend from hanging the
            # drain (close() will then surface the leaked worker).
            if job.wait(timeout=10):
                requeued += 1
        return {"finished": finished, "requeued": requeued}

    #: Seconds close() waits for the scheduler and event-loop threads
    #: before declaring the shutdown wedged (class-level so the leak tests
    #: can shrink it without a 10s wait).
    _JOIN_TIMEOUT = 10.0

    def close(self) -> None:
        """Stop accepting, fail queued jobs, wait for running ones, shut down.

        Raises :class:`~repro.errors.ServiceError` when the scheduler or
        event-loop thread fails to stop within :attr:`_JOIN_TIMEOUT`
        seconds — a wedged shutdown leaks threads and must be visible,
        not silent.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            abandoned = [job for _, _, job in self._heap]
            self._heap.clear()
            for job in abandoned:
                self._active.pop(job.fingerprint, None)
        for job in abandoned:
            followers = self._followers.pop(job.fingerprint, [])
            self._journal_terminal(
                "failed", job.job_id, error="server shutting down"
            )
            job._mark_failed("server shutting down")
            for follower in followers:
                self._journal_terminal(
                    "failed", follower.job_id, error="server shutting down"
                )
                follower._mark_failed(
                    "server shutting down", coalesced_with=job.job_id
                )
        self._notify()
        problems: list[str] = []
        if not self._scheduler_done.wait(timeout=self._JOIN_TIMEOUT):
            problems.append(
                f"scheduler failed to stop within {self._JOIN_TIMEOUT:g}s "
                "(a worker thread is likely wedged in a job)"
            )
        # A wedged scheduler means a wedged worker: don't hang forever on
        # the executor too, surface the leak instead.
        self._executor.shutdown(wait=not problems)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=self._JOIN_TIMEOUT)
        if self._thread.is_alive():
            problems.append(
                "event-loop thread failed to join within "
                f"{self._JOIN_TIMEOUT:g}s"
            )
        if self.journal is not None:
            self.journal.close()
        if self.pool is not None:
            self.pool.close()
        if problems:
            raise ServiceError(
                "job queue shutdown leaked threads: " + "; ".join(problems)
            )

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
