"""Async job queue: priority scheduling, backpressure, coalescing, progress.

The queue is the service's execution heart.  An :mod:`asyncio` event loop
(own daemon thread) runs one scheduler coroutine that admits jobs into a
bounded worker pool:

* **priority classes** — ``interactive`` jobs jump every queued ``batch``
  job (FIFO within a class): a million small queries coexist with big
  ensembles without head-of-line blocking.
* **backpressure** — at most ``max_queued`` jobs wait; past that,
  :meth:`submit` raises :class:`~repro.errors.QueueFullError`, which the
  HTTP front door maps to ``429`` so callers can retry with backoff
  instead of piling work onto a drowning server.
* **result caching** — a submission whose fingerprint is already in the
  :class:`~repro.service.store.ResultStore` completes instantly
  (``cache_hit``), returning the stored — bit-identical — results.
* **coalescing** — a submission whose fingerprint matches a job currently
  queued or running attaches to it instead of executing twice; followers
  resolve the moment the leader finishes.
* **streaming progress** — each run's generation counter and partial
  event counters are updated live through
  :func:`~repro.core.progress.progress_scope` (the driver-level hooks),
  pollable via :meth:`Job.status_dict` while the job runs.

Jobs execute through :func:`repro.api.run_sweep` in executor threads —
the actual science path is exactly the library one, warm engine pools
(:mod:`repro.service.pools`) included.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import threading
import time
import traceback
from collections import OrderedDict
from typing import Any, Callable

from ..api.backends import get_backend
from ..api.sweep import run_sweep
from ..core.evolution import EvolutionResult
from ..core.progress import ProgressTick, progress_scope
from ..errors import (
    ConfigurationError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from .jobspec import PRIORITIES, JobSpec
from .pools import WarmEnginePool
from .store import ResultStore

__all__ = ["Job", "JobQueue", "JobState"]


class JobState:
    """Job lifecycle states (plain strings on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class Job:
    """One submission's lifecycle, status, and (eventually) results."""

    def __init__(self, job_id: str, spec: JobSpec, fingerprint: str) -> None:
        self.job_id = job_id
        self.spec = spec
        self.fingerprint = fingerprint
        self.state = JobState.QUEUED
        self.submitted_unix = time.time()
        self.started_unix: float | None = None
        self.finished_unix: float | None = None
        self.cache_hit = False
        #: Leader job id when this submission coalesced onto an in-flight
        #: duplicate instead of executing.
        self.coalesced_with: str | None = None
        self.error: str | None = None
        self.results: list[EvolutionResult] | None = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._runs_done = 0
        self._ticks_seen = 0
        self._latest_ticks: dict[int, ProgressTick] = {}

    # -- progress plumbing (called from the executing worker thread) ----------

    def _on_tick(self, tick: ProgressTick) -> None:
        with self._lock:
            self._ticks_seen += 1
            self._latest_ticks[tick.run_index] = tick

    def _on_run_complete(self, index: int, result: EvolutionResult) -> None:
        with self._lock:
            self._runs_done += 1

    # -- state transitions -----------------------------------------------------

    def _mark_running(self) -> None:
        with self._lock:
            self.state = JobState.RUNNING
            self.started_unix = time.time()

    def _mark_done(
        self,
        results: list[EvolutionResult],
        *,
        cache_hit: bool,
        coalesced_with: str | None = None,
    ) -> None:
        with self._lock:
            self.results = results
            self.cache_hit = cache_hit
            self.coalesced_with = coalesced_with
            self.state = JobState.DONE
            self.finished_unix = time.time()
            self._runs_done = len(results)
        self._done.set()

    def _mark_failed(
        self, error: str, *, coalesced_with: str | None = None
    ) -> None:
        with self._lock:
            self.error = error
            self.coalesced_with = coalesced_with
            self.state = JobState.FAILED
            self.finished_unix = time.time()
        self._done.set()

    # -- public API ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes (done or failed); True on finish."""
        return self._done.wait(timeout)

    def status_dict(self) -> dict[str, Any]:
        """JSON-compatible status snapshot (the ``GET /jobs/<id>`` body)."""
        with self._lock:
            ticks = {
                str(i): {
                    "generation": t.generation,
                    "generations": t.generations,
                    "fraction": round(t.fraction, 6),
                    "n_pc_events": t.n_pc_events,
                    "n_adoptions": t.n_adoptions,
                    "n_mutations": t.n_mutations,
                }
                for i, t in sorted(self._latest_ticks.items())
            }
            return {
                "job_id": self.job_id,
                "state": self.state,
                "fingerprint": self.fingerprint,
                "backend": self.spec.backend,
                "priority": self.spec.priority,
                "label": self.spec.label,
                "n_configs": len(self.spec.configs),
                "submitted_unix": self.submitted_unix,
                "started_unix": self.started_unix,
                "finished_unix": self.finished_unix,
                "cache_hit": self.cache_hit,
                "coalesced_with": self.coalesced_with,
                "error": self.error,
                "progress": {
                    "runs_total": len(self.spec.configs),
                    "runs_done": self._runs_done,
                    "ticks_seen": self._ticks_seen,
                    "runs": ticks,
                },
            }


class JobQueue:
    """Bounded async job queue over ``run_sweep`` (see module docstring).

    Parameters
    ----------
    workers:
        Executor threads (= concurrently running jobs).
    max_queued:
        Waiting-job bound; submissions past it raise
        :class:`~repro.errors.QueueFullError` (coalesced followers and
        instant cache hits never occupy a slot).
    store:
        Result cache (a fresh in-memory :class:`ResultStore` by default).
    pool:
        Warm engine pool to keep open for the queue's lifetime (optional).
    coalesce:
        Attach duplicate in-flight submissions to the running leader
        instead of executing them twice (default on).
    history:
        Finished jobs retained for ``GET /jobs`` listings.
    """

    def __init__(
        self,
        workers: int = 2,
        max_queued: int = 64,
        store: ResultStore | None = None,
        pool: WarmEnginePool | None = None,
        coalesce: bool = True,
        history: int = 1024,
        _run_sweep: Callable[..., list[EvolutionResult]] = run_sweep,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_queued < 1:
            raise ConfigurationError(
                f"max_queued must be >= 1, got {max_queued}"
            )
        self.workers = workers
        self.max_queued = max_queued
        self.store = store if store is not None else ResultStore()
        self.pool = pool
        self.coalesce = coalesce
        self.history = history
        self._run_sweep = _run_sweep

        self._lock = threading.Lock()
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._active: dict[str, Job] = {}
        self._followers: dict[str, list[Job]] = {}
        self._closing = False
        self.submitted_total = 0
        self.cache_hit_total = 0
        self.coalesced_total = 0
        self.rejected_total = 0
        #: Shared-engine memory accounting aggregated from finished jobs'
        #: backend reports: the largest ``peak_paymat_bytes`` any job's
        #: lane-batched group reached, plus the most recent group's stats
        #: verbatim (``GET /stats`` surfaces both).
        self.engine_peak_paymat_bytes = 0
        self.last_shared_engine: dict[str, int] | None = None

        if self.pool is not None:
            self.pool.open()

        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="sweep-job"
        )
        self._loop = asyncio.new_event_loop()
        self._wake: asyncio.Event | None = None
        self._scheduler_done = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, name="sweep-queue", daemon=True
        )
        self._started = threading.Event()
        self._thread.start()
        self._started.wait()

    # -- event loop ------------------------------------------------------------

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._wake = asyncio.Event()
        self._slots = asyncio.Semaphore(self.workers)
        self._loop.call_soon(self._started.set)
        self._loop.create_task(self._scheduler())
        self._loop.run_forever()
        # Drain cancelled callbacks so the loop closes cleanly.
        self._loop.close()

    async def _scheduler(self) -> None:
        """Admit the highest-priority queued job whenever a slot frees up."""
        assert self._wake is not None
        try:
            while True:
                await self._slots.acquire()
                job: Job | None = None
                while job is None:
                    if self._closing:
                        self._slots.release()
                        return
                    self._wake.clear()
                    job = self._pop_next()
                    if job is None:
                        await self._wake.wait()
                asyncio.ensure_future(self._run_job(job))
        finally:
            self._scheduler_done.set()

    async def _run_job(self, job: Job) -> None:
        try:
            await self._loop.run_in_executor(
                self._executor, self._execute, job
            )
        finally:
            self._slots.release()

    def _pop_next(self) -> Job | None:
        with self._lock:
            if not self._heap:
                return None
            _, _, job = heapq.heappop(self._heap)
            return job

    def _notify(self) -> None:
        """Wake the scheduler from any thread."""
        def _set() -> None:
            assert self._wake is not None
            self._wake.set()

        self._loop.call_soon_threadsafe(_set)

    # -- execution (worker thread) --------------------------------------------

    def _execute(self, job: Job) -> None:
        job._mark_running()
        spec = job.spec
        try:
            with progress_scope(job._on_tick):
                results = self._run_sweep(
                    list(spec.configs),
                    backend=spec.backend,
                    workers=spec.workers,
                    share_engine=spec.share_engine,
                    on_result=job._on_run_complete,
                )
            self.store.put(job.fingerprint, results)
            self._note_engine_stats(results)
            job._mark_done(results, cache_hit=False)
            failure: str | None = None
        except Exception as err:
            failure = f"{type(err).__name__}: {err}"
            job._mark_failed(
                failure + "\n" + traceback.format_exc(limit=8)
            )
        finally:
            with self._lock:
                followers = self._followers.pop(job.fingerprint, [])
                self._active.pop(job.fingerprint, None)
            if self.pool is not None:
                self.pool.after_job()
        for follower in followers:
            if failure is None:
                assert job.results is not None
                follower._mark_done(
                    job.results, cache_hit=True, coalesced_with=job.job_id
                )
            else:
                follower._mark_failed(failure, coalesced_with=job.job_id)

    def _note_engine_stats(self, results: list) -> None:
        """Fold a finished job's shared-engine memory stats into the queue
        aggregates (results without shared-engine reports are skipped)."""
        with self._lock:
            for result in results:
                report = getattr(result, "backend_report", None)
                if report is None or report.shared_engine is None:
                    continue
                stats = report.shared_engine
                peak = int(
                    stats.get(
                        "peak_paymat_bytes", stats.get("paymat_bytes", 0)
                    )
                )
                if peak > self.engine_peak_paymat_bytes:
                    self.engine_peak_paymat_bytes = peak
                self.last_shared_engine = dict(stats)

    # -- submission / lookup ---------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit a job: cache hit, coalesce, enqueue, or reject (429).

        Raises :class:`~repro.errors.ConfigurationError` for an unknown
        backend (a 400 at the front door) and
        :class:`~repro.errors.QueueFullError` past ``max_queued``.
        """
        get_backend(spec.backend)  # unknown names fail fast, pre-queue
        fingerprint = spec.fingerprint()
        with self._lock:
            if self._closing:
                raise ServiceError("the job queue is shutting down")
            self.submitted_total += 1
            job = Job(f"job-{next(self._ids):06d}", spec, fingerprint)
            cached = self.store.get(fingerprint)
            if cached is not None:
                self.cache_hit_total += 1
                self._register(job)
                hit = True
            elif self.coalesce and fingerprint in self._active:
                leader = self._active[fingerprint]
                self._followers.setdefault(fingerprint, []).append(job)
                job.coalesced_with = leader.job_id
                self.coalesced_total += 1
                self._register(job)
                return job
            else:
                if len(self._heap) >= self.max_queued:
                    self.rejected_total += 1
                    raise QueueFullError(
                        f"job queue is full ({self.max_queued} waiting); "
                        "retry later or lower submission rate"
                    )
                rank = PRIORITIES.index(spec.priority)
                heapq.heappush(self._heap, (rank, next(self._seq), job))
                self._active[fingerprint] = job
                self._register(job)
                hit = False
        if hit:
            job._mark_done(cached, cache_hit=True)
        else:
            self._notify()
        return job

    def _register(self, job: Job) -> None:
        """Record the job for listings, trimming finished history (locked)."""
        self._jobs[job.job_id] = job
        while len(self._jobs) > self.history:
            for job_id, old in self._jobs.items():
                if old.finished:
                    del self._jobs[job_id]
                    break
            else:
                break  # everything live — let the registry grow

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobNotFoundError(f"no job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        """All known jobs, submission order (oldest first)."""
        with self._lock:
            return list(self._jobs.values())

    def stats(self) -> dict[str, Any]:
        with self._lock:
            states = {"queued": 0, "running": 0, "done": 0, "failed": 0}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "workers": self.workers,
                "max_queued": self.max_queued,
                "waiting": len(self._heap),
                "states": states,
                "submitted_total": self.submitted_total,
                "cache_hit_total": self.cache_hit_total,
                "coalesced_total": self.coalesced_total,
                "rejected_total": self.rejected_total,
                "engine": {
                    "peak_paymat_bytes": self.engine_peak_paymat_bytes,
                    "last_shared_engine": self.last_shared_engine,
                },
            }

    # -- shutdown --------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting, fail queued jobs, wait for running ones, shut down."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            abandoned = [job for _, _, job in self._heap]
            self._heap.clear()
            for job in abandoned:
                self._active.pop(job.fingerprint, None)
        for job in abandoned:
            followers = self._followers.pop(job.fingerprint, [])
            job._mark_failed("server shutting down")
            for follower in followers:
                follower._mark_failed(
                    "server shutting down", coalesced_with=job.job_id
                )
        self._notify()
        self._scheduler_done.wait(timeout=10)
        self._executor.shutdown(wait=True)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
