"""Fingerprint-keyed result cache: in-memory LRU plus optional disk tier.

The store maps a :meth:`~repro.service.jobspec.JobSpec.fingerprint` to the
job's full ``list[EvolutionResult]``.  Hits return the *same* result
objects the original execution produced, so a duplicate submission's
payload is bit-identical to the first run's — the service's core promise.

Two tiers:

* **memory** — an LRU of the last ``max_entries`` jobs (thread-safe; the
  HTTP handler threads and queue workers all touch it).
* **disk** (optional) — every stored job is also laid down under
  ``artifact_dir/<fingerprint>/run-NNNN/`` through
  :func:`repro.io.save_result`, and a memory miss falls back to
  :func:`repro.io.load_result`, so cache hits survive server restarts.
  Disk-loaded results are science-complete but carry no snapshots or
  backend report (see :mod:`repro.io.results_writer`).
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from .. import faults
from ..core.evolution import EvolutionResult
from ..errors import CheckpointError, ConfigurationError
from ..io.results_writer import load_result, save_result

__all__ = ["ResultStore"]

_MANIFEST = "manifest.json"


class ResultStore:
    """LRU result cache keyed by job-spec fingerprint (see module docstring)."""

    def __init__(
        self,
        max_entries: int = 256,
        artifact_dir: str | Path | None = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.artifact_dir = (
            Path(artifact_dir) if artifact_dir is not None else None
        )
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, list[EvolutionResult]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.stores = 0
        self.evictions = 0

    # -- lookup ----------------------------------------------------------------

    def get(self, fingerprint: str) -> list[EvolutionResult] | None:
        """Cached results for ``fingerprint``, or ``None`` on a miss."""
        with self._lock:
            cached = self._memory.get(fingerprint)
            if cached is not None:
                self._memory.move_to_end(fingerprint)
                self.hits += 1
                return cached
        loaded = self._load_from_disk(fingerprint)
        with self._lock:
            if loaded is not None:
                # Another thread may have raced the same fingerprint in;
                # keep whichever landed first so hits stay object-stable.
                existing = self._memory.get(fingerprint)
                if existing is not None:
                    self._memory.move_to_end(fingerprint)
                    self.hits += 1
                    return existing
                self._insert(fingerprint, loaded)
                self.hits += 1
                self.disk_hits += 1
                return loaded
            self.misses += 1
            return None

    def put(self, fingerprint: str, results: list[EvolutionResult]) -> None:
        """Store a finished job's results (memory, and disk when configured)."""
        with self._lock:
            self._insert(fingerprint, list(results))
            self.stores += 1
        if self.artifact_dir is not None:
            self._save_to_disk(fingerprint, results)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._memory

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear(self) -> None:
        """Drop the memory tier (disk artifacts are left in place)."""
        with self._lock:
            self._memory.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._memory),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "stores": self.stores,
                "evictions": self.evictions,
                "artifact_dir": (
                    str(self.artifact_dir)
                    if self.artifact_dir is not None
                    else None
                ),
            }

    # -- internals -------------------------------------------------------------

    def _insert(self, fingerprint: str, results: list[EvolutionResult]) -> None:
        """Insert under the lock, evicting the least-recently-used overflow."""
        self._memory[fingerprint] = results
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.evictions += 1

    def _job_dir(self, fingerprint: str) -> Path:
        assert self.artifact_dir is not None
        return self.artifact_dir / fingerprint

    def _save_to_disk(
        self, fingerprint: str, results: list[EvolutionResult]
    ) -> None:
        job_dir = self._job_dir(fingerprint)
        job_dir.mkdir(parents=True, exist_ok=True)
        # A rewrite must pass back through the incomplete state first (see
        # save_result's identical dance with meta.json).
        manifest_path = job_dir / _MANIFEST
        manifest_path.unlink(missing_ok=True)
        for i, result in enumerate(results):
            save_result(result, job_dir / f"run-{i:04d}")
        # Manifest last: its presence marks the artifact complete, so a
        # crash mid-write can never be mistaken for a valid cache entry.
        with manifest_path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"runs": len(results)}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        faults.corrupt_file(
            "service.store.save", manifest_path, name=_MANIFEST
        )

    def _load_from_disk(
        self, fingerprint: str
    ) -> list[EvolutionResult] | None:
        if self.artifact_dir is None:
            return None
        job_dir = self._job_dir(fingerprint)
        manifest_path = job_dir / _MANIFEST
        if not manifest_path.exists():
            return None
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            runs = int(manifest["runs"])
            # quarantine=True: a checksum-mismatched run directory is
            # renamed `.corrupt` before the error surfaces, so the torn
            # artifact can never be served later and re-execution lays a
            # fresh one down in its place.
            return [
                load_result(job_dir / f"run-{i:04d}", quarantine=True)
                for i in range(runs)
            ]
        except (CheckpointError, json.JSONDecodeError, KeyError, ValueError):
            # A torn or incompatible artifact is a miss, not an error —
            # the job simply re-executes and overwrites it.
            return None
