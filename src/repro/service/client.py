"""Programmatic client for the sweep service (urllib only, no deps).

:class:`SweepClient` speaks the :mod:`repro.service.server` wire protocol
and converts its error envelope back into the library's exception types:
``429`` -> :class:`~repro.errors.QueueFullError`, ``404`` on a job route ->
:class:`~repro.errors.JobNotFoundError`, ``400`` ->
:class:`~repro.errors.ConfigurationError`, anything else ->
:class:`~repro.errors.ServiceError` — so service callers handle failures
exactly like local :func:`~repro.api.run_sweep` callers do.

Typical use::

    from repro.service import SweepClient

    client = SweepClient("http://127.0.0.1:8642")
    job = client.submit_sweep(base_config, n_runs=16, base_seed=7)
    status = client.wait(job["job_id"])
    payload = client.result(job["job_id"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from ..api.sweep import derive_sweep_seeds
from ..core.config import EvolutionConfig
from ..errors import (
    ConfigurationError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from .jobspec import JobSpec

__all__ = ["SweepClient"]


class SweepClient:
    """Thin JSON/HTTP client for a running :class:`SweepServer`."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as err:
            raise self._to_exception(err) from None
        except urllib.error.URLError as err:
            raise ServiceError(
                f"cannot reach sweep service at {self.base_url}: {err.reason}"
            ) from None

    @staticmethod
    def _to_exception(err: urllib.error.HTTPError) -> ServiceError:
        try:
            body = json.loads(err.read().decode("utf-8"))
            detail = body.get("detail", "") or body.get("error", "")
        except Exception:
            detail = err.reason
        message = f"HTTP {err.code}: {detail}"
        if err.code == 429:
            return QueueFullError(message)
        if err.code == 404:
            return JobNotFoundError(message)
        if err.code == 400:
            return ConfigurationError(message)
        return ServiceError(message)

    # -- submission ------------------------------------------------------------

    def submit(self, spec: JobSpec | Mapping[str, Any]) -> dict[str, Any]:
        """Submit a job spec; returns the server's job-status dict.

        A cache hit comes back already ``done`` with ``cache_hit`` true.
        """
        payload = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        return self._request("POST", "/jobs", payload)

    def submit_sweep(
        self,
        config: EvolutionConfig,
        n_runs: int = 1,
        *,
        base_seed: int | None = None,
        backend: str = "ensemble",
        priority: str = "batch",
        label: str = "",
    ) -> dict[str, Any]:
        """Replicate ``config`` ``n_runs`` times and submit in one call.

        Seeds derive client-side via
        :func:`~repro.api.derive_sweep_seeds`, so the submitted spec is
        explicit about every run's seed (and fingerprints accordingly).
        """
        seeds = derive_sweep_seeds(
            config.seed if base_seed is None else base_seed, n_runs
        )
        configs = tuple(config.with_updates(seed=s) for s in seeds)
        spec = JobSpec(
            configs=configs, backend=backend, priority=priority, label=label
        )
        return self.submit(spec)

    # -- queries ---------------------------------------------------------------

    def job(self, job_id: str) -> dict[str, Any]:
        """One job's status (including live progress while running)."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """All job statuses the server remembers, oldest first."""
        return self._request("GET", "/jobs")["jobs"]

    def result(
        self,
        job_id: str,
        *,
        population: bool = True,
        events: bool = False,
    ) -> dict[str, Any]:
        """A finished job's result payload.

        Raises :class:`ServiceError` for a failed job; a still-running job
        returns a ``state != "done"`` body (use :meth:`wait` first).
        """
        flags = f"?population={int(population)}&events={int(events)}"
        return self._request("GET", f"/jobs/{job_id}/result{flags}")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.05,
    ) -> dict[str, Any]:
        """Poll until the job finishes; returns its final status dict."""
        deadline = time.monotonic() + timeout
        while True:
            status = self._request("GET", f"/jobs/{job_id}")
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for {job_id} "
                    f"(state={status['state']!r})"
                )
            time.sleep(poll_interval)

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")
