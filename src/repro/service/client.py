"""Programmatic client for the sweep service (urllib only, no deps).

:class:`SweepClient` speaks the :mod:`repro.service.server` wire protocol
and converts its error envelope back into the library's exception types:
``429`` -> :class:`~repro.errors.QueueFullError`, ``503`` ->
:class:`~repro.errors.DrainingError`, ``404`` on a job route ->
:class:`~repro.errors.JobNotFoundError`, ``400`` ->
:class:`~repro.errors.ConfigurationError`, anything else ->
:class:`~repro.errors.ServiceError` — so service callers handle failures
exactly like local :func:`~repro.api.run_sweep` callers do.

The client is also backpressure-polite:

* :meth:`submit` can retry ``429``/``503`` rejections, honoring the
  server's ``Retry-After`` header (attached to the raised exception as
  ``retry_after``) with capped decorrelated-jitter backoff between
  attempts, so a fleet of clients spreads out instead of stampeding a
  full or draining queue in lockstep.
* :meth:`wait` polls with the same decorrelated jitter, starting at
  ``poll_interval`` and backing off up to ``poll_cap`` — short jobs still
  resolve in ~one interval while long jobs don't get hammered at 20 Hz
  for minutes.

Both accept an injectable ``rng`` so tests pin the jitter sequence.

Typical use::

    from repro.service import SweepClient

    client = SweepClient("http://127.0.0.1:8642")
    job = client.submit_sweep(base_config, n_runs=16, base_seed=7)
    status = client.wait(job["job_id"])
    payload = client.result(job["job_id"])
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from ..api.sweep import derive_sweep_seeds
from ..core.config import EvolutionConfig
from ..errors import (
    ConfigurationError,
    DrainingError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from .jobspec import JobSpec

__all__ = ["SweepClient"]


class SweepClient:
    """Thin JSON/HTTP client for a running :class:`SweepServer`."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        rng: random.Random | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Jitter source for submit retries and wait polling (injectable so
        #: tests pin the sequence).
        self.rng = rng if rng is not None else random.Random()

    # -- transport -------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as err:
            raise self._to_exception(err) from None
        except urllib.error.URLError as err:
            raise ServiceError(
                f"cannot reach sweep service at {self.base_url}: {err.reason}"
            ) from None

    @staticmethod
    def _to_exception(err: urllib.error.HTTPError) -> ServiceError:
        try:
            body = json.loads(err.read().decode("utf-8"))
            detail = body.get("detail", "") or body.get("error", "")
        except Exception:
            detail = err.reason
        message = f"HTTP {err.code}: {detail}"
        retry_after = None
        raw = err.headers.get("Retry-After") if err.headers else None
        if raw is not None:
            try:
                retry_after = float(raw)
            except ValueError:
                pass
        if err.code == 429:
            exc: ServiceError = QueueFullError(message)
        elif err.code == 503:
            exc = DrainingError(message)
        elif err.code == 404:
            exc = JobNotFoundError(message)
        elif err.code == 400:
            exc = ConfigurationError(message)
        else:
            exc = ServiceError(message)
        #: Seconds the server asked us to back off (None when it didn't).
        exc.retry_after = retry_after  # type: ignore[attr-defined]
        return exc

    def _jittered(self, previous: float, base: float, cap: float) -> float:
        """Next decorrelated-jitter delay: uniform in [base, 3*previous],
        capped — successive draws decorrelate callers that started in sync.
        """
        return min(cap, self.rng.uniform(base, max(base, previous * 3.0)))

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        spec: JobSpec | Mapping[str, Any],
        *,
        retries: int = 0,
        backoff_cap: float = 10.0,
    ) -> dict[str, Any]:
        """Submit a job spec; returns the server's job-status dict.

        A cache hit comes back already ``done`` with ``cache_hit`` true.
        With ``retries`` > 0, ``429`` (queue full) and ``503`` (draining)
        rejections are retried up to that many times, sleeping the
        server's ``Retry-After`` when given (jittered backoff otherwise,
        capped at ``backoff_cap`` seconds) before each new attempt.
        """
        payload = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        delay = 0.05
        for attempt in range(retries + 1):
            try:
                return self._request("POST", "/jobs", payload)
            except (QueueFullError, DrainingError) as err:
                if attempt >= retries:
                    raise
                hinted = getattr(err, "retry_after", None)
                if hinted is not None:
                    delay = min(backoff_cap, hinted)
                else:
                    delay = self._jittered(delay, 0.05, backoff_cap)
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def submit_sweep(
        self,
        config: EvolutionConfig,
        n_runs: int = 1,
        *,
        base_seed: int | None = None,
        backend: str = "ensemble",
        priority: str = "batch",
        label: str = "",
        retries: int = 0,
    ) -> dict[str, Any]:
        """Replicate ``config`` ``n_runs`` times and submit in one call.

        Seeds derive client-side via
        :func:`~repro.api.derive_sweep_seeds`, so the submitted spec is
        explicit about every run's seed (and fingerprints accordingly).
        """
        seeds = derive_sweep_seeds(
            config.seed if base_seed is None else base_seed, n_runs
        )
        configs = tuple(config.with_updates(seed=s) for s in seeds)
        spec = JobSpec(
            configs=configs, backend=backend, priority=priority, label=label
        )
        return self.submit(spec, retries=retries)

    # -- queries ---------------------------------------------------------------

    def job(self, job_id: str) -> dict[str, Any]:
        """One job's status (including live progress while running)."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """All job statuses the server remembers, oldest first."""
        return self._request("GET", "/jobs")["jobs"]

    def result(
        self,
        job_id: str,
        *,
        population: bool = True,
        events: bool = False,
    ) -> dict[str, Any]:
        """A finished job's result payload.

        Raises :class:`ServiceError` for a failed job; a still-running job
        returns a ``state != "done"`` body (use :meth:`wait` first).
        """
        flags = f"?population={int(population)}&events={int(events)}"
        return self._request("GET", f"/jobs/{job_id}/result{flags}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a queued or running job (``DELETE /jobs/<id>``).

        The response's ``cancelled`` flag says whether the job was still
        cancellable; a running job aborts cooperatively shortly after.
        """
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.05,
        poll_cap: float = 2.0,
    ) -> dict[str, Any]:
        """Poll until the job finishes; returns its final status dict.

        Polling starts at ``poll_interval`` and backs off with
        decorrelated jitter up to ``poll_cap`` seconds, so long jobs are
        not hammered while short jobs still resolve promptly.
        """
        deadline = time.monotonic() + timeout
        delay = poll_interval
        while True:
            status = self._request("GET", f"/jobs/{job_id}")
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            now = time.monotonic()
            if now >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for {job_id} "
                    f"(state={status['state']!r})"
                )
            delay = self._jittered(delay, poll_interval, poll_cap)
            time.sleep(min(delay, max(0.0, deadline - now)))

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")
