"""Warm engine pools: cross-job reuse of deterministic pair evaluations.

Without a service, every ``run_sweep`` call pays its own payoff-matrix
fills.  The server keeps the existing
:func:`~repro.core.engine.shared_engine_pairs` store open for its whole
lifetime, so consecutive same-science jobs start from a warm matrix:
deterministic pair payoffs are pure functions of the two strategy tables
plus ``(rounds, payoff)`` — no seed, no population state — which is
exactly why the store may outlive any single job without touching
trajectories (only the ``cache_misses`` evaluation counters shrink).

Per-job policy follows :func:`~repro.api.run_sweep`'s ``share_engine``
semantics: ``None`` (the default) auto-enables for memory-one sweeps,
where the 16-strategy space guarantees reuse; a job spec can force it
either way.  ``run_sweep`` opens its own nested ``shared_engine_pairs()``
block per job — nesting keeps the outermost (server-lifetime) store, so
the pool composes with the existing machinery instead of duplicating it.

The store grows with every distinct strategy pair it sees; the pool trims
it (coarsely — a full clear, since entries are valued equally and cheap to
re-derive) once it crosses ``max_pairs``.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack

from ..core.engine import shared_engine_pairs

__all__ = ["WarmEnginePool"]


class WarmEnginePool:
    """Server-lifetime deterministic pair store (see module docstring).

    Use as a context manager (the server does), or call :meth:`open` /
    :meth:`close` explicitly.  While open, any ``run_sweep(share_engine=...)``
    executed in this process reads and publishes through the shared store.
    """

    def __init__(self, max_pairs: int = 4_000_000) -> None:
        self.max_pairs = max_pairs
        self._lock = threading.Lock()
        self._stack: ExitStack | None = None
        self._store: dict | None = None
        self.trims = 0

    # -- lifecycle -------------------------------------------------------------

    def open(self) -> "WarmEnginePool":
        with self._lock:
            if self._stack is None:
                stack = ExitStack()
                self._store = stack.enter_context(shared_engine_pairs())
                self._stack = stack
        return self

    def close(self) -> None:
        with self._lock:
            if self._stack is not None:
                self._stack.close()
                self._stack = None
                self._store = None

    def __enter__(self) -> "WarmEnginePool":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def is_open(self) -> bool:
        return self._stack is not None

    # -- accounting ------------------------------------------------------------

    def pairs_held(self) -> int:
        """Distinct evaluated pairs currently warm (all engine signatures)."""
        with self._lock:
            store = self._store
            if store is None:
                return 0
            return sum(len(pairs) for pairs in store.values())

    def after_job(self) -> None:
        """Bound the store after a job completes (coarse clear past the cap)."""
        with self._lock:
            store = self._store
            if store is None:
                return
            held = sum(len(pairs) for pairs in store.values())
            if held > self.max_pairs:
                store.clear()
                self.trims += 1

    def stats(self) -> dict:
        return {
            "open": self.is_open,
            "pairs_held": self.pairs_held(),
            "max_pairs": self.max_pairs,
            "trims": self.trims,
        }
