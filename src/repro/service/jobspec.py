"""Canonical sweep-job specification with a content-hash fingerprint.

A :class:`JobSpec` is the deterministic description of one
:func:`~repro.api.run_sweep` invocation: the fully-resolved config list
(seeds final — clients derive replicate seeds *before* submitting, so the
spec is explicit about the science it asks for) plus execution options.
It round-trips through plain dicts/JSON — the service's wire form — and
hashes to a stable :meth:`fingerprint` that keys the result cache.

The fingerprint covers the **science only**: the ordered config dicts,
minus the resume-neutral execution fields
(:data:`repro.core.runstate.RESUME_NEUTRAL_FIELDS` — checkpoint cadence,
array backend, paymat blocking, pool caps).  Execution options (backend,
workers, priority, engine sharing) are likewise excluded — every backend
follows the bit-identical trajectory for a given config and seed (pinned
by the repo's parity suites), so an ``ensemble``-executed result is a
valid cache hit for an ``event``-backend request, and a run submitted
*with* checkpointing hits the cache entry its uncheckpointed twin wrote.
Two submissions collide iff they ask for the same runs in the same order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..core.config import EvolutionConfig
from ..core.runstate import RESUME_NEUTRAL_FIELDS
from ..errors import ConfigurationError
from .retry import RetryPolicy

__all__ = ["JobSpec", "PRIORITIES", "SPEC_FORMAT_VERSION"]

#: Scheduling classes, highest urgency first.  ``interactive`` jobs jump
#: every queued ``batch`` job; within a class the queue is FIFO.
PRIORITIES = ("interactive", "batch")

#: Version stamped into the hashed payload — bump to invalidate every
#: cached fingerprint when the canonical form changes incompatibly.
#: Version 2 dropped the resume-neutral execution fields from the hashed
#: config dicts; the *wire* field set is unchanged, so :meth:`from_dict`
#: still accepts version-1 dicts (journals written by older builds replay).
SPEC_FORMAT_VERSION = 2

_READABLE_VERSIONS = (1, SPEC_FORMAT_VERSION)


@dataclass(frozen=True)
class JobSpec:
    """One sweep submission: the runs plus how to execute them.

    Parameters
    ----------
    configs:
        The runs, in result order.  Seeds are taken as-is (derive replicate
        seeds with :func:`~repro.api.derive_sweep_seeds` first).
    backend:
        Backend name for :func:`~repro.api.run_sweep` (default
        ``ensemble`` — the lane-batched fast path is the service's bread
        and butter).  Validated against the registry at submit time.
    workers:
        ``run_sweep`` process-pool size (``None`` = in-process, the
        default: service jobs already share a worker pool, and in-process
        execution is what lets progress ticks stream to the job status).
    share_engine:
        Per-job override of ``run_sweep``'s deterministic pair sharing
        (``None`` = the auto rule).  The server keeps the share store warm
        across jobs (:class:`~repro.service.pools.WarmEnginePool`).
    priority:
        ``"interactive"`` or ``"batch"`` (scheduling only — not part of
        the fingerprint).
    label:
        Free-form caller tag echoed in job listings.
    retry:
        :class:`~repro.service.retry.RetryPolicy` for transient failures
        (``None`` = the single-attempt default).  Execution envelope only
        — like every option below ``configs``, never fingerprinted.
    timeout:
        Wall-clock seconds the job may run before it is cancelled
        cooperatively at progress-tick cadence (``None`` = no timeout).
    """

    configs: tuple[EvolutionConfig, ...]
    backend: str = "ensemble"
    workers: int | None = None
    share_engine: bool | None = None
    priority: str = "batch"
    label: str = ""
    retry: RetryPolicy | None = None
    timeout: float | None = None
    #: Cached fingerprint (computed lazily; excluded from equality).
    _fingerprint: str | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.configs, tuple):
            object.__setattr__(self, "configs", tuple(self.configs))
        if not self.configs:
            raise ConfigurationError("a job spec needs at least one config")
        for i, config in enumerate(self.configs):
            if not isinstance(config, EvolutionConfig):
                raise ConfigurationError(
                    f"configs[{i}]: expected an EvolutionConfig, got "
                    f"{type(config).__name__}"
                )
        if not isinstance(self.backend, str) or not self.backend:
            raise ConfigurationError(
                f"field 'backend': expected a backend name, got "
                f"{self.backend!r}"
            )
        if self.workers is not None and (
            isinstance(self.workers, bool) or not isinstance(self.workers, int)
        ):
            raise ConfigurationError(
                f"field 'workers': expected an integer or null, got "
                f"{self.workers!r}"
            )
        if self.priority not in PRIORITIES:
            raise ConfigurationError(
                f"field 'priority': expected one of {PRIORITIES}, got "
                f"{self.priority!r}"
            )
        if not isinstance(self.label, str):
            raise ConfigurationError(
                f"field 'label': expected a string, got {self.label!r}"
            )
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise ConfigurationError(
                f"field 'retry': expected a RetryPolicy or None, got "
                f"{type(self.retry).__name__}"
            )
        if self.timeout is not None:
            if isinstance(self.timeout, bool) or not isinstance(
                self.timeout, (int, float)
            ):
                raise ConfigurationError(
                    f"field 'timeout': expected a number or null, got "
                    f"{self.timeout!r}"
                )
            if self.timeout <= 0:
                raise ConfigurationError(
                    f"field 'timeout': must be > 0 seconds, got {self.timeout}"
                )

    # -- identity --------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the science (see module docstring)."""
        cached = self._fingerprint
        if cached is None:
            payload = {
                "format": SPEC_FORMAT_VERSION,
                "configs": [
                    {
                        k: v
                        for k, v in c.to_dict().items()
                        if k not in RESUME_NEUTRAL_FIELDS
                    }
                    for c in self.configs
                ],
            }
            canonical = json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- dict / JSON round-trip -----------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible wire form (``from_dict`` inverts it)."""
        return {
            "version": SPEC_FORMAT_VERSION,
            "configs": [c.to_dict() for c in self.configs],
            "backend": self.backend,
            "workers": self.workers,
            "share_engine": self.share_engine,
            "priority": self.priority,
            "label": self.label,
            "retry": self.retry.to_dict() if self.retry is not None else None,
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Build a spec from :meth:`to_dict` output (strict validation)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"JobSpec.from_dict needs a mapping, got {type(data).__name__}"
            )
        known = {
            "version", "configs", "backend", "workers", "share_engine",
            "priority", "label", "retry", "timeout",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown JobSpec field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        version = data.get("version", SPEC_FORMAT_VERSION)
        if version not in _READABLE_VERSIONS:
            raise ConfigurationError(
                f"job spec version {version!r} is not supported "
                f"(this server speaks versions {_READABLE_VERSIONS})"
            )
        raw_configs = data.get("configs")
        if not isinstance(raw_configs, Sequence) or isinstance(
            raw_configs, (str, bytes)
        ):
            raise ConfigurationError(
                "field 'configs': expected a list of config dicts"
            )
        configs = []
        for i, raw in enumerate(raw_configs):
            try:
                configs.append(EvolutionConfig.from_dict(raw))
            except ConfigurationError as err:
                raise ConfigurationError(f"configs[{i}]: {err}") from err
        share = data.get("share_engine")
        if share is not None and not isinstance(share, bool):
            raise ConfigurationError(
                f"field 'share_engine': expected a boolean or null, got "
                f"{share!r}"
            )
        raw_retry = data.get("retry")
        retry = (
            RetryPolicy.from_dict(raw_retry) if raw_retry is not None else None
        )
        return cls(
            configs=tuple(configs),
            backend=data.get("backend", "ensemble"),
            workers=data.get("workers"),
            share_engine=share,
            priority=data.get("priority", "batch"),
            label=data.get("label", ""),
            retry=retry,
            timeout=data.get("timeout"),
        )

    def summary(self) -> str:
        """One-line human description for listings and logs."""
        head = self.configs[0]
        return (
            f"{len(self.configs)} run(s) x {head.generations:,} gen "
            f"[{head.summary()}] backend={self.backend} "
            f"priority={self.priority}"
            + (f" label={self.label!r}" if self.label else "")
        )
