"""Durable job journal: an append-only JSONL write-ahead log for the queue.

PR 6's queue kept every admitted job in memory only — one process restart
lost the whole backlog.  :class:`JobJournal` makes admission durable the
same way :mod:`repro.io.results_writer` makes artifacts durable: small
fsync'd JSONL records, with completeness decided by *what is present*
rather than by in-place mutation.

One line per lifecycle transition::

    {"type": "submitted", "job_id": ..., "fingerprint": ..., "spec": {...}}
    {"type": "started",   "job_id": ..., "attempt": 1}
    {"type": "done",      "job_id": ...}
    {"type": "failed",    "job_id": ..., "error": "..."}
    {"type": "cancelled", "job_id": ..., "reason": "..."}

A job is *pending* iff its ``submitted`` record has no terminal record
(``done`` / ``failed`` / ``cancelled``) after it — in-flight jobs crash
back to pending, which is exactly right: every run is deterministic given
its spec (fingerprints pin the science), so re-executing an interrupted
job reproduces the bit-identical result, and finished jobs whose artifacts
live in the disk store replay straight into cache hits.

:meth:`replay` tolerates a torn final line (the crash happened mid-append)
and unknown record types (forward compatibility).  On restart the queue
replays pending jobs, then :meth:`reset` compacts the journal — an atomic
tmp-write-fsync-rename, manifest-last style — before journaling the
re-admissions afresh, so the log never grows across restart cycles.

Every append is a :mod:`repro.faults` site (``"service.journal"``), so the
durability tests can kill writes at chosen records.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import IO, Any

from .. import faults
from ..errors import ServiceError

__all__ = ["JobJournal", "JOURNAL_FORMAT_VERSION", "TERMINAL_TYPES"]

JOURNAL_FORMAT_VERSION = 1

#: Record types that end a job's journal lifecycle.
TERMINAL_TYPES = ("done", "failed", "cancelled")


class JobJournal:
    """Append-only fsync'd JSONL WAL of job admissions (see module doc)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh: IO[str] | None = None
        self.records_written = 0

    # -- appending -------------------------------------------------------------

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        return self._fh

    def record(self, type: str, job_id: str, **fields: Any) -> None:
        """Append one record and force it to stable storage."""
        payload = {"type": type, "job_id": job_id, **fields}
        line = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        with self._lock:
            faults.check("service.journal", type=type, job_id=job_id)
            fh = self._handle()
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
            self.records_written += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- recovery --------------------------------------------------------------

    @staticmethod
    def replay(path: str | Path) -> list[dict[str, Any]]:
        """Pending ``submitted`` records of the journal at ``path``.

        Returns them in admission order; an absent journal is an empty
        backlog.  A torn trailing line (crash mid-append) is skipped; a
        torn line anywhere else raises :class:`~repro.errors.ServiceError`
        — that journal was tampered with, not crash-truncated, and silently
        dropping admitted jobs is the one thing a WAL must never do.
        """
        path = Path(path)
        if not path.exists():
            return []
        pending: dict[str, dict[str, Any]] = {}
        raw = path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        # A complete journal ends with "\n": the final split element is "".
        last_index = len(lines) - 1
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                if i == last_index:
                    break  # torn tail — the crash interrupted this append
                raise ServiceError(
                    f"job journal {path} is corrupt at line {i + 1}: {err}"
                ) from err
            rtype = record.get("type")
            job_id = record.get("job_id")
            if not isinstance(job_id, str):
                continue
            if rtype == "submitted":
                pending[job_id] = record
            elif rtype in TERMINAL_TYPES:
                pending.pop(job_id, None)
        return list(pending.values())

    def reset(self) -> None:
        """Atomically truncate the journal (the post-replay compaction)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                fh.flush()
                os.fsync(fh.fileno())
            tmp.replace(self.path)
