"""Per-job retry policy: bounded attempts, backoff, error classification.

A :class:`RetryPolicy` rides on the :class:`~repro.service.jobspec.JobSpec`
(execution envelope only — never part of the science fingerprint) and
tells the queue how to treat a failed attempt:

* **classification** — *transient* errors (worker hiccups, flaky I/O:
  :class:`~repro.errors.TransientError`, ``OSError``, ``ConnectionError``,
  ``TimeoutError`` by default, overridable by name) are retried;
  everything else — bad configs, programming errors — is *permanent* and
  fails the job immediately, because re-running a deterministic job
  against the same bug reproduces the same crash.
* **exponential backoff with deterministic jitter** — the delay before
  attempt N+1 grows as ``base_delay * factor**(N-1)`` capped at
  ``max_delay``, scaled by a jitter fraction derived from a sha256 of the
  job's fingerprint and the attempt number.  Deterministic jitter keeps
  the fault-injection suites exactly reproducible while still decorrelating
  distinct jobs' retry storms (two jobs never share a fingerprint unless
  they are the same science — in which case they coalesce instead of
  retrying side by side).

The default policy (``max_attempts=1``) preserves PR 6 behavior: one
attempt, no retries, opt in per job.
"""

from __future__ import annotations

import builtins
import hashlib
from dataclasses import dataclass
from typing import Any, Mapping

from .. import errors
from ..errors import ConfigurationError

__all__ = ["RetryPolicy", "DEFAULT_TRANSIENT"]

#: Exception class names the default policy treats as retryable.
DEFAULT_TRANSIENT = (
    "TransientError",
    "OSError",
    "ConnectionError",
    "TimeoutError",
)


def _resolve(name: str) -> type[BaseException]:
    cls = getattr(errors, name, None)
    if cls is None:
        cls = getattr(builtins, name, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        raise ConfigurationError(
            f"retry transient class {name!r} is not a repro.errors or "
            "builtin exception class"
        )
    return cls


@dataclass(frozen=True)
class RetryPolicy:
    """How the queue re-attempts a job that failed transiently."""

    max_attempts: int = 1
    base_delay: float = 0.1
    max_delay: float = 30.0
    factor: float = 2.0
    #: Fraction of each delay that jitters: 0.0 = none, 1.0 = the whole
    #: delay scales by the deterministic [0, 1) draw.
    jitter: float = 0.5
    transient: tuple[str, ...] = DEFAULT_TRANSIENT

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.factor < 1.0:
            raise ConfigurationError(
                f"backoff factor must be >= 1, got {self.factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if not isinstance(self.transient, tuple):
            object.__setattr__(self, "transient", tuple(self.transient))
        for name in self.transient:
            _resolve(name)  # fail fast on unknown names

    # -- behavior --------------------------------------------------------------

    def is_transient(self, err: BaseException) -> bool:
        """Whether ``err`` is worth another attempt under this policy."""
        return isinstance(err, tuple(_resolve(n) for n in self.transient))

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based).

        Deterministic: the jitter fraction is a pure function of ``key``
        (the job fingerprint) and ``attempt``.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.max_delay, self.base_delay * self.factor ** (attempt - 1))
        if self.jitter == 0.0 or delay == 0.0:
            return delay
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return delay * (1.0 - self.jitter + self.jitter * fraction)

    # -- wire form -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "factor": self.factor,
            "jitter": self.jitter,
            "transient": list(self.transient),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"retry policy must be a mapping, got {type(data).__name__}"
            )
        known = {
            "max_attempts", "base_delay", "max_delay", "factor", "jitter",
            "transient",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown retry policy field(s): {', '.join(unknown)}"
            )
        transient = data.get("transient", DEFAULT_TRANSIENT)
        if isinstance(transient, str) or not all(
            isinstance(n, str) for n in transient
        ):
            raise ConfigurationError(
                "retry 'transient' must be a list of exception class names"
            )
        return cls(
            max_attempts=data.get("max_attempts", 1),
            base_delay=data.get("base_delay", 0.1),
            max_delay=data.get("max_delay", 30.0),
            factor=data.get("factor", 2.0),
            jitter=data.get("jitter", 0.5),
            transient=tuple(transient),
        )
