"""Stdlib JSON-over-HTTP front door for the sweep service.

One :class:`SweepServer` wraps a :class:`~repro.service.queue.JobQueue`
behind a :class:`http.server.ThreadingHTTPServer` — no frameworks, no new
dependencies.  The wire protocol is deliberately small:

==========  =============================  =======================================
method      path                           meaning
==========  =============================  =======================================
``POST``    ``/jobs``                      submit a :class:`JobSpec` dict ->
                                           ``200`` cache hit, ``202`` accepted,
                                           ``400`` bad spec, ``429`` queue full
                                           (with ``Retry-After``), ``503``
                                           draining (with ``Retry-After``)
``GET``     ``/jobs``                      list job statuses
``GET``     ``/jobs/<id>``                 one job's status (incl. live progress)
``GET``     ``/jobs/<id>/result``          results -> ``200`` done, ``202`` still
                                           running, ``404`` unknown, ``500`` failed
``DELETE``  ``/jobs/<id>``                 cancel a queued or running job ->
                                           ``200`` (``cancelled`` says whether it
                                           was still cancellable), ``404`` unknown
``GET``     ``/stats``                     queue / store / pool counters
``GET``     ``/healthz``                   liveness probe
==========  =============================  =======================================

``/jobs/<id>/result`` takes ``?population=0`` and ``?events=1`` query
flags controlling payload size (see :func:`repro.io.result_to_dict`).

Responses are always JSON objects; errors carry ``{"error": ..., "detail":
...}``.  Bind to port ``0`` to let the OS pick (tests do) — the chosen
port is on :attr:`SweepServer.port` after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..errors import (
    ConfigurationError,
    DrainingError,
    JobNotFoundError,
    QueueFullError,
    ReproError,
)
from ..io.results_writer import result_to_dict
from .jobspec import JobSpec
from .queue import Job, JobQueue, JobState

__all__ = ["SweepServer"]

_MAX_BODY = 64 * 1024 * 1024  # refuse absurd request bodies outright


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`SweepServer` (one per conn)."""

    # Set by SweepServer when the handler class is bound to a server.
    service: "SweepServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.service.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        error: str,
        detail: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_json(status, {"error": error, "detail": detail}, headers)

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ConfigurationError("request body is empty (expected JSON)")
        if length > _MAX_BODY:
            raise ConfigurationError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ConfigurationError(f"request body is not valid JSON: {err}")

    # -- routes ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        if parsed.path.rstrip("/") != "/jobs":
            self._send_error_json(404, "not_found", f"no route {self.path!r}")
            return
        try:
            payload = self._read_json_body()
            spec = JobSpec.from_dict(payload)
            job = self.service.queue.submit(spec)
        except QueueFullError as err:
            # Retry-After lets well-behaved clients back off instead of
            # hammering a full queue (SweepClient honors it).
            self._send_error_json(
                429, "queue_full", str(err), {"Retry-After": "1"}
            )
            return
        except DrainingError as err:
            self._send_error_json(
                503, "draining", str(err), {"Retry-After": "5"}
            )
            return
        except (ConfigurationError, ReproError) as err:
            self._send_error_json(400, "bad_request", str(err))
            return
        status = 200 if job.cache_hit else 202
        self._send_json(status, job.status_dict())

    def do_DELETE(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if len(parts) != 2 or parts[0] != "jobs":
            self._send_error_json(404, "not_found", f"no route {self.path!r}")
            return
        try:
            cancelled = self.service.queue.cancel(parts[1])
        except JobNotFoundError as err:
            self._send_error_json(404, "job_not_found", str(err))
            return
        job = self.service.queue.get(parts[1])
        self._send_json(
            200,
            {
                "job_id": job.job_id,
                "cancelled": cancelled,
                "state": job.state,
            },
        )

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        try:
            if parts == ["healthz"]:
                self._send_json(
                    200, {"status": "ok", "version": __version__}
                )
            elif parts == ["stats"]:
                self._send_json(200, self.service.stats())
            elif parts == ["jobs"]:
                self._send_json(
                    200,
                    {
                        "jobs": [
                            j.status_dict() for j in self.service.queue.jobs()
                        ]
                    },
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self.service.queue.get(parts[1])
                self._send_json(200, job.status_dict())
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "result"
            ):
                self._send_result(self.service.queue.get(parts[1]), query)
            else:
                self._send_error_json(
                    404, "not_found", f"no route {self.path!r}"
                )
        except JobNotFoundError as err:
            self._send_error_json(404, "job_not_found", str(err))

    def _send_result(self, job: Job, query: dict[str, list[str]]) -> None:
        if job.state == JobState.FAILED:
            self._send_error_json(
                500, "job_failed", job.error or "job failed"
            )
            return
        if job.state != JobState.DONE or job.results is None:
            self._send_json(
                202,
                {
                    "job_id": job.job_id,
                    "state": job.state,
                    "detail": "job not finished; poll again",
                    "progress": job.status_dict()["progress"],
                },
            )
            return
        include_population = _flag(query, "population", default=True)
        include_events = _flag(query, "events", default=False)
        self._send_json(
            200,
            {
                "job_id": job.job_id,
                "state": job.state,
                "cache_hit": job.cache_hit,
                "fingerprint": job.fingerprint,
                "results": [
                    result_to_dict(
                        r,
                        include_population=include_population,
                        include_events=include_events,
                    )
                    for r in job.results
                ],
            },
        )


def _flag(query: dict[str, list[str]], name: str, *, default: bool) -> bool:
    values = query.get(name)
    if not values:
        return default
    return values[-1].strip().lower() not in ("0", "false", "no", "off", "")


class SweepServer:
    """The sweep service's HTTP surface (see module docstring).

    Owns a :class:`JobQueue` (constructed from the keyword arguments
    unless an existing one is passed) and serves it over a threading HTTP
    server.  Use as a context manager, or :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        queue: JobQueue | None = None,
        verbose: bool = False,
        **queue_opts: Any,
    ) -> None:
        if queue is not None and queue_opts:
            raise ConfigurationError(
                "pass either an existing queue or queue options, not both: "
                f"got queue plus {sorted(queue_opts)}"
            )
        self.host = host
        self.queue = queue if queue is not None else JobQueue(**queue_opts)
        self._owns_queue = queue is None
        self.verbose = verbose
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stats(self) -> dict[str, Any]:
        pool = self.queue.pool
        return {
            "version": __version__,
            "queue": self.queue.stats(),
            "store": self.queue.store.stats(),
            "pool": pool.stats() if pool is not None else None,
        }

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "SweepServer":
        """Serve in a background thread; returns immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="sweep-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` entry point)."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def drain(self, timeout: float = 30.0) -> dict[str, int]:
        """Graceful shutdown: 503 new submissions, settle running jobs,
        journal the backlog, then stop serving (the SIGTERM path).

        The HTTP front door stays up *during* the drain so in-flight
        clients can keep polling their jobs (submissions get ``503`` +
        ``Retry-After`` from the first moment); it closes only once the
        queue has settled.  Returns the queue's drain counters.
        """
        summary = self.queue.drain(timeout)
        self.stop()
        return summary

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if self._owns_queue:
            self.queue.close()

    def __enter__(self) -> "SweepServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
