"""Network cost models for the MPI simulator.

The simulator asks a :class:`NetworkModel` how long each communication
operation takes in virtual time.  Point-to-point messages follow a
LogGP-style model over the machine's torus (latency + per-hop delay +
bandwidth term); collectives follow a tree model over the machine's
collective network (Blue Gene has a dedicated hardware tree for
broadcast/reduce, paper Section V.B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError

__all__ = ["P2PCost", "NetworkModel", "UniformNetwork"]


@dataclass(frozen=True)
class P2PCost:
    """Cost decomposition of one point-to-point message."""

    #: CPU time the sender spends injecting the message.
    send_overhead: float
    #: Delay until the message is available at the receiver (network time).
    transit: float
    #: CPU time the receiver spends extracting the message.
    recv_overhead: float


class NetworkModel:
    """Parameterised network cost model.

    Parameters
    ----------
    n_ranks:
        Communicator size.
    alpha_p2p:
        Base point-to-point latency (seconds).
    beta_p2p:
        Point-to-point inverse bandwidth (seconds per byte).
    hop_latency:
        Additional latency per torus hop.
    hops:
        ``hops(src, dst)`` -> hop count; ``None`` means a flat network.
    alpha_coll:
        Per-tree-level latency of the collective network.
    beta_coll:
        Collective inverse bandwidth (seconds per byte).
    overhead:
        CPU injection/extraction overhead per message endpoint.
    """

    def __init__(
        self,
        n_ranks: int,
        alpha_p2p: float = 2e-6,
        beta_p2p: float = 1.0 / 375e6,
        hop_latency: float = 50e-9,
        hops: Callable[[int, int], int] | None = None,
        alpha_coll: float = 2e-6,
        beta_coll: float = 1.0 / 700e6,
        overhead: float = 5e-7,
    ):
        if n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1, got {n_ranks}")
        for name, v in (
            ("alpha_p2p", alpha_p2p),
            ("beta_p2p", beta_p2p),
            ("hop_latency", hop_latency),
            ("alpha_coll", alpha_coll),
            ("beta_coll", beta_coll),
            ("overhead", overhead),
        ):
            if v < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {v}")
        self.n_ranks = n_ranks
        self.alpha_p2p = alpha_p2p
        self.beta_p2p = beta_p2p
        self.hop_latency = hop_latency
        self.hops = hops
        self.alpha_coll = alpha_coll
        self.beta_coll = beta_coll
        self.overhead = overhead

    # -- point-to-point -----------------------------------------------------

    def p2p(self, src: int, dst: int, nbytes: int) -> P2PCost:
        """Cost of one point-to-point message."""
        if src == dst:
            return P2PCost(self.overhead, 0.0, self.overhead)
        hops = self.hops(src, dst) if self.hops is not None else 1
        transit = self.alpha_p2p + hops * self.hop_latency + nbytes * self.beta_p2p
        return P2PCost(self.overhead, transit, self.overhead)

    # -- collectives ------------------------------------------------------------

    def _tree_depth(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.n_ranks))))

    def bcast(self, nbytes: int) -> float:
        """One broadcast over the collective network (tree pipeline)."""
        return self.alpha_coll * self._tree_depth() + nbytes * self.beta_coll

    def reduce(self, nbytes: int) -> float:
        """Tree reduction has the broadcast's cost structure."""
        return self.bcast(nbytes)

    def allreduce(self, nbytes: int) -> float:
        """Reduce followed by broadcast on the tree network."""
        return 2.0 * self.bcast(nbytes)

    def gather(self, nbytes: int) -> float:
        """Gather serialises payloads through the root's link."""
        return (
            self.alpha_coll * self._tree_depth()
            + nbytes * max(1, self.n_ranks - 1) * self.beta_coll
        )

    def barrier(self) -> float:
        """Barrier = zero-byte allreduce."""
        return self.allreduce(0)


class UniformNetwork(NetworkModel):
    """Flat network with a single latency/bandwidth (useful in tests)."""

    def __init__(self, n_ranks: int, latency: float = 1e-6, bandwidth: float = 1e9):
        super().__init__(
            n_ranks,
            alpha_p2p=latency,
            beta_p2p=1.0 / bandwidth,
            hop_latency=0.0,
            hops=None,
            alpha_coll=latency,
            beta_coll=1.0 / bandwidth,
            overhead=0.0,
        )
