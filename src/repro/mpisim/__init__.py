"""Discrete-event MPI simulator.

Rank programs are Python generators yielding :mod:`~repro.mpisim.ops`
operations; the :class:`~repro.mpisim.simulator.Simulator` executes them in
virtual time against a :class:`~repro.mpisim.network.NetworkModel`.  This is
the substitute substrate for the paper's Blue Gene MPI runs (see DESIGN.md
section 2): small-scale runs execute the *real* algorithm with real data,
while virtual time comes from the machine model.
"""

from .network import NetworkModel, P2PCost, UniformNetwork
from .ops import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Irecv,
    Isend,
    Op,
    Recv,
    Reduce,
    Send,
    Wait,
)
from .simulator import RankTrace, Request, SimulationReport, Simulator

__all__ = [
    "ANY_SOURCE",
    "Allreduce",
    "Barrier",
    "Bcast",
    "Compute",
    "Gather",
    "Irecv",
    "Isend",
    "Op",
    "Recv",
    "Reduce",
    "Send",
    "Wait",
    "NetworkModel",
    "P2PCost",
    "UniformNetwork",
    "RankTrace",
    "Request",
    "SimulationReport",
    "Simulator",
]
