"""Operations a rank program can yield to the discrete-event simulator.

A rank program is a Python generator.  It *yields* one of these operation
objects and is resumed with the operation's result:

* :class:`Compute` — advance the rank's local clock (result ``None``);
* :class:`Send` / :class:`Isend` — eager message transmission;
* :class:`Recv` / :class:`Irecv` — matched by ``(source, tag)``;
* :class:`Wait` — complete a non-blocking request;
* :class:`Bcast`, :class:`Gather`, :class:`Reduce`, :class:`Barrier`,
  :class:`Allreduce` — collectives: every rank in the communicator must
  yield the matching collective in the same order (MPI semantics).

Message *sizes* are explicit (bytes) because the virtual time cost comes
from the machine's network model; *payloads* are real Python objects so
executable-mode programs carry real science data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "ANY_SOURCE",
    "Op",
    "Compute",
    "Send",
    "Isend",
    "Recv",
    "Irecv",
    "Wait",
    "Bcast",
    "Gather",
    "Reduce",
    "Allreduce",
    "Barrier",
]

#: Wildcard source for Recv/Irecv (like MPI_ANY_SOURCE).
ANY_SOURCE: int = -1


class Op:
    """Base class for simulator operations."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Op):
    """Spend ``seconds`` of local computation time.

    ``label`` feeds the tracing breakdown (e.g. ``"games"``, ``"fermi"``).
    """

    seconds: float
    label: str = "compute"


@dataclass(frozen=True)
class Send(Op):
    """Blocking (buffered-eager) send: completes after the local overhead."""

    dest: int
    tag: int
    nbytes: int
    payload: Any = None


@dataclass(frozen=True)
class Isend(Op):
    """Non-blocking send; result is a request handle for :class:`Wait`."""

    dest: int
    tag: int
    nbytes: int
    payload: Any = None


@dataclass(frozen=True)
class Recv(Op):
    """Blocking receive matched by ``(source, tag)``; result is the payload."""

    source: int
    tag: int


@dataclass(frozen=True)
class Irecv(Op):
    """Non-blocking receive; result is a request handle for :class:`Wait`."""

    source: int
    tag: int


@dataclass(frozen=True)
class Wait(Op):
    """Block until ``request`` completes; result is the request's value."""

    request: Any


@dataclass(frozen=True)
class Bcast(Op):
    """Broadcast ``payload`` (significant at the root) to every rank."""

    root: int
    nbytes: int
    payload: Any = None


@dataclass(frozen=True)
class Gather(Op):
    """Gather every rank's ``payload``; the root's result is a list by rank."""

    root: int
    nbytes: int
    payload: Any = None


@dataclass(frozen=True)
class Reduce(Op):
    """Reduce payloads with ``op`` (default sum); result significant at root."""

    root: int
    nbytes: int
    payload: Any = None
    op: Callable[[Any, Any], Any] = field(default=lambda a, b: a + b)


@dataclass(frozen=True)
class Allreduce(Op):
    """Reduce payloads with ``op``; every rank receives the result."""

    nbytes: int
    payload: Any = None
    op: Callable[[Any, Any], Any] = field(default=lambda a, b: a + b)


@dataclass(frozen=True)
class Barrier(Op):
    """Synchronize all ranks."""
