"""Conservative discrete-event simulator for MPI-style rank programs.

Every rank is a Python generator that yields :mod:`repro.mpisim.ops`
operations and is resumed with each operation's result.  The simulator keeps
one virtual clock per rank and advances ranks until they block:

* ``Compute`` advances the local clock;
* sends are *eager*: the message is deposited at the destination with an
  arrival time derived from the network model, and the sender proceeds after
  its injection overhead (like a buffered MPI send);
* ``Recv``/``Wait`` block until a matching message exists, then set the local
  clock to ``max(own clock, arrival) + overhead`` — the waiting gap is
  accounted as communication time;
* collectives synchronize: the k-th collective yielded by each rank forms
  one *slot*; when all ranks have arrived the slot completes at
  ``max(arrival clocks) + network cost`` and every participant resumes with
  its result.

The scheduler iterates over ranks in index order, running each until it
blocks; a sweep with no progress while ranks remain unfinished raises
:class:`~repro.errors.DeadlockError` with a per-rank diagnostic.  Virtual
time is causally correct because a receive's completion only depends on the
sender's (already final) clock; determinism holds whenever programs avoid
``ANY_SOURCE`` races (matching for ``ANY_SOURCE`` picks the earliest
arrival, tie-broken by source rank).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import CommunicationError, DeadlockError
from .network import NetworkModel
from .ops import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Irecv,
    Isend,
    Op,
    Recv,
    Reduce,
    Send,
    Wait,
)

__all__ = ["Request", "RankTrace", "SimulationReport", "Simulator"]


@dataclass
class Request:
    """Handle for a non-blocking operation."""

    kind: str  # "send" | "recv"
    rank: int
    source: int = ANY_SOURCE
    tag: int = 0
    complete_time: float | None = None
    value: Any = None

    @property
    def done(self) -> bool:
        return self.complete_time is not None


@dataclass
class _Message:
    arrival: float
    payload: Any
    nbytes: int
    seq: int


@dataclass
class RankTrace:
    """Per-rank virtual-time accounting."""

    rank: int
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    compute_by_label: dict[str, float] = field(default_factory=dict)
    #: (op name, start, end) tuples when event tracing is enabled.
    events: list[tuple[str, float, float]] = field(default_factory=list)

    def _add_compute(self, label: str, seconds: float) -> None:
        self.compute_seconds += seconds
        self.compute_by_label[label] = (
            self.compute_by_label.get(label, 0.0) + seconds
        )


@dataclass
class SimulationReport:
    """Result of one simulated run."""

    n_ranks: int
    finish_times: list[float]
    traces: list[RankTrace]

    @property
    def makespan(self) -> float:
        """Virtual wallclock of the whole job (slowest rank)."""
        return max(self.finish_times)

    @property
    def total_compute(self) -> float:
        return sum(t.compute_seconds for t in self.traces)

    @property
    def total_comm(self) -> float:
        return sum(t.comm_seconds for t in self.traces)

    def compute_by_label(self) -> dict[str, float]:
        """Aggregate labelled compute time across ranks."""
        out: dict[str, float] = {}
        for t in self.traces:
            for label, sec in t.compute_by_label.items():
                out[label] = out.get(label, 0.0) + sec
        return out


@dataclass
class _CollectiveSlot:
    ops: dict[int, Op] = field(default_factory=dict)
    arrivals: dict[int, float] = field(default_factory=dict)


class _RankState:
    __slots__ = ("gen", "clock", "blocked_on", "send_value", "finished", "coll_seq")

    def __init__(self, gen: Iterator[Op]):
        self.gen = gen
        self.clock = 0.0
        self.blocked_on: Op | None = None
        self.send_value: Any = None
        self.finished = False
        self.coll_seq = 0


class Simulator:
    """Run rank programs against a network model in virtual time."""

    #: Safety valve: events recorded per rank when tracing is enabled.
    MAX_TRACE_EVENTS = 10_000

    def __init__(
        self,
        n_ranks: int,
        network: NetworkModel,
        trace_events: bool = False,
    ):
        if network.n_ranks != n_ranks:
            raise CommunicationError(
                f"network model sized for {network.n_ranks} ranks, "
                f"simulator has {n_ranks}"
            )
        self.n_ranks = n_ranks
        self.network = network
        self.trace_events = trace_events
        self._mailbox: dict[tuple[int, int, int], list[_Message]] = {}
        self._collectives: dict[int, _CollectiveSlot] = {}
        self._msg_seq = 0
        self._resume_values: dict[int, Any] = {}

    # -- message plumbing -----------------------------------------------------

    def _deposit(
        self, src: int, dst: int, tag: int, nbytes: int, payload: Any, arrival: float
    ) -> None:
        if not 0 <= dst < self.n_ranks:
            raise CommunicationError(f"send to invalid rank {dst}")
        self._msg_seq += 1
        self._mailbox.setdefault((dst, src, tag), []).append(
            _Message(arrival, payload, nbytes, self._msg_seq)
        )

    def _match(self, dst: int, src: int, tag: int) -> _Message | None:
        if src != ANY_SOURCE:
            queue = self._mailbox.get((dst, src, tag))
            if not queue:
                return None
            msg = min(queue, key=lambda m: (m.arrival, m.seq))
            queue.remove(msg)
            return msg
        candidates: list[tuple[float, int, tuple[int, int, int], _Message]] = []
        for key, queue in self._mailbox.items():
            if key[0] == dst and key[2] == tag and queue:
                msg = min(queue, key=lambda m: (m.arrival, m.seq))
                candidates.append((msg.arrival, key[1], key, msg))
        if not candidates:
            return None
        _, _, key, msg = min(candidates, key=lambda c: (c[0], c[1]))
        self._mailbox[key].remove(msg)
        return msg

    # -- execution --------------------------------------------------------------

    def run(self, programs: list[Iterator[Op]]) -> SimulationReport:
        """Execute the given rank programs to completion."""
        if len(programs) != self.n_ranks:
            raise CommunicationError(
                f"expected {self.n_ranks} programs, got {len(programs)}"
            )
        states = [_RankState(gen) for gen in programs]
        traces = [RankTrace(rank=r) for r in range(self.n_ranks)]

        unfinished = set(range(self.n_ranks))
        while unfinished:
            progressed = False
            for rank in sorted(unfinished):
                if self._run_rank(rank, states, traces):
                    progressed = True
            for rank in list(unfinished):
                if states[rank].finished:
                    unfinished.discard(rank)
            if not progressed and unfinished:
                raise DeadlockError(self._deadlock_report(states, unfinished))
        finish = [states[r].clock for r in range(self.n_ranks)]
        return SimulationReport(self.n_ranks, finish, traces)

    def _run_rank(
        self, rank: int, states: list[_RankState], traces: list[RankTrace]
    ) -> bool:
        """Advance one rank until it blocks or finishes; True if it progressed."""
        state = states[rank]
        if state.finished:
            return False
        progressed = False
        while True:
            op = state.blocked_on
            if op is None:
                try:
                    op = state.gen.send(state.send_value)
                except StopIteration:
                    state.finished = True
                    return True
                state.send_value = None
            else:
                state.blocked_on = None
            done = self._execute(rank, op, states, traces)
            if not done:
                state.blocked_on = op
                return progressed
            progressed = True
            if state.finished:
                return True

    # -- op handlers -------------------------------------------------------------

    def _trace(
        self, traces: list[RankTrace], rank: int, name: str, start: float, end: float
    ) -> None:
        if self.trace_events and len(traces[rank].events) < self.MAX_TRACE_EVENTS:
            traces[rank].events.append((name, start, end))

    def _execute(
        self, rank: int, op: Op, states: list[_RankState], traces: list[RankTrace]
    ) -> bool:
        """Try to execute ``op`` for ``rank``.  Returns False when blocked."""
        state = states[rank]
        trace = traces[rank]

        if isinstance(op, Compute):
            if op.seconds < 0:
                raise CommunicationError(
                    f"negative compute time {op.seconds} on rank {rank}"
                )
            start = state.clock
            state.clock += op.seconds
            trace._add_compute(op.label, op.seconds)
            self._trace(traces, rank, f"compute:{op.label}", start, state.clock)
            state.send_value = None
            return True

        if isinstance(op, (Send, Isend)):
            cost = self.network.p2p(rank, op.dest, op.nbytes)
            start = state.clock
            state.clock += cost.send_overhead
            arrival = state.clock + cost.transit
            self._deposit(rank, op.dest, op.tag, op.nbytes, op.payload, arrival)
            trace.comm_seconds += cost.send_overhead
            self._trace(traces, rank, "send", start, state.clock)
            if isinstance(op, Isend):
                state.send_value = Request(
                    kind="send", rank=rank, complete_time=state.clock
                )
            else:
                state.send_value = None
            return True

        if isinstance(op, Recv):
            msg = self._match(rank, op.source, op.tag)
            if msg is None:
                return False
            cost_overhead = self.network.overhead
            start = state.clock
            state.clock = max(state.clock, msg.arrival) + cost_overhead
            trace.comm_seconds += state.clock - start
            self._trace(traces, rank, "recv", start, state.clock)
            state.send_value = msg.payload
            return True

        if isinstance(op, Irecv):
            state.send_value = Request(
                kind="recv", rank=rank, source=op.source, tag=op.tag
            )
            return True

        if isinstance(op, Wait):
            request = op.request
            if not isinstance(request, Request):
                raise CommunicationError(
                    f"Wait expects a Request, got {type(request).__name__}"
                )
            if request.kind == "send":
                # Eager sends complete at injection; nothing to wait for.
                state.send_value = None
                return True
            if not request.done:
                msg = self._match(request.rank, request.source, request.tag)
                if msg is None:
                    return False
                request.complete_time = msg.arrival
                request.value = msg.payload
            start = state.clock
            state.clock = (
                max(state.clock, request.complete_time) + self.network.overhead
            )
            trace.comm_seconds += state.clock - start
            self._trace(traces, rank, "wait", start, state.clock)
            state.send_value = request.value
            return True

        if isinstance(op, (Bcast, Gather, Reduce, Allreduce, Barrier)):
            return self._execute_collective(rank, op, states, traces)

        raise CommunicationError(f"unknown operation {op!r} on rank {rank}")

    def _execute_collective(
        self, rank: int, op: Op, states: list[_RankState], traces: list[RankTrace]
    ) -> bool:
        state = states[rank]
        seq = state.coll_seq
        slot = self._collectives.setdefault(seq, _CollectiveSlot())
        if rank not in slot.ops:
            slot.ops[rank] = op
            slot.arrivals[rank] = state.clock
            first = next(iter(slot.ops.values()))
            if type(op) is not type(first):
                raise CommunicationError(
                    f"collective mismatch in slot {seq}: rank {rank} called "
                    f"{type(op).__name__}, others called {type(first).__name__}"
                )
        if len(slot.ops) < self.n_ranks:
            return False  # wait for the other ranks

        # Everyone arrived: complete the collective for all ranks.  The cost
        # is evaluated on the root's op (its nbytes is authoritative for
        # rooted collectives; non-rooted collectives are symmetric).
        del self._collectives[seq]
        start = max(slot.arrivals.values())
        root = getattr(op, "root", None)
        canonical = slot.ops[root] if root is not None else op
        duration = self._collective_cost(canonical)
        end = start + duration
        results = self._collective_results(slot)
        for r, arr in slot.arrivals.items():
            other = states[r]
            other.clock = end
            traces[r].comm_seconds += end - arr
            self._trace(traces, r, type(op).__name__.lower(), arr, end)
            other.coll_seq += 1
            other.send_value = results[r]
            if r != rank:
                # The other ranks were blocked inside this collective.
                other.blocked_on = None
        return True

    def _collective_cost(self, op: Op) -> float:
        if isinstance(op, Bcast):
            return self.network.bcast(op.nbytes)
        if isinstance(op, Gather):
            return self.network.gather(op.nbytes)
        if isinstance(op, Reduce):
            return self.network.reduce(op.nbytes)
        if isinstance(op, Allreduce):
            return self.network.allreduce(op.nbytes)
        if isinstance(op, Barrier):
            return self.network.barrier()
        raise CommunicationError(f"not a collective: {op!r}")

    def _collective_results(self, slot: _CollectiveSlot) -> dict[int, Any]:
        ops = slot.ops
        sample = next(iter(ops.values()))
        ranks = sorted(ops)
        if isinstance(sample, Bcast):
            root_op = ops[sample.root]
            if not isinstance(root_op, Bcast) or root_op.root != sample.root:
                raise CommunicationError("Bcast root mismatch across ranks")
            return {r: root_op.payload for r in ranks}
        if isinstance(sample, Gather):
            gathered = [ops[r].payload for r in ranks]
            return {
                r: (gathered if r == ops[r].root else None) for r in ranks
            }
        if isinstance(sample, (Reduce, Allreduce)):
            acc = ops[ranks[0]].payload
            for r in ranks[1:]:
                acc = sample.op(acc, ops[r].payload)
            if isinstance(sample, Allreduce):
                return {r: acc for r in ranks}
            return {r: (acc if r == ops[r].root else None) for r in ranks}
        if isinstance(sample, Barrier):
            return {r: None for r in ranks}
        raise CommunicationError(f"not a collective: {sample!r}")

    # -- diagnostics ------------------------------------------------------------------

    def _deadlock_report(self, states: list[_RankState], unfinished: set[int]) -> str:
        lines = ["MPI simulator deadlock; blocked ranks:"]
        for rank in sorted(unfinished):
            op = states[rank].blocked_on
            desc = type(op).__name__ if op is not None else "collective"
            detail = ""
            if isinstance(op, Recv):
                detail = f" (source={op.source}, tag={op.tag})"
            lines.append(f"  rank {rank}: waiting on {desc}{detail}")
        pending = sum(len(q) for q in self._mailbox.values())
        lines.append(f"  undelivered messages: {pending}")
        if self._collectives:
            for seq, slot in self._collectives.items():
                lines.append(
                    f"  collective slot {seq}: {len(slot.ops)}/{self.n_ranks} arrived"
                )
        return "\n".join(lines)
