"""Real multiprocessing execution of the fitness kernel.

This is the runnable counterpart of the paper's thread level: the per-
generation fitness evaluation — every strategy against every strategy — is
embarrassingly parallel across row blocks, so we fan the vectorised kernel
(:func:`repro.core.vectorgame.play_pairs`) out over a process pool.

Two transports for results:

* default — workers return their row blocks (pickled);
* ``use_shared_memory=True`` — workers write into one shared buffer
  (:mod:`repro.runtime.sharedmem`), avoiding the result copy.

Determinism: the computation is pure (pure strategies, no noise), so the
result is bit-identical to the serial kernel for any worker count — pinned
by the tests.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..core.payoff import PAPER_PAYOFF, PayoffMatrix
from ..core.strategy import Strategy
from ..core.vectorgame import play_pairs
from ..errors import ConfigurationError
from .partition import block_ranges
from .sharedmem import SharedArray, SharedArraySpec

__all__ = ["ParallelKernel", "parallel_payoff_matrix", "parallel_all_fitness"]


def _pair_block(
    strategies: list[Strategy],
    lo: int,
    hi: int,
    rounds: int,
    payoff: PayoffMatrix,
) -> tuple[int, np.ndarray, np.ndarray]:
    """Worker: strategies[0] (focal) vs strategies[1+lo : 1+hi]."""
    a_idx = np.zeros(hi - lo, dtype=np.intp)
    b_idx = np.arange(1 + lo, 1 + hi, dtype=np.intp)
    pay_a, pay_b = play_pairs(strategies, a_idx, b_idx, rounds, payoff)
    return lo, pay_a, pay_b


def _row_block(
    strategies: list[Strategy],
    lo: int,
    hi: int,
    rounds: int,
    payoff: PayoffMatrix,
    spec: SharedArraySpec | None,
) -> tuple[int, np.ndarray | None]:
    """Worker: payoffs of strategies[lo:hi] (as focal players) vs everyone."""
    k = len(strategies)
    rows = hi - lo
    a_idx = np.repeat(np.arange(lo, hi), k)
    b_idx = np.tile(np.arange(k), rows)
    pay_a, _ = play_pairs(strategies, a_idx, b_idx, rounds, payoff)
    block = pay_a.reshape(rows, k)
    if spec is None:
        return lo, block
    target, shm = SharedArray.attach(spec)
    try:
        target[lo:hi, :] = block
    finally:
        shm.close()
    return lo, None


@dataclass
class ParallelKernel:
    """Process-pool fitness kernel with a persistent pool."""

    n_workers: int = 2
    rounds: int = 200
    payoff: PayoffMatrix = PAPER_PAYOFF
    use_shared_memory: bool = False

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        self._pool: ProcessPoolExecutor | None = None

    def __enter__(self) -> "ParallelKernel":
        if self.n_workers > 1:
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self

    def __exit__(self, *exc) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def payoff_matrix(self, strategies: list[Strategy]) -> np.ndarray:
        """All-ordered-pairs payoff matrix, computed across processes."""
        k = len(strategies)
        if k == 0:
            raise ConfigurationError("need at least one strategy")
        if self._pool is None:
            lo, block = _row_block(strategies, 0, k, self.rounds, self.payoff, None)
            assert block is not None
            return block

        ranges = [r for r in block_ranges(k, self.n_workers) if r[1] > r[0]]
        if self.use_shared_memory:
            with SharedArray((k, k)) as shared:
                futures = [
                    self._pool.submit(
                        _row_block,
                        strategies,
                        lo,
                        hi,
                        self.rounds,
                        self.payoff,
                        shared.spec,
                    )
                    for lo, hi in ranges
                ]
                for f in futures:
                    f.result()
                return shared.array.copy()

        out = np.empty((k, k), dtype=np.float64)
        futures = [
            self._pool.submit(
                _row_block, strategies, lo, hi, self.rounds, self.payoff, None
            )
            for lo, hi in ranges
        ]
        for (lo, hi), future in zip(ranges, futures):
            _, block = future.result()
            out[lo:hi, :] = block
        return out

    def payoffs_against(
        self, focal: Strategy, opponents: list[Strategy]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Game payoffs of ``focal`` vs each opponent, fanned over the pool.

        Returns ``(to_focal, to_opponents)`` per game — both directions so a
        payoff cache can store the symmetric entries from one evaluation.
        Bit-identical to the serial kernel for any worker count.
        """
        strategies = [focal] + list(opponents)
        k = len(opponents)
        if self._pool is None or k < 2:
            _, pay_a, pay_b = _pair_block(strategies, 0, k, self.rounds, self.payoff)
            return pay_a, pay_b
        ranges = [r for r in block_ranges(k, self.n_workers) if r[1] > r[0]]
        futures = [
            self._pool.submit(
                _pair_block, strategies, lo, hi, self.rounds, self.payoff
            )
            for lo, hi in ranges
        ]
        to_focal = np.empty(k, dtype=np.float64)
        to_opponents = np.empty(k, dtype=np.float64)
        for (lo, hi), future in zip(ranges, futures):
            _, pay_a, pay_b = future.result()
            to_focal[lo:hi] = pay_a
            to_opponents[lo:hi] = pay_b
        return to_focal, to_opponents

    def all_fitness(
        self, strategies: list[Strategy], include_self_play: bool = False
    ) -> np.ndarray:
        """Population fitness vector (row sums of the payoff matrix)."""
        matrix = self.payoff_matrix(strategies)
        fitness = matrix.sum(axis=1)
        if not include_self_play:
            fitness -= np.diag(matrix)
        return fitness


def parallel_payoff_matrix(
    strategies: list[Strategy],
    rounds: int = 200,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    n_workers: int = 2,
    use_shared_memory: bool = False,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`ParallelKernel`."""
    with ParallelKernel(
        n_workers=n_workers,
        rounds=rounds,
        payoff=payoff,
        use_shared_memory=use_shared_memory,
    ) as kernel:
        return kernel.payoff_matrix(strategies)


def parallel_all_fitness(
    strategies: list[Strategy],
    rounds: int = 200,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    n_workers: int = 2,
    include_self_play: bool = False,
) -> np.ndarray:
    """One-shot population fitness vector across processes."""
    with ParallelKernel(n_workers=n_workers, rounds=rounds, payoff=payoff) as kernel:
        return kernel.all_fitness(strategies, include_self_play)
