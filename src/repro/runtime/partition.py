"""Work partitioning for the real parallel runtime.

Mirrors the decomposition arithmetic of the simulated framework at process
granularity: contiguous balanced blocks (cache-friendly for row-block
payoff-matrix computation) and interleaved assignment (better balance when
work per item varies systematically).
"""

from __future__ import annotations

from ..errors import DecompositionError

__all__ = ["block_ranges", "interleaved_indices"]


def block_ranges(n_items: int, n_parts: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into ``n_parts`` contiguous balanced blocks.

    The first ``n_items % n_parts`` blocks get one extra item.  Empty blocks
    are returned as zero-length ranges when ``n_parts > n_items``.
    """
    if n_items < 0:
        raise DecompositionError(f"n_items must be >= 0, got {n_items}")
    if n_parts < 1:
        raise DecompositionError(f"n_parts must be >= 1, got {n_parts}")
    base, extra = divmod(n_items, n_parts)
    ranges = []
    lo = 0
    for part in range(n_parts):
        size = base + (1 if part < extra else 0)
        ranges.append((lo, lo + size))
        lo += size
    return ranges


def interleaved_indices(n_items: int, n_parts: int, part: int) -> list[int]:
    """Indices assigned to ``part`` under round-robin dealing."""
    if not 0 <= part < n_parts:
        raise DecompositionError(f"part {part} out of range 0..{n_parts - 1}")
    return list(range(part, n_items, n_parts))
