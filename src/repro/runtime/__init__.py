"""Real multiprocessing runtime for the fitness kernel.

The runnable counterpart of the paper's hybrid thread level: row-block
parallel payoff-matrix evaluation over a process pool, with optional
shared-memory result assembly and deterministic tree reductions.
"""

from .executor import ParallelKernel, parallel_all_fitness, parallel_payoff_matrix
from .partition import block_ranges, interleaved_indices
from .reduction import tree_reduce
from .sharedmem import SharedArray, SharedArraySpec

__all__ = [
    "ParallelKernel",
    "parallel_all_fitness",
    "parallel_payoff_matrix",
    "block_ranges",
    "interleaved_indices",
    "tree_reduce",
    "SharedArray",
    "SharedArraySpec",
]
