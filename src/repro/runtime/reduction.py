"""Tree reductions (the in-process mirror of the split-group fitness sum).

The simulated framework reduces partial fitness along a rank-group tree; the
real runtime uses the same shape to combine per-process partial results in
O(log k) combination depth.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")

__all__ = ["tree_reduce"]


def tree_reduce(items: Sequence[T], combine: Callable[[T, T], T]) -> T:
    """Reduce ``items`` pairwise in a balanced tree.

    Deterministic combination order: level by level, left to right — the
    same order regardless of how many processes produced the partials,
    which keeps floating-point sums reproducible across worker counts.
    """
    if len(items) == 0:
        raise ConfigurationError("cannot reduce an empty sequence")
    level = list(items)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(combine(level[i], level[i + 1]))
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]
