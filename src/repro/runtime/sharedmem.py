"""Shared-memory NumPy arrays for zero-copy result assembly.

The executor's row-block workers can write their payoff-matrix blocks
directly into one shared buffer instead of pickling results back — the
in-process analogue of the paper's "shared memory on the node" (hybrid
OpenMP level).  Wraps :mod:`multiprocessing.shared_memory` with explicit
lifetime management.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArraySpec", "SharedArray"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle a worker needs to attach to a shared array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArray:
    """Owner-side wrapper around one shared-memory NumPy array."""

    def __init__(self, shape: tuple[int, ...], dtype=np.float64):
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        self.spec = SharedArraySpec(
            name=self._shm.name, shape=tuple(shape), dtype=dtype.str
        )

    @staticmethod
    def attach(spec: SharedArraySpec) -> tuple[np.ndarray, shared_memory.SharedMemory]:
        """Worker-side attach; caller must ``close()`` the returned handle."""
        shm = shared_memory.SharedMemory(name=spec.name)
        array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
        return array, shm

    def close(self) -> None:
        """Release the owner's mapping and unlink the segment."""
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked
            pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
