"""Population container: SSets plus a synchronized strategy histogram.

The histogram is the performance-critical view (fitness is a function of the
strategy multiset only); the SSet list is the identity-preserving view used
by the recorder, the heatmaps, and the parallel decomposition.  When a
:class:`~repro.core.engine.FitnessEngine` is bound, the population also
maintains a per-SSet strategy-id array over the engine's interned pool —
the integer-indexed mirror of the histogram that the dense fitness kernels
consume — kept in sync through the single :meth:`Population.set_strategy`
write path.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .config import EvolutionConfig
from .engine import FitnessEngine
from .payoff_cache import PayoffCache, StrategyHistogram
from .sset import SSet
from .strategy import Strategy, random_mixed, random_pure

__all__ = ["Population"]


class Population:
    """All SSets of a simulation plus the derived strategy histogram."""

    def __init__(self, ssets: list[SSet]):
        if len(ssets) < 1:
            raise ConfigurationError("population needs at least one SSet")
        ids = [s.sset_id for s in ssets]
        if ids != list(range(len(ssets))):
            raise ConfigurationError("SSet ids must be 0..n-1 in order")
        memories = {s.strategy.memory_steps for s in ssets}
        if len(memories) != 1:
            raise ConfigurationError(
                f"all SSets must share memory_steps, got {sorted(memories)}"
            )
        self._ssets = ssets
        self.histogram = StrategyHistogram.from_strategies(
            [s.strategy for s in ssets]
        )
        self._engine: FitnessEngine | None = None
        self._sids: np.ndarray | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def random(
        cls, config: EvolutionConfig, rng: np.random.Generator
    ) -> "Population":
        """Random initial population (paper Fig. 2a: "strategies are randomly
        assigned to all SSets at the start")."""
        make = random_mixed if config.mixed_strategies else random_pure
        ssets = [
            SSet(
                sset_id=i,
                strategy=make(rng, config.memory_steps),
                n_agents=config.agents_per_sset,
            )
            for i in range(config.n_ssets)
        ]
        return cls(ssets)

    @classmethod
    def uniform(
        cls, strategy: Strategy, n_ssets: int, agents_per_sset: int = 1
    ) -> "Population":
        """Homogeneous population (for invasion / resistance studies)."""
        ssets = [
            SSet(sset_id=i, strategy=strategy, n_agents=agents_per_sset)
            for i in range(n_ssets)
        ]
        return cls(ssets)

    @classmethod
    def from_strategies(
        cls, strategies: list[Strategy], agents_per_sset: int = 1
    ) -> "Population":
        """Population with one SSet per given strategy, in order."""
        ssets = [
            SSet(sset_id=i, strategy=s, n_agents=agents_per_sset)
            for i, s in enumerate(strategies)
        ]
        return cls(ssets)

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ssets)

    def __getitem__(self, sset_id: int) -> SSet:
        return self._ssets[sset_id]

    @property
    def ssets(self) -> list[SSet]:
        """The SSet records (mutate via :meth:`adopt` / :meth:`mutate`)."""
        return self._ssets

    @property
    def memory_steps(self) -> int:
        return self._ssets[0].strategy.memory_steps

    @property
    def n_agents(self) -> int:
        """Total agent count across SSets."""
        return sum(s.n_agents for s in self._ssets)

    def strategies(self) -> list[Strategy]:
        """Current strategy of every SSet, by SSet id."""
        return [s.strategy for s in self._ssets]

    def strategy_matrix(self) -> np.ndarray:
        """(n_ssets, 4**n) move/probability matrix — the Fig. 2 raster."""
        return np.stack([s.strategy.table for s in self._ssets])

    # -- engine binding -------------------------------------------------------

    @property
    def engine(self) -> FitnessEngine | None:
        """The bound :class:`FitnessEngine`, if any."""
        return self._engine

    @property
    def sids(self) -> np.ndarray:
        """Per-SSet strategy ids over the bound engine's pool."""
        if self._sids is None:
            raise SimulationError(
                "population has no bound FitnessEngine (call bind_engine)"
            )
        return self._sids

    def sid_of(self, sset_id: int) -> int:
        """Interned strategy id of one SSet (engine must be bound)."""
        return int(self.sids[sset_id])

    def bind_engine(self, engine: FitnessEngine | None) -> None:
        """Attach (or detach, with ``None``) a fitness engine.

        Interns every current strategy into the engine's pool, in SSet
        order — the same order the histogram was built in, so the pool's
        insertion order mirrors the histogram's (the expected-fitness
        regime relies on that).  A previously bound engine is simply
        dropped; engines are cheap per-run objects, not shared state.
        """
        if engine is None:
            self._engine = None
            self._sids = None
            return
        self._sids = engine.intern_all([s.strategy for s in self._ssets])
        self._engine = engine

    # -- mutation-preserving updates ------------------------------------------

    def set_strategy(self, sset_id: int, strategy: Strategy) -> None:
        """Replace one SSet's strategy — the *only* strategy write path.

        Every strategy write (learning, mutation, manual surgery) must go
        through here so the SSet list, the derived histogram, and the
        engine's sid array / refcounts cannot desync;
        :meth:`check_invariants` verifies the pairing.  The engine update
        interns the new strategy *before* releasing the old one, matching
        the histogram's add-then-remove insertion-order semantics.
        """
        sset = self._ssets[sset_id]
        old = sset.strategy
        sset.strategy = strategy
        self.histogram.replace(old, strategy)
        if self._engine is not None:
            assert self._sids is not None
            new_sid = self._engine.intern(strategy)
            old_sid = int(self._sids[sset_id])
            self._sids[sset_id] = new_sid
            self._engine.release(old_sid)

    def adopt(self, learner_id: int, strategy: Strategy) -> None:
        """Learner SSet adopts a teacher's strategy (histogram kept in sync)."""
        self.set_strategy(learner_id, strategy)
        self._ssets[learner_id].adoptions += 1

    def mutate(self, target_id: int, strategy: Strategy) -> None:
        """Target SSet receives a fresh strategy (histogram kept in sync)."""
        self.set_strategy(target_id, strategy)
        self._ssets[target_id].mutations += 1

    # -- invariants ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the histogram (and bound engine, if any) matches a fresh
        recount of the SSet list.

        Raises :class:`~repro.errors.SimulationError` on any desync (a write
        bypassed :meth:`set_strategy`).  Cheap enough for tests and
        paranoid callers; not called on the hot path.
        """
        rebuilt = StrategyHistogram.from_strategies(
            [s.strategy for s in self._ssets]
        )
        if rebuilt.counts != self.histogram.counts:
            extra = set(self.histogram.counts) - set(rebuilt.counts)
            missing = set(rebuilt.counts) - set(self.histogram.counts)
            raise SimulationError(
                "population histogram desynced from SSet list "
                f"({len(extra)} stale keys, {len(missing)} missing keys, "
                "counts differ); strategy writes must go through "
                "Population.set_strategy"
            )
        for i, sset in enumerate(self._ssets):
            if sset.sset_id != i:
                raise SimulationError(
                    f"SSet at index {i} carries id {sset.sset_id}"
                )
        if self._engine is not None:
            assert self._sids is not None
            for i, sset in enumerate(self._ssets):
                pooled = self._engine.pool.strategy(int(self._sids[i]))
                if pooled.key() != sset.strategy.key():
                    raise SimulationError(
                        f"engine sid array desynced at SSet {i}: pool slot "
                        f"{int(self._sids[i])} holds a different strategy"
                    )
            self._engine.check_consistent([s.strategy for s in self._ssets])

    # -- fitness ---------------------------------------------------------------

    def fitness_of(
        self,
        sset_id: int,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> float:
        """Fitness of one SSet against the whole population.

        ``evaluator`` is either the legacy :class:`PayoffCache` (histogram
        fitness) or a bound :class:`FitnessEngine` (dense matrix fitness);
        both produce bit-identical values for supported configurations.
        """
        if isinstance(evaluator, FitnessEngine):
            if evaluator is not self._engine:
                raise SimulationError(
                    "fitness requested through a FitnessEngine the "
                    "population is not bound to (call bind_engine first)"
                )
            return evaluator.fitness_well_mixed(
                self.sid_of(sset_id), include_self_play
            )
        return self.histogram.fitness_of(
            self._ssets[sset_id].strategy, evaluator, include_self_play
        )

    def all_fitness(
        self,
        evaluator: "PayoffCache | FitnessEngine",
        include_self_play: bool = False,
    ) -> np.ndarray:
        """Fitness vector over all SSets (the paper's full per-generation
        evaluation; only needed for recording, since learning uses just the
        two selected SSets)."""
        # Distinct strategies share fitness: evaluate once per distinct key.
        by_key: dict[bytes, float] = {}
        out = np.empty(len(self._ssets), dtype=np.float64)
        for i, sset in enumerate(self._ssets):
            key = sset.strategy.key()
            if key not in by_key:
                by_key[key] = self.fitness_of(i, evaluator, include_self_play)
            out[i] = by_key[key]
            sset.fitness = out[i]
        return out

    # -- summaries ---------------------------------------------------------------

    def dominant_share(self) -> tuple[Strategy, float]:
        """Most common strategy and its fraction of SSets (Fig. 2's 85%)."""
        (strategy, count), = self.histogram.most_common(1)
        return strategy, count / len(self._ssets)

    def share_of(self, strategy: Strategy) -> float:
        """Fraction of SSets currently holding exactly ``strategy``."""
        return self.histogram.counts.get(strategy.key(), 0) / len(self._ssets)
