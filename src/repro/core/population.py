"""Population container: SSets plus a synchronized strategy histogram.

The histogram is the performance-critical view (fitness is a function of the
strategy multiset only); the SSet list is the identity-preserving view used
by the recorder, the heatmaps, and the parallel decomposition.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .config import EvolutionConfig
from .payoff_cache import PayoffCache, StrategyHistogram
from .sset import SSet
from .strategy import Strategy, random_mixed, random_pure

__all__ = ["Population"]


class Population:
    """All SSets of a simulation plus the derived strategy histogram."""

    def __init__(self, ssets: list[SSet]):
        if len(ssets) < 1:
            raise ConfigurationError("population needs at least one SSet")
        ids = [s.sset_id for s in ssets]
        if ids != list(range(len(ssets))):
            raise ConfigurationError("SSet ids must be 0..n-1 in order")
        memories = {s.strategy.memory_steps for s in ssets}
        if len(memories) != 1:
            raise ConfigurationError(
                f"all SSets must share memory_steps, got {sorted(memories)}"
            )
        self._ssets = ssets
        self.histogram = StrategyHistogram.from_strategies(
            [s.strategy for s in ssets]
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def random(
        cls, config: EvolutionConfig, rng: np.random.Generator
    ) -> "Population":
        """Random initial population (paper Fig. 2a: "strategies are randomly
        assigned to all SSets at the start")."""
        make = random_mixed if config.mixed_strategies else random_pure
        ssets = [
            SSet(
                sset_id=i,
                strategy=make(rng, config.memory_steps),
                n_agents=config.agents_per_sset,
            )
            for i in range(config.n_ssets)
        ]
        return cls(ssets)

    @classmethod
    def uniform(
        cls, strategy: Strategy, n_ssets: int, agents_per_sset: int = 1
    ) -> "Population":
        """Homogeneous population (for invasion / resistance studies)."""
        ssets = [
            SSet(sset_id=i, strategy=strategy, n_agents=agents_per_sset)
            for i in range(n_ssets)
        ]
        return cls(ssets)

    @classmethod
    def from_strategies(
        cls, strategies: list[Strategy], agents_per_sset: int = 1
    ) -> "Population":
        """Population with one SSet per given strategy, in order."""
        ssets = [
            SSet(sset_id=i, strategy=s, n_agents=agents_per_sset)
            for i, s in enumerate(strategies)
        ]
        return cls(ssets)

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ssets)

    def __getitem__(self, sset_id: int) -> SSet:
        return self._ssets[sset_id]

    @property
    def ssets(self) -> list[SSet]:
        """The SSet records (mutate via :meth:`adopt` / :meth:`mutate`)."""
        return self._ssets

    @property
    def memory_steps(self) -> int:
        return self._ssets[0].strategy.memory_steps

    @property
    def n_agents(self) -> int:
        """Total agent count across SSets."""
        return sum(s.n_agents for s in self._ssets)

    def strategies(self) -> list[Strategy]:
        """Current strategy of every SSet, by SSet id."""
        return [s.strategy for s in self._ssets]

    def strategy_matrix(self) -> np.ndarray:
        """(n_ssets, 4**n) move/probability matrix — the Fig. 2 raster."""
        return np.stack([s.strategy.table for s in self._ssets])

    # -- mutation-preserving updates ------------------------------------------

    def set_strategy(self, sset_id: int, strategy: Strategy) -> None:
        """Replace one SSet's strategy — the *only* strategy write path.

        Every strategy write (learning, mutation, manual surgery) must go
        through here so the SSet list and the derived histogram cannot
        desync; :meth:`check_invariants` verifies the pairing.
        """
        sset = self._ssets[sset_id]
        old = sset.strategy
        sset.strategy = strategy
        self.histogram.replace(old, strategy)

    def adopt(self, learner_id: int, strategy: Strategy) -> None:
        """Learner SSet adopts a teacher's strategy (histogram kept in sync)."""
        self.set_strategy(learner_id, strategy)
        self._ssets[learner_id].adoptions += 1

    def mutate(self, target_id: int, strategy: Strategy) -> None:
        """Target SSet receives a fresh strategy (histogram kept in sync)."""
        self.set_strategy(target_id, strategy)
        self._ssets[target_id].mutations += 1

    # -- invariants ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the histogram matches a fresh recount of the SSet list.

        Raises :class:`~repro.errors.SimulationError` on any desync (a write
        bypassed :meth:`set_strategy`).  Cheap enough for tests and
        paranoid callers; not called on the hot path.
        """
        rebuilt = StrategyHistogram.from_strategies(
            [s.strategy for s in self._ssets]
        )
        if rebuilt.counts != self.histogram.counts:
            extra = set(self.histogram.counts) - set(rebuilt.counts)
            missing = set(rebuilt.counts) - set(self.histogram.counts)
            raise SimulationError(
                "population histogram desynced from SSet list "
                f"({len(extra)} stale keys, {len(missing)} missing keys, "
                "counts differ); strategy writes must go through "
                "Population.set_strategy"
            )
        for i, sset in enumerate(self._ssets):
            if sset.sset_id != i:
                raise SimulationError(
                    f"SSet at index {i} carries id {sset.sset_id}"
                )

    # -- fitness ---------------------------------------------------------------

    def fitness_of(
        self, sset_id: int, cache: PayoffCache, include_self_play: bool = False
    ) -> float:
        """Fitness of one SSet against the whole population."""
        return self.histogram.fitness_of(
            self._ssets[sset_id].strategy, cache, include_self_play
        )

    def all_fitness(
        self, cache: PayoffCache, include_self_play: bool = False
    ) -> np.ndarray:
        """Fitness vector over all SSets (the paper's full per-generation
        evaluation; only needed for recording, since learning uses just the
        two selected SSets)."""
        # Distinct strategies share fitness: evaluate once per distinct key.
        by_key: dict[bytes, float] = {}
        out = np.empty(len(self._ssets), dtype=np.float64)
        for i, sset in enumerate(self._ssets):
            key = sset.strategy.key()
            if key not in by_key:
                by_key[key] = self.histogram.fitness_of(
                    sset.strategy, cache, include_self_play
                )
            out[i] = by_key[key]
            sset.fitness = out[i]
        return out

    # -- summaries ---------------------------------------------------------------

    def dominant_share(self) -> tuple[Strategy, float]:
        """Most common strategy and its fraction of SSets (Fig. 2's 85%)."""
        (strategy, count), = self.histogram.most_common(1)
        return strategy, count / len(self._ssets)

    def share_of(self, strategy: Strategy) -> float:
        """Fraction of SSets currently holding exactly ``strategy``."""
        return self.histogram.counts.get(strategy.key(), 0) / len(self._ssets)
