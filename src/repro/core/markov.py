"""Exact expected payoffs for mixed / noisy games via the state Markov chain.

For memory-*n* strategies the per-round behaviour depends only on the focal
player's view ``v`` (the opponent's view is the bit-swapped mirror of ``v``),
so a game with mixed strategies and/or trembling-hand noise is a Markov
chain over ``4**n`` states with exactly four successors per state (one per
executed move pair).  The expected total payoff over N rounds is then a sum
of state-distribution-weighted expected round payoffs — no sampling error,
which is what the paper's error discussion (Section III.F, WSLS vs TFT)
needs to be demonstrated crisply.

This generalises the memory-one analysis of Nowak & Sigmund (paper ref. [9])
to arbitrary memory and is used by the tests as the ground truth for the
sampling engines, and by the examples to reproduce the "TFT collapses under
errors, WSLS does not" result.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, StrategyError
from .payoff import PAPER_PAYOFF, PayoffMatrix
from .states import num_states, swap_perspective_array
from .strategy import Strategy

__all__ = [
    "transition_model",
    "expected_payoffs",
    "expected_payoffs_many",
    "stationary_cooperation_rate",
]


def _effective_defect_probs(strategy: Strategy, noise: float) -> np.ndarray:
    """Per-state probability that the *executed* move is D under noise."""
    p = strategy.defect_probabilities()
    # Intended D plays D w.p. (1 - noise); intended C plays D w.p. noise.
    return p * (1.0 - noise) + (1.0 - p) * noise


def transition_model(
    strategy_a: Strategy,
    strategy_b: Strategy,
    noise: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Successor states and probabilities of the joint chain.

    Returns ``(successors, probs)``, both shaped (4**n, 4): from view ``v``
    (player A's perspective), the move pair ``(a, b)`` with code
    ``2a + b`` leads to ``successors[v, code]`` with ``probs[v, code]``.
    """
    if strategy_a.memory_steps != strategy_b.memory_steps:
        raise StrategyError(
            "strategies must share memory_steps, got "
            f"{strategy_a.memory_steps} vs {strategy_b.memory_steps}"
        )
    if not 0.0 <= noise <= 1.0:
        raise ConfigurationError(f"noise must lie in [0, 1], got {noise}")
    n = strategy_a.memory_steps
    n_states = num_states(n)
    views = np.arange(n_states)
    mirror = swap_perspective_array(views, n)

    pa = _effective_defect_probs(strategy_a, noise)[views]
    pb = _effective_defect_probs(strategy_b, noise)[mirror]

    probs = np.empty((n_states, 4), dtype=np.float64)
    probs[:, 0] = (1 - pa) * (1 - pb)  # CC
    probs[:, 1] = (1 - pa) * pb        # CD
    probs[:, 2] = pa * (1 - pb)        # DC
    probs[:, 3] = pa * pb              # DD

    mask = n_states - 1
    successors = np.empty((n_states, 4), dtype=np.int64)
    for code in range(4):
        successors[:, code] = ((views << 2) | code) & mask
    return successors, probs


def expected_payoffs(
    strategy_a: Strategy,
    strategy_b: Strategy,
    rounds: int,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
) -> tuple[float, float, float]:
    """Exact expected ``(payoff_a, payoff_b, cooperation_rate)`` over N rounds.

    For pure noiseless strategies this equals the deterministic result of
    :func:`repro.core.cycle.exact_payoffs`; for stochastic games it is the
    exact mean of the sampling engines' distribution.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    successors, probs = transition_model(strategy_a, strategy_b, noise)
    n_states = probs.shape[0]
    vec = payoff.vector
    # Expected per-round payoff to A given the current view, and to B
    # (B receives the mirrored move-pair payoff).
    vec_b = vec[[0, 2, 1, 3]]  # code 2a+b from A's view -> B's payoff
    round_pay_a = probs @ vec
    round_pay_b = probs @ vec_b
    # Each round contributes 2 moves; coop count = (1-pa) + (1-pb) in expectation.
    coop_per_round = (
        probs[:, 0] * 2 + probs[:, 1] * 1 + probs[:, 2] * 1 + probs[:, 3] * 0
    )

    dist = np.zeros(n_states, dtype=np.float64)
    dist[0] = 1.0  # all-cooperate initial history
    total_a = 0.0
    total_b = 0.0
    total_coop = 0.0
    for _ in range(rounds):
        total_a += float(dist @ round_pay_a)
        total_b += float(dist @ round_pay_b)
        total_coop += float(dist @ coop_per_round)
        nxt = np.zeros(n_states, dtype=np.float64)
        for code in range(4):
            np.add.at(nxt, successors[:, code], dist * probs[:, code])
        dist = nxt
    return total_a, total_b, total_coop / (2 * rounds)


def expected_payoffs_many(
    strategy_a: Strategy,
    opponents: list[Strategy],
    rounds: int,
    payoff: PayoffMatrix = PAPER_PAYOFF,
    noise: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`expected_payoffs`: one focal strategy vs K opponents.

    Returns ``(to_a, to_b)`` — two (K,) arrays with the focal player's and
    each opponent's expected total payoffs.  All K chains are advanced
    together, so per-opponent Python overhead disappears — this is the
    kernel behind mixed-strategy population fitness (histogram fitness with
    hundreds of distinct mixed strategies).
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    if not opponents:
        return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.float64)
    n = strategy_a.memory_steps
    for b in opponents:
        if b.memory_steps != n:
            raise StrategyError("all strategies must share memory_steps")
    if not 0.0 <= noise <= 1.0:
        raise ConfigurationError(f"noise must lie in [0, 1], got {noise}")

    n_states = num_states(n)
    k = len(opponents)
    views = np.arange(n_states)
    mirror = swap_perspective_array(views, n)

    pa = _effective_defect_probs(strategy_a, noise)[views]  # (S,)
    pb = np.stack(
        [_effective_defect_probs(b, noise) for b in opponents]
    )[:, mirror]  # (K, S)

    # Move-pair probabilities per opponent and state: (K, S, 4).
    probs = np.empty((k, n_states, 4), dtype=np.float64)
    probs[:, :, 0] = (1 - pa)[None, :] * (1 - pb)
    probs[:, :, 1] = (1 - pa)[None, :] * pb
    probs[:, :, 2] = pa[None, :] * (1 - pb)
    probs[:, :, 3] = pa[None, :] * pb

    mask = n_states - 1
    successors = np.empty((n_states, 4), dtype=np.int64)
    for code in range(4):
        successors[:, code] = ((views << 2) | code) & mask

    round_pay_a = probs @ payoff.vector  # (K, S)
    round_pay_b = probs @ payoff.vector[[0, 2, 1, 3]]  # code 2a+b -> B's payoff
    dist = np.zeros((k, n_states), dtype=np.float64)
    dist[:, 0] = 1.0
    totals_a = np.zeros(k, dtype=np.float64)
    totals_b = np.zeros(k, dtype=np.float64)
    rows = np.arange(k)[:, None]
    for _ in range(rounds):
        totals_a += (dist * round_pay_a).sum(axis=1)
        totals_b += (dist * round_pay_b).sum(axis=1)
        nxt = np.zeros_like(dist)
        for code in range(4):
            np.add.at(
                nxt,
                (rows, successors[None, :, code]),
                dist * probs[:, :, code],
            )
        dist = nxt
    return totals_a, totals_b


def stationary_cooperation_rate(
    strategy_a: Strategy,
    strategy_b: Strategy,
    noise: float = 0.0,
    tol: float = 1e-10,
    max_iter: int = 100_000,
) -> float:
    """Long-run cooperation rate of the pair.

    Uses the Cesàro (running-average) iterate, which converges even for
    periodic deterministic chains such as TFT-vs-TFT locked in a CD/DC
    alternation.  Useful for the error-robustness analysis: TFT vs TFT under
    errors drifts to ~50% cooperation, while WSLS vs WSLS recovers to ~1.
    """
    successors, probs = transition_model(strategy_a, strategy_b, noise)
    n_states = probs.shape[0]
    coop_per_round = probs[:, 0] + 0.5 * (probs[:, 1] + probs[:, 2])
    dist = np.zeros(n_states, dtype=np.float64)
    dist[0] = 1.0  # the game actually starts from the all-cooperate history
    avg = dist.copy()
    for it in range(1, max_iter + 1):
        nxt = np.zeros(n_states, dtype=np.float64)
        for code in range(4):
            np.add.at(nxt, successors[:, code], dist * probs[:, code])
        dist = nxt
        new_avg = avg + (dist - avg) / (it + 1)
        if it > 8 and np.abs(new_avg - avg).sum() < tol:
            avg = new_avg
            break
        avg = new_avg
    return float(avg @ coop_per_round)
