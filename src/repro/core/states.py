"""Memory-*n* game-state encoding (paper Section III.E, Tables II and V).

A *state* records the binary decisions of both players over the previous
``n`` rounds, giving ``4**n`` distinct states.  We pack a state into an
integer **view**:

* each round contributes two bits, ``(my_move << 1) | opp_move``;
* the most recent round occupies the **low** two bits;
* the initial view is ``0`` — an implicit history of mutual cooperation,
  matching the paper's ``current_view`` zero-initialisation ("The first play
  of each agent is arbitrarily set to 0").

The paper's kernel locates the current state by *searching* a global state
list (``find_state``); with this encoding the same lookup is a constant-time
shift-register update (:func:`advance_view`).  The performance model in
:mod:`repro.framework.costs` still charges the paper's search cost so that
Figure 5 is reproduced faithfully.

Display-order note: Table V lists the four memory-one states in Gray-code
order (00, 01, 11, 10).  That ordering is why WSLS prints as ``0101`` in the
paper (and in its Figure 2) while its natural binary-order table is ``0110``.
:data:`MEMORY_ONE_GRAY_ORDER` reproduces the paper's ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "MAX_MEMORY_STEPS",
    "MEMORY_ONE_GRAY_ORDER",
    "num_states",
    "view_mask",
    "encode_round",
    "advance_view",
    "swap_perspective",
    "swap_perspective_array",
    "view_to_history",
    "history_to_view",
    "StateRow",
    "state_table",
]

#: The paper demonstrates memory-one through memory-six; the encoding itself
#: supports any n with 4**n states, but 6 is the validated/production limit.
MAX_MEMORY_STEPS: int = 6

#: Paper Table V row order for memory-one states: 00, 01, 11, 10.
MEMORY_ONE_GRAY_ORDER: tuple[int, ...] = (0, 1, 3, 2)


def _check_memory(memory_steps: int) -> None:
    if not isinstance(memory_steps, (int, np.integer)) or memory_steps < 1:
        raise ConfigurationError(
            f"memory_steps must be a positive integer, got {memory_steps!r}"
        )


def num_states(memory_steps: int) -> int:
    """Number of distinct game states, ``4**n`` (paper: ``2^(2n)``)."""
    _check_memory(memory_steps)
    return 4**memory_steps


def view_mask(memory_steps: int) -> int:
    """Bit mask retaining exactly ``n`` rounds of history."""
    return num_states(memory_steps) - 1


def encode_round(my_move: int, opp_move: int) -> int:
    """Two-bit code of one round from the focal player's perspective."""
    return (my_move << 1) | opp_move


def advance_view(view: int, my_move: int, opp_move: int, memory_steps: int) -> int:
    """Shift one completed round into the view, dropping the oldest round."""
    return ((view << 2) | encode_round(my_move, opp_move)) & view_mask(memory_steps)


def swap_perspective(view: int, memory_steps: int) -> int:
    """Return the same history as seen by the opponent.

    Each player's view of a round swaps "my move" and "opponent's move", so
    the opponent's view exchanges the two bits inside every round pair
    ("each agent's current view will be the opposite of its opponent").
    """
    _check_memory(memory_steps)
    swapped = 0
    for k in range(memory_steps):
        pair = (view >> (2 * k)) & 0b11
        swapped |= (((pair & 0b01) << 1) | (pair >> 1)) << (2 * k)
    return swapped


def swap_perspective_array(views: np.ndarray, memory_steps: int) -> np.ndarray:
    """Vectorised :func:`swap_perspective` over an integer array."""
    _check_memory(memory_steps)
    views = np.asarray(views)
    swapped = np.zeros_like(views)
    for k in range(memory_steps):
        pair = (views >> (2 * k)) & 0b11
        swapped |= (((pair & 0b01) << 1) | (pair >> 1)) << (2 * k)
    return swapped


def view_to_history(view: int, memory_steps: int) -> list[tuple[int, int]]:
    """Decode a view into ``[(my, opp), ...]`` with the most recent round first."""
    _check_memory(memory_steps)
    if not 0 <= view < num_states(memory_steps):
        raise ConfigurationError(
            f"view {view} out of range for memory-{memory_steps}"
        )
    out = []
    for k in range(memory_steps):
        pair = (view >> (2 * k)) & 0b11
        out.append((pair >> 1, pair & 0b01))
    return out


def history_to_view(history: list[tuple[int, int]], memory_steps: int) -> int:
    """Inverse of :func:`view_to_history` (most recent round first)."""
    _check_memory(memory_steps)
    if len(history) != memory_steps:
        raise ConfigurationError(
            f"history must have exactly {memory_steps} rounds, got {len(history)}"
        )
    view = 0
    for k, (my, opp) in enumerate(history):
        if my not in (0, 1) or opp not in (0, 1):
            raise ConfigurationError(f"moves must be 0 or 1, got {(my, opp)}")
        view |= encode_round(my, opp) << (2 * k)
    return view


@dataclass(frozen=True)
class StateRow:
    """One row of a state table (paper Tables II and V)."""

    state_id: int
    #: Move history, most recent round first, as ``(my, opp)`` pairs.
    history: tuple[tuple[int, int], ...]

    def bits(self) -> str:
        """Paper Table V style bit string (most recent round, ``my opp``)."""
        return "".join(f"{my}{opp}" for my, opp in self.history)

    def letters(self) -> str:
        """Paper Table II style letters for the most recent round (``C``/``D``)."""
        my, opp = self.history[0]
        return "CD"[my] + "CD"[opp]


def state_table(memory_steps: int, order: tuple[int, ...] | None = None) -> list[StateRow]:
    """Enumerate all states, optionally in a custom display order.

    ``order=MEMORY_ONE_GRAY_ORDER`` with ``memory_steps=1`` reproduces the
    paper's Table V row ordering.
    """
    n = num_states(memory_steps)
    ids = range(n) if order is None else order
    if order is not None and sorted(order) != list(range(n)):
        raise ConfigurationError(
            f"order must be a permutation of range({n}), got {order!r}"
        )
    return [
        StateRow(state_id=s, history=tuple(view_to_history(s, memory_steps)))
        for s in ids
    ]
