"""Serial evolution drivers (the paper's population dynamics, Section IV).

Two equivalent drivers are provided:

* :func:`run_serial` — the faithful per-generation loop: every generation
  draws its event flags, and PC learning / mutation are applied in the
  paper's order (PC first, then mutation).

* :func:`run_event_driven` — the fast-forward driver: population state only
  changes at PC/mutation events, so generations are scanned in vectorised
  batches and only event generations execute Python logic.  Because the
  event flags come from a dedicated RNG stream (consumed in the same order)
  and the pc/mutation/games streams are touched only at events, this driver
  follows the **identical trajectory** to :func:`run_serial` for any seed —
  a property pinned by the test suite.  It is what makes the paper's
  10^7-generation validation run (Fig. 2) feasible.

Fitness is evaluated lazily: only the PC-selected teacher/learner fitness is
computed, exactly the values the dynamics consume.  By default the values
come from the interned-strategy :class:`~repro.core.engine.FitnessEngine`
(dense payoff-matrix kernel, ``config.engine``); configurations the dense
kernel cannot serve bit-identically — sampled-stochastic fitness,
non-integer payoffs — fall back to the legacy strategy histogram +
:class:`~repro.core.payoff_cache.PayoffCache` automatically, and
``engine=False`` forces that reference path.  Either way the trajectory is
identical, pinned by the golden-hash tests.

Both drivers honour ``config.structure`` (:mod:`repro.structure`): the
default well-mixed model keeps the histogram fast path and the historical
RNG draw order (hence the bit-identical guarantee above), while graph
structures evaluate fitness over neighborhoods and pick PC teachers from
the learner's neighbors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .. import faults
from ..errors import CheckpointError, ConfigurationError
from ..rng import SeedSequenceTree
from ..structure import InteractionModel, build_structure
from .config import EvolutionConfig
from .engine import FitnessEngine, SampledFitnessEngine
from .nature import NatureAgent
from .payoff_cache import PayoffCache
from .population import Population
from .progress import ProgressTick, cancel_token, progress_callback
from .runstate import (
    RUN_STATE_VERSION,
    capture_evaluator,
    capture_events,
    capture_population,
    capture_snapshots,
    checkpoint_sink,
    checkpointing_supported,
    restore_evaluator,
    restore_events,
    restore_population,
    restore_snapshots,
    unit_key,
    validate_resume_config,
)
from .strategy import Strategy

#: Either fitness evaluator the drivers thread through the structure layer.
Evaluator = PayoffCache | FitnessEngine

if TYPE_CHECKING:  # pragma: no cover - avoid a runtime core -> api cycle
    from ..api.report import BackendReport

__all__ = [
    "EventRecord",
    "Snapshot",
    "EvolutionResult",
    "run_serial",
    "run_event_driven",
]


@dataclass(frozen=True)
class EventRecord:
    """One applied (or rejected) population-dynamics event."""

    generation: int
    kind: str  # "pc" or "mutation"
    #: For PC: (teacher, learner); for mutation: (target, target).
    source: int
    target: int
    #: For PC: whether the learner adopted.  Mutations always apply.
    applied: bool
    teacher_fitness: float = 0.0
    learner_fitness: float = 0.0


@dataclass(frozen=True)
class Snapshot:
    """Population strategy raster at one generation (Fig. 2 material)."""

    generation: int
    strategy_matrix: np.ndarray
    dominant_share: float


@dataclass
class EvolutionResult:
    """Everything a run produces."""

    config: EvolutionConfig
    population: Population
    events: list[EventRecord] = field(default_factory=list)
    snapshots: list[Snapshot] = field(default_factory=list)
    n_pc_events: int = 0
    n_adoptions: int = 0
    n_mutations: int = 0
    generations_run: int = 0
    wallclock_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Execution metadata attached by the :mod:`repro.api` front-end; the
    #: legacy drivers leave it ``None``.
    backend_report: "BackendReport | None" = None
    #: Generation this run was restored from (mid-run checkpoint resume),
    #: ``None`` for an uninterrupted run.  Provenance only: it is *not*
    #: part of the result payload, which stays bit-identical either way.
    resumed_from_generation: int | None = None

    def dominant(self) -> tuple[Strategy, float]:
        """Most common final strategy and its population share."""
        return self.population.dominant_share()

    def summary(self) -> str:
        strategy, share = self.dominant()
        return (
            f"{self.generations_run} generations, "
            f"{self.n_pc_events} PC events ({self.n_adoptions} adoptions), "
            f"{self.n_mutations} mutations; dominant strategy "
            f"{strategy.bits() if strategy.is_pure else '<mixed>'} "
            f"at {share:.1%}"
        )


def _make_cache(config: EvolutionConfig, nature: NatureAgent) -> PayoffCache:
    return PayoffCache(
        rounds=config.rounds,
        payoff=config.payoff,
        noise=config.noise,
        rng=nature.games_rng if config.is_stochastic else None,
        expected=config.expected_fitness,
    )


def _make_evaluator(
    config: EvolutionConfig, nature: NatureAgent, population: Population
) -> Evaluator:
    """Build the run's fitness evaluator and bind/unbind the population.

    With ``config.engine`` (the default) this is the dense
    :class:`FitnessEngine` whenever the configuration's fitness regime
    supports it bit-identically; otherwise — sampled-stochastic fitness,
    non-integer payoffs, or ``engine=False`` — the legacy
    :class:`PayoffCache` reference path.  A ``sampled_batched`` opt-in
    swaps in the batched :class:`SampledFitnessEngine` instead, fed by
    the Nature Agent's dedicated ``("nature", "sampled")`` stream.
    """
    sampled = SampledFitnessEngine.from_config(config, nature.sampled_rng)
    if sampled is not None:
        population.bind_engine(None)
        return sampled
    engine = FitnessEngine.from_config(config)
    population.bind_engine(engine)
    if engine is not None:
        return engine
    return _make_cache(config, nature)


def _resolve_evaluator(
    config: EvolutionConfig,
    nature: NatureAgent,
    population: Population,
    cache: PayoffCache | None,
    evaluator: Evaluator | None,
) -> Evaluator:
    """Pick the run's evaluator and (un)bind the population accordingly.

    ``evaluator`` injects a ready-made evaluator — e.g. the multiprocess
    backend's pool-backed :class:`FitnessEngine` — and must produce the
    same values as the default for the trajectory to stay on the reference
    path.  ``cache`` keeps its historical meaning: substitute the legacy
    payoff evaluator and force the non-engine path.
    """
    if evaluator is not None:
        if cache is not None:
            raise ConfigurationError(
                "pass either cache= or evaluator=, not both"
            )
        if isinstance(evaluator, FitnessEngine):
            population.bind_engine(evaluator)
        else:
            population.bind_engine(None)
        return evaluator
    if cache is not None:
        population.bind_engine(None)
        return cache
    return _make_evaluator(config, nature, population)


def _maybe_snapshot(
    result: EvolutionResult, population: Population, generation: int, force: bool
) -> None:
    every = result.config.record_every
    if force or (every > 0 and generation % every == 0):
        _, share = population.dominant_share()
        result.snapshots.append(
            Snapshot(
                generation=generation,
                strategy_matrix=population.strategy_matrix(),
                dominant_share=share,
            )
        )


def _apply_generation_events(
    generation: int,
    pc: bool,
    mutation: bool,
    nature: NatureAgent,
    population: Population,
    evaluator: Evaluator,
    result: EvolutionResult,
    structure: InteractionModel,
    progress=None,
    cancel=None,
    fault=None,
) -> None:
    """Apply one generation's events in the paper's order (PC, then mutation).

    ``progress`` is the thread's :func:`~repro.core.progress.progress_scope`
    callback (or ``None``): one :class:`ProgressTick` per event generation,
    after the generation's events applied.  ``cancel`` is the thread's
    :class:`~repro.core.progress.CancelToken` (or ``None``), checked before
    the generation's events so a cancelled or timed-out run aborts at tick
    cadence with the population untouched by the aborted generation.
    ``fault`` is the armed :func:`repro.faults.hook` for the
    ``"driver.generation"`` site (or ``None``, the production case).
    """
    if cancel is not None:
        cancel.check()
    if fault is not None:
        fault(generation=generation)
    config = result.config
    if pc:
        decision = nature.pc_selection(len(population), structure)
        # pair_fitness is two fitness_of calls for well-mixed / legacy
        # evaluators; graph structures with an eager FitnessEngine serve
        # both sides from one batched CSR payoff-matrix gather (same
        # values — integer sums are float-exact in any order).
        fit_t, fit_l = structure.pair_fitness(
            population,
            decision.teacher,
            decision.learner,
            evaluator,
            config.include_self_play,
        )
        adopted = nature.decide_learning(decision, fit_t, fit_l)
        if adopted:
            population.adopt(
                decision.learner, population[decision.teacher].strategy
            )
        result.n_pc_events += 1
        result.n_adoptions += int(adopted)
        if config.record_events:
            result.events.append(
                EventRecord(
                    generation=generation,
                    kind="pc",
                    source=decision.teacher,
                    target=decision.learner,
                    applied=adopted,
                    teacher_fitness=fit_t,
                    learner_fitness=fit_l,
                )
            )
    if mutation:
        decision = nature.mutation_selection(len(population))
        population.mutate(decision.target, decision.strategy)
        result.n_mutations += 1
        if config.record_events:
            result.events.append(
                EventRecord(
                    generation=generation,
                    kind="mutation",
                    source=decision.target,
                    target=decision.target,
                    applied=True,
                )
            )
    if progress is not None:
        progress(
            ProgressTick(
                run_index=0,
                generation=generation,
                generations=config.generations,
                n_pc_events=result.n_pc_events,
                n_adoptions=result.n_adoptions,
                n_mutations=result.n_mutations,
            )
        )


def _finalise(
    result: EvolutionResult,
    population: Population,
    evaluator: Evaluator,
    started: float,
) -> EvolutionResult:
    result.generations_run = result.config.generations
    _maybe_snapshot(result, population, result.config.generations, force=True)
    # PayoffCache and FitnessEngine both expose hit/miss counters (the
    # engine counts dense fitness queries / pair evaluations performed).
    result.cache_hits = evaluator.hits
    result.cache_misses = evaluator.misses
    result.wallclock_seconds = time.perf_counter() - started
    return result


def _arm_checkpointing(
    config: EvolutionConfig,
    population: Population | None,
    cache: PayoffCache | None,
    evaluator: Evaluator | None,
):
    """This run's checkpoint sink, or ``None`` when checkpointing is off.

    Armed only when the run is fully self-describing — default-constructed
    population and evaluator (an injected one carries caller state a
    snapshot cannot re-create) — and the fitness regime can honour the
    bit-identical resume contract (:func:`checkpointing_supported`).
    Unarmed runs execute exactly as before, without snapshots.
    """
    sink = checkpoint_sink()
    if sink is None:
        return None
    if population is not None or cache is not None or evaluator is not None:
        return None
    if not checkpointing_supported(config):
        return None
    return sink


def _enable_capture_logs(evaluator: Evaluator) -> None:
    """Arm the evaluator's replay log from generation 0 (capture needs the
    full fill history; the eager deterministic engine needs none)."""
    if isinstance(evaluator, FitnessEngine):
        if evaluator.expected:
            evaluator.enable_fill_log()
    else:
        evaluator.enable_eval_log()


def _capture_run_state(
    config: EvolutionConfig,
    generation: int,
    nature: NatureAgent,
    population: Population,
    evaluator: Evaluator,
    result: EvolutionResult,
    next_snapshot: int | None,
) -> tuple[dict, dict]:
    """Snapshot the run at a generation boundary: generation ``generation``
    is about to be drawn, nothing of it has been consumed yet.

    ``next_snapshot`` is the smallest not-yet-recorded ``record_every``
    multiple (``None`` when recording is off) — the one piece of driver
    bookkeeping that must travel so either driver can resume the snapshot
    schedule exactly where the other left off.
    """
    pop_meta, pop_arrays = capture_population(population)
    eval_meta, eval_arrays = capture_evaluator(evaluator, population)
    meta = {
        "version": RUN_STATE_VERSION,
        "kind": "run",
        "generation": int(generation),
        "config": config.to_dict(),
        "structure": config.canonical_structure(),
        "nature": nature.stream_states(),
        "counters": {
            "n_pc_events": result.n_pc_events,
            "n_adoptions": result.n_adoptions,
            "n_mutations": result.n_mutations,
        },
        "next_snapshot": None if next_snapshot is None else int(next_snapshot),
        "population": pop_meta,
        "evaluator": eval_meta,
    }
    arrays = dict(pop_arrays)
    arrays.update(eval_arrays)
    arrays.update(capture_events(result.events))
    arrays.update(capture_snapshots(result.snapshots))
    return meta, arrays


def _resume_run_state(sink, unit: str, config: EvolutionConfig, nature: NatureAgent):
    """Restore the newest snapshot for ``unit`` from ``sink``, if any.

    Returns ``(result, population, evaluator, generation, next_snapshot)``
    with every RNG stream rewound, or ``None`` for a fresh start.  A
    snapshot whose config differs in any science-bearing field is refused
    (:func:`validate_resume_config`) — the sink keys snapshots by unit
    hash, so this only fires when a caller pins an explicit snapshot.
    """
    found = sink.load_latest(unit)
    if found is None:
        return None
    meta, arrays = found
    if meta.get("kind") != "run":
        # A same-science artifact of a different driver shape (an ensemble
        # group snapshot can land on the same unit key for a one-lane
        # sweep): not this driver's state, so start fresh rather than fail.
        return None
    if int(meta.get("version", 0)) != RUN_STATE_VERSION:
        raise CheckpointError(
            f"unsupported run-state checkpoint version "
            f"{meta.get('version')!r} (this build reads "
            f"version {RUN_STATE_VERSION})"
        )
    validate_resume_config([meta["config"]], [config.to_dict()])
    nature.restore_stream_states(meta["nature"])
    population = restore_population(meta["population"], arrays)
    evaluator = restore_evaluator(
        config, meta["evaluator"], arrays, population, nature.games_rng
    )
    generation = int(meta["generation"])
    result = EvolutionResult(config=config, population=population)
    result.events = restore_events(arrays)
    result.snapshots = restore_snapshots(arrays)
    counters = meta["counters"]
    result.n_pc_events = int(counters["n_pc_events"])
    result.n_adoptions = int(counters["n_adoptions"])
    result.n_mutations = int(counters["n_mutations"])
    result.resumed_from_generation = generation
    next_snapshot = meta.get("next_snapshot")
    if next_snapshot is not None:
        next_snapshot = int(next_snapshot)
    return result, population, evaluator, generation, next_snapshot


def run_serial(
    config: EvolutionConfig,
    population: Population | None = None,
    *,
    cache: PayoffCache | None = None,
    evaluator: Evaluator | None = None,
) -> EvolutionResult:
    """Faithful generation-by-generation evolution (reference driver).

    ``cache`` substitutes the payoff evaluator (e.g. a process-pool backed
    one) and disables the :class:`FitnessEngine` for the run; ``evaluator``
    injects a ready-made engine/cache instead (see
    :func:`_resolve_evaluator`).  Either must produce the same values as
    the default for the trajectory to stay on the reference path.
    """
    started = time.perf_counter()
    tree = SeedSequenceTree(config.seed)
    nature = NatureAgent(config, tree)
    structure = build_structure(config.structure, config.n_ssets)
    sink = _arm_checkpointing(config, population, cache, evaluator)
    unit = unit_key([config.to_dict()]) if sink is not None else None
    restored = (
        _resume_run_state(sink, unit, config, nature)
        if sink is not None
        else None
    )
    if restored is not None:
        result, population, evaluator, start_gen, _ = restored
    else:
        if population is None:
            population = Population.random(config, tree.generator("init"))
        evaluator = _resolve_evaluator(
            config, nature, population, cache, evaluator
        )
        if sink is not None:
            _enable_capture_logs(evaluator)
        result = EvolutionResult(config=config, population=population)
        _maybe_snapshot(result, population, 0, force=True)
        start_gen = 0
    progress = progress_callback()
    cancel = cancel_token()
    fault = faults.hook("driver.generation")
    save_every = config.checkpoint_every if sink is not None else 0
    record = config.record_every

    for generation in range(start_gen, config.generations):
        # Generation boundary: nothing of `generation` drawn yet — the
        # snapshot resumes exactly here (skipped at the boundary a resume
        # itself started from, which is already on disk).
        if (
            save_every > 0
            and generation > 0
            and generation != start_gen
            and generation % save_every == 0
        ):
            pending = (
                ((generation + record - 1) // record) * record
                if record > 0
                else None
            )
            meta, arrays = _capture_run_state(
                config, generation, nature, population, evaluator, result,
                pending,
            )
            sink.save(unit, generation, meta, arrays)
        events = nature.generation_events()
        if events.pc or events.mutation:
            _apply_generation_events(
                generation,
                events.pc,
                events.mutation,
                nature,
                population,
                evaluator,
                result,
                structure,
                progress,
                cancel,
                fault,
            )
        if config.record_every > 0 and generation > 0:
            _maybe_snapshot(result, population, generation, force=False)
    return _finalise(result, population, evaluator, started)


def run_event_driven(
    config: EvolutionConfig,
    population: Population | None = None,
    batch_size: int = 1 << 16,
    *,
    cache: PayoffCache | None = None,
    evaluator: Evaluator | None = None,
) -> EvolutionResult:
    """Fast-forward evolution: identical trajectory, ~1000x faster.

    Scans event flags in vectorised batches and executes Python logic only
    at event generations.  Snapshot recording (``record_every``) is aligned
    to the same generations as :func:`run_serial`.  ``cache`` / ``evaluator``
    substitute the payoff evaluator (see :func:`run_serial`).
    """
    started = time.perf_counter()
    tree = SeedSequenceTree(config.seed)
    nature = NatureAgent(config, tree)
    structure = build_structure(config.structure, config.n_ssets)
    sink = _arm_checkpointing(config, population, cache, evaluator)
    unit = unit_key([config.to_dict()]) if sink is not None else None
    restored = (
        _resume_run_state(sink, unit, config, nature)
        if sink is not None
        else None
    )
    every = config.record_every
    if restored is not None:
        result, population, evaluator, start_gen, next_snapshot = restored
    else:
        if population is None:
            population = Population.random(config, tree.generator("init"))
        evaluator = _resolve_evaluator(
            config, nature, population, cache, evaluator
        )
        if sink is not None:
            _enable_capture_logs(evaluator)
        result = EvolutionResult(config=config, population=population)
        _maybe_snapshot(result, population, 0, force=True)
        start_gen = 0
        next_snapshot = every if every > 0 else None
    progress = progress_callback()
    cancel = cancel_token()
    fault = faults.hook("driver.generation")
    save_every = config.checkpoint_every if sink is not None else 0

    generation = start_gen
    remaining = config.generations - start_gen
    while remaining > 0:
        batch = min(batch_size, remaining)
        if save_every > 0:
            # Stop the batch at the next checkpoint multiple so the
            # boundary state matches the serial driver's loop top exactly
            # (the batched flag draw consumes the same stream words either
            # way: random(2a) then random(2b) == random(2(a+b))).
            batch = min(batch, save_every - generation % save_every)
        pc_flags, mu_flags = nature.batch_event_flags(batch)
        event_offsets = np.nonzero(pc_flags | mu_flags)[0]
        for offset in event_offsets:
            gen = generation + int(offset)
            # The serial driver snapshots *after* applying a generation's
            # events; emit pending snapshots strictly before this event's
            # generation, then the event, then a same-generation snapshot.
            while next_snapshot is not None and next_snapshot < gen:
                if next_snapshot < config.generations:
                    _maybe_snapshot(result, population, next_snapshot, force=True)
                next_snapshot += every
            _apply_generation_events(
                gen,
                bool(pc_flags[offset]),
                bool(mu_flags[offset]),
                nature,
                population,
                evaluator,
                result,
                structure,
                progress,
                cancel,
                fault,
            )
            if next_snapshot is not None and next_snapshot == gen:
                if gen < config.generations:
                    _maybe_snapshot(result, population, gen, force=True)
                next_snapshot += every
        generation += batch
        remaining -= batch
        if (
            save_every > 0
            and generation % save_every == 0
            and 0 < generation < config.generations
        ):
            # Bring the snapshot schedule to the boundary first (the serial
            # driver would have recorded these before reaching it), so the
            # captured state is driver-independent.
            while next_snapshot is not None and next_snapshot < generation:
                if next_snapshot < config.generations:
                    _maybe_snapshot(
                        result, population, next_snapshot, force=True
                    )
                next_snapshot += every
            meta, arrays = _capture_run_state(
                config, generation, nature, population, evaluator, result,
                next_snapshot,
            )
            sink.save(unit, generation, meta, arrays)
    # Snapshots scheduled after the last event.
    while next_snapshot is not None and next_snapshot < config.generations:
        _maybe_snapshot(result, population, next_snapshot, force=True)
        next_snapshot += every
    return _finalise(result, population, evaluator, started)
