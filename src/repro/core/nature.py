"""The Nature Agent — master of population dynamics (paper Section IV.E).

The Nature Agent is the *only* source of randomness for population dynamics:
it decides in which generations pairwise-comparison (PC) learning and
mutation occur, which SSets are involved, and what the mutant strategies
are.  Centralising the randomness is what makes the parallel implementation
deterministic — every rank sees the same broadcast decisions — and we
exploit the same property to guarantee that the serial driver, the
event-driven fast-forward driver, and the DES parallel programs all follow
the *same trajectory* for the same seed.

Stream layout (from :class:`repro.rng.SeedSequenceTree`):

* ``events``   — two uniforms per generation (PC? mutation?), batchable;
* ``pc``       — teacher/learner selection + the Fermi adoption uniform;
* ``mutation`` — target selection + mutant strategy bits;
* ``games``    — game sampling for stochastic configurations;
* ``sampled``  — game sampling for the opt-in *batched* sampled engine
  (:class:`~repro.core.engine.SampledFitnessEngine`).  A dedicated stream,
  so the batched mode is reproducible per seed without perturbing the four
  legacy streams (its games are deliberately not bit-identical to the
  scalar ``games`` draws — equivalence to legacy is statistical).  Not part
  of :meth:`NatureAgent.stream_states`: checkpoints carry its position in
  the evaluator snapshot instead, keeping legacy checkpoint payloads
  byte-stable.

Because streams are separate, a driver that *batches* the events stream
(event-driven mode) consumes exactly the same pc/mutation draws as one that
loops generation by generation, so the two are bit-identical.

Paper-listing deviations (see DESIGN.md section 3): we read the prose as
authoritative — adoption happens *with* probability p (the listing's
``rand > p`` would invert it) and mutation *with* probability mu.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedSequenceTree
from ..structure import InteractionModel, WellMixed
from .config import EvolutionConfig
from .fermi import fermi_probability
from .strategy import Strategy, random_mixed, random_pure

__all__ = ["GenerationEvents", "PCDecision", "MutationDecision", "NatureAgent"]


@dataclass(frozen=True)
class GenerationEvents:
    """Which evolutionary processes fire this generation."""

    pc: bool
    mutation: bool


@dataclass(frozen=True)
class PCDecision:
    """A pairwise-comparison event: who teaches whom, and the adoption draw."""

    teacher: int
    learner: int
    adoption_uniform: float


@dataclass(frozen=True)
class MutationDecision:
    """A mutation event: which SSet receives which new strategy."""

    target: int
    strategy: Strategy


class NatureAgent:
    """Decision engine shared by all drivers (serial, event-driven, DES)."""

    def __init__(self, config: EvolutionConfig, tree: SeedSequenceTree):
        self.config = config
        self._events_rng = tree.generator("nature", "events")
        self._pc_rng = tree.generator("nature", "pc")
        self._mutation_rng = tree.generator("nature", "mutation")
        self.games_rng = tree.generator("nature", "games")
        self.sampled_rng = tree.generator("nature", "sampled")

    # -- checkpointing ------------------------------------------------------

    def stream_states(self) -> dict:
        """All four stream positions as raw bit-generator state.

        Capturing the full state dict (counter position *and* the
        generator's buffered words) is what makes a mid-run checkpoint
        resume bit-identical — a freshly seeded agent fast-forwarded by
        draw *count* would lose the buffer/uinteger carry.
        """
        from .runstate import generator_state

        return {
            "events": generator_state(self._events_rng),
            "pc": generator_state(self._pc_rng),
            "mutation": generator_state(self._mutation_rng),
            "games": generator_state(self.games_rng),
        }

    def restore_stream_states(self, states: dict) -> None:
        """Rewind all four streams to positions from :meth:`stream_states`."""
        from .runstate import restore_generator

        restore_generator(self._events_rng, states["events"])
        restore_generator(self._pc_rng, states["pc"])
        restore_generator(self._mutation_rng, states["mutation"])
        restore_generator(self.games_rng, states["games"])

    # -- event scheduling ---------------------------------------------------

    def generation_events(self) -> GenerationEvents:
        """Draw this generation's event flags (two uniforms, fixed order)."""
        u_pc = self._events_rng.random()
        u_mu = self._events_rng.random()
        return GenerationEvents(
            pc=u_pc < self.config.pc_rate, mutation=u_mu < self.config.mutation_rate
        )

    def batch_event_flags(self, n_generations: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`generation_events` for ``n_generations``.

        Consumes the events stream in exactly the same order as n successive
        scalar calls, so a batching driver stays on the serial trajectory.
        """
        draws = self._events_rng.random(2 * n_generations)
        return (
            draws[0::2] < self.config.pc_rate,
            draws[1::2] < self.config.mutation_rate,
        )

    # -- pairwise comparison --------------------------------------------------

    def pc_selection(
        self, n_ssets: int, structure: InteractionModel | None = None
    ) -> PCDecision:
        """Select teacher and learner SSets (distinct) and the adoption draw.

        Without a ``structure`` (or with the well-mixed one) both SSets are
        uniform over the population — teacher drawn first, then the learner
        with rejection, the historical order the bit-identical-trajectory
        contract pins (that order lives in exactly one place:
        :meth:`repro.structure.WellMixed.select_pair`, to which the bare
        call delegates).  A graph structure instead draws the learner
        uniformly and the teacher uniformly from the learner's neighborhood
        (the structured-population convention); either way the Nature Agent
        stays the only source of randomness.
        """
        if structure is None:
            structure = WellMixed(n_ssets)
        elif structure.n_ssets != n_ssets:
            raise ConfigurationError(
                f"structure is bound to {structure.n_ssets} SSets, "
                f"population has {n_ssets}"
            )
        teacher, learner = structure.select_pair(self._pc_rng)
        return PCDecision(
            teacher=teacher,
            learner=learner,
            adoption_uniform=float(self._pc_rng.random()),
        )

    def decide_learning(
        self, decision: PCDecision, teacher_fitness: float, learner_fitness: float
    ) -> bool:
        """Apply the Fermi rule (Eq. 1) to the pre-drawn adoption uniform.

        The paper gates learning on the teacher being strictly fitter;
        ``allow_downhill_learning`` removes the gate (the plain Fermi process
        of the cited literature).
        """
        if (
            not self.config.allow_downhill_learning
            and not teacher_fitness > learner_fitness
        ):
            return False
        p = fermi_probability(teacher_fitness, learner_fitness, self.config.beta)
        return decision.adoption_uniform < p

    # -- mutation -----------------------------------------------------------------

    def mutation_selection(self, n_ssets: int) -> MutationDecision:
        """Select the mutated SSet and generate its brand-new strategy."""
        target = int(self._mutation_rng.integers(n_ssets))
        make = random_mixed if self.config.mixed_strategies else random_pure
        strategy = make(self._mutation_rng, self.config.memory_steps)
        return MutationDecision(target=target, strategy=strategy)
