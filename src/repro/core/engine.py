"""Interned-strategy fitness engine: dense payoff-matrix population fitness.

The legacy :class:`~repro.core.payoff_cache.PayoffCache` keys every probe on
strategy *bytes* (``table.tobytes()`` + a dict of bytes tuples) and walks
Python loops per distinct opponent.  This module replaces those per-event
loops with integer-indexed array math:

* :class:`StrategyPool` interns every distinct strategy table into a stable
  integer id (**sid**) backed by one stacked ``(capacity, 4**n)`` table
  array (the layout of :func:`repro.core.vectorgame.stack_tables`).  Slots
  are reference-counted against the population multiset.  In the
  deterministic regime they are recycled when the last SSet drops a
  strategy, keeping the pool O(population) for arbitrarily long runs; the
  expected regime instead *retires* dead slots (see the bit-parity notes
  below), so there — like the legacy cache it mirrors, though with a
  denser footprint — memory grows with the distinct strategies ever seen.

* :class:`FitnessEngine` maintains a dense ``capacity x capacity`` payoff
  matrix over those slots — ``paymat[i, j]`` is the total game payoff
  strategy ``i`` earns against strategy ``j`` — and population fitness
  collapses to ``counts @ paymat[sid]`` for well-mixed populations and
  ``paymat[sid, sids[neighbors]].sum()`` for graph neighborhoods.

Bit-parity contract
-------------------
The engine is an *optimisation*, not a model change: for every supported
configuration it must follow the **bit-identical trajectory** of the legacy
``PayoffCache`` path (pinned by the golden-hash tests).  That drives the
regime split:

* **deterministic** (pure strategies, no noise) — new sids are filled
  *eagerly*, one batched cycle-exact row+column evaluation per intern
  (:func:`repro.core.vectorgame.cycle_payoffs_pairs`).  Payoffs are sums of
  integer payoff-matrix entries, exact in float64 in any summation order,
  so the vectorised fills and dot products match the scalar cycle engine
  bit for bit.  Integer payoff matrices only — the engine refuses (and
  drivers fall back to the legacy cache) otherwise.

* **expected** (Markov-exact fitness for noisy / mixed games) — expected
  payoffs are irrational floats whose summation order matters, and the
  batched Markov kernel is *not* bitwise perspective-symmetric, so eager
  transposed fills would drift by ulps.  The engine instead fills rows
  *lazily at query time with the focal strategy as the evaluation
  perspective*, exactly when and how the legacy cache evaluates its
  misses (same kernel, :func:`repro.core.markov.expected_payoffs_many`,
  same batch membership), and accumulates fitness in the same
  histogram-insertion order with the same left-to-right float additions.

* **sampled** (stochastic games without ``expected_fitness``) — every game
  is an independent draw from the shared RNG stream and is never cached,
  so there is nothing to vectorise without changing the random-number
  consumption (and hence the trajectory).  :meth:`FitnessEngine.from_config`
  returns ``None`` and the drivers keep the legacy scalar path — unless the
  configuration *opts in* with ``sampled_batched=True``, which swaps in the
  :class:`SampledFitnessEngine` below: all of an event's sampled games run
  as one :func:`repro.core.vectorgame.play_pairs_uniforms` program over a
  dedicated seed stream.  That mode trades the bit-parity contract for a
  *statistical-equivalence* contract against the legacy scalar path
  (pinned by distribution tests), while staying bit-reproducible per seed
  and bit-identical between the serial and ensemble drivers.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from ..errors import ConfigurationError, SimulationError, StrategyError
from ..xp import get_array_backend
from .config import EvolutionConfig
from .cycle import exact_payoffs
from .markov import expected_payoffs, expected_payoffs_many
from .paymat import BlockedPairStore, validate_paymat_block
from .payoff import PAPER_PAYOFF, PayoffMatrix
from .payoff_cache import PayoffCache
from .states import num_states
from .strategy import Strategy
from .vectorgame import (
    cycle_payoffs_pairs,
    play_pairs_uniforms,
    sampled_draws_per_round,
    stack_tables,
)

__all__ = [
    "StrategyPool",
    "FitnessEngine",
    "SampledFitnessEngine",
    "SampledPlan",
    "is_integer_payoff",
    "shared_engine_pairs",
    "enable_engine_pair_sharing",
    "pair_sharing_active",
]


def is_integer_payoff(payoff: PayoffMatrix) -> bool:
    """Whether every payoff value is integer-valued (float-exact sums)."""
    return all(float(v).is_integer() for v in payoff.vector)


#: Pair-evaluation key: the two strategies' byte identities, focal first.
_PairKey = tuple[bytes, bytes]
#: Engine compatibility signature for shared pair stores: deterministic
#: payoffs depend on (memory, rounds, payoff matrix) alone — never the seed.
_ShareSig = tuple[int, int, tuple[float, ...]]


class _PairShareState:
    """Process-local cross-run store of deterministic pair evaluations.

    Deterministic cycle-exact payoffs are a pure function of the two
    strategy tables plus ``(rounds, payoff)`` — they carry no seed and no
    population state — so every run of a :func:`run_sweep` ensemble
    re-derives exactly the same matrix entries.  When sharing is enabled
    (see :func:`shared_engine_pairs`), deterministic-regime engines read
    previously evaluated pairs from this store instead of re-deriving them
    and publish their own evaluations back, so a sweep's later runs (or a
    pool worker's later tasks) start from a warm matrix.  Trajectories are
    unaffected — the values are float-exact either way — only the
    ``misses`` evaluation counters shrink.
    """

    __slots__ = ("enabled", "store")

    def __init__(self) -> None:
        self.enabled = False
        self.store: dict[_ShareSig, dict[_PairKey, tuple[float, float]]] = {}


_PAIR_SHARE = _PairShareState()


@contextmanager
def shared_engine_pairs() -> Iterator[
    dict[_ShareSig, dict[_PairKey, tuple[float, float]]]
]:
    """Share deterministic pair evaluations across engines in this block.

    Used by :func:`repro.api.run_sweep` around its in-process run loop so
    successive deterministic runs stop re-deriving identical payoff-matrix
    entries.  Nested use keeps the outermost store; leaving the outermost
    block clears it (the store holds a whole sweep's distinct strategies).
    """
    prev = _PAIR_SHARE.enabled
    _PAIR_SHARE.enabled = True
    try:
        yield _PAIR_SHARE.store
    finally:
        _PAIR_SHARE.enabled = prev
        if not prev:
            _PAIR_SHARE.store.clear()


def enable_engine_pair_sharing() -> None:
    """Enable pair sharing for this process's lifetime (no clearing).

    The process-pool initializer of :func:`repro.api.run_sweep` calls this
    in each worker, so a worker's successive runs share evaluations; the
    store dies with the worker process.
    """
    _PAIR_SHARE.enabled = True


def pair_sharing_active() -> bool:
    """Whether cross-run pair sharing is enabled on this thread's process.

    Mid-run checkpointing (:mod:`repro.core.runstate`) refuses to arm while
    sharing is active: a resumed engine rebuilds only its *live* pairs, so
    the shared store would diverge from an uninterrupted process and the
    evaluation counters (part of the result payload) would drift.
    """
    return _PAIR_SHARE.enabled


class StrategyPool:
    """Interns distinct strategy tables into stable, recycled integer slots.

    The pool is the sid <-> strategy bijection behind the engine: one
    stacked table array plus per-slot reference counts.  ``acquire`` /
    ``release`` mirror the add/remove semantics of
    :class:`~repro.core.payoff_cache.StrategyHistogram` — including
    insertion order, which :meth:`ordered_sids` exposes because the
    expected-fitness regime must accumulate payoffs in exactly that order
    to stay on the legacy trajectory.
    """

    def __init__(
        self,
        memory_steps: int,
        dtype: np.dtype,
        capacity: int = 64,
        evict: bool = True,
        cap: int = 0,
        on_evict: "Callable[[int], None] | None" = None,
    ):
        if memory_steps < 1:
            raise ConfigurationError(
                f"memory_steps must be >= 1, got {memory_steps}"
            )
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if cap < 0:
            raise ConfigurationError(
                f"cap must be >= 0 (0 = unbounded), got {cap}"
            )
        self.memory_steps = memory_steps
        self.n_states = num_states(memory_steps)
        #: With ``evict`` (deterministic regime) a slot whose refcount hits
        #: zero is recycled, keeping the pool O(live strategies).  Without
        #: it (expected regime) the slot is *retired* — the strategy, its
        #: id, and its matrix row survive so a strategy that dies and later
        #: reappears reuses its previously evaluated payoffs, exactly like
        #: the legacy cache's unbounded memoisation (bit-parity needs this:
        #: re-evaluating from a different perspective drifts by ulps).
        self.evict = evict
        #: Non-evicting pools only: bound on live + retired strategies
        #: tracked.  Once reached, acquiring a *new* strategy recycles the
        #: oldest retired slot (``on_evict`` is told so dependent matrices
        #: can invalidate the slot's rows) instead of tracking one more.
        #: 0 = unbounded, the legacy-mirroring default.
        self.cap = cap
        self.on_evict = on_evict
        #: Retired slots (refcount 0, strategy kept) in retirement order —
        #: the cap's recycling queue.  Always empty in evicting pools.
        self._retired: dict[int, None] = {}
        self._tables = np.zeros((capacity, self.n_states), dtype=dtype)
        self._strategies: list[Strategy | None] = [None] * capacity
        self._ids: dict[bytes, int] = {}
        self._refcounts = np.zeros(capacity, dtype=np.int64)
        #: LIFO free list (low slots first) — slot assignment is
        #: deterministic but carries no science, only matrix layout.
        self._free = list(range(capacity - 1, -1, -1))
        #: Live sids in histogram insertion order (dict preserves order).
        self._order: dict[int, None] = {}
        self._order_array: np.ndarray | None = None

    # -- views ----------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._tables.shape[0]

    @property
    def tables(self) -> np.ndarray:
        """The stacked ``(capacity, 4**n)`` backing array (live rows valid)."""
        return self._tables

    @property
    def refcounts(self) -> np.ndarray:
        """Per-slot SSet counts (0 for free slots)."""
        return self._refcounts

    def __len__(self) -> int:
        """Number of distinct live strategies."""
        return len(self._order)

    @property
    def tracked(self) -> int:
        """Distinct strategies the pool holds tables for (live + retired)."""
        return len(self._order) + len(self._retired)

    @property
    def total(self) -> int:
        """Number of SSets represented (sum of refcounts)."""
        return int(self._refcounts.sum())

    def __contains__(self, strategy: Strategy) -> bool:
        return strategy.key() in self._ids

    def sid_of(self, strategy: Strategy) -> int:
        """The live sid of ``strategy`` (KeyError if not interned)."""
        return self._ids[strategy.key()]

    def strategy(self, sid: int) -> Strategy:
        found = self._strategies[sid]
        if found is None:
            raise SimulationError(f"slot {sid} is free (no live strategy)")
        return found

    def count(self, sid: int) -> int:
        return int(self._refcounts[sid])

    def ordered_sids(self) -> np.ndarray:
        """Live sids in histogram insertion order (cached array view)."""
        if self._order_array is None:
            self._order_array = np.fromiter(
                self._order, dtype=np.int64, count=len(self._order)
            )
        return self._order_array

    # -- interning ------------------------------------------------------------

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        tables = np.zeros((new, self.n_states), dtype=self._tables.dtype)
        tables[:old] = self._tables
        self._tables = tables
        refcounts = np.zeros(new, dtype=np.int64)
        refcounts[:old] = self._refcounts
        self._refcounts = refcounts
        self._strategies.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def acquire(self, strategy: Strategy) -> tuple[int, bool]:
        """Intern ``strategy`` (refcount + 1); returns ``(sid, is_new)``."""
        if strategy.memory_steps != self.memory_steps:
            raise StrategyError(
                f"pool interns memory-{self.memory_steps} strategies, got "
                f"memory-{strategy.memory_steps}"
            )
        key = strategy.key()
        sid = self._ids.get(key)
        if sid is not None:
            if self._refcounts[sid] == 0:
                # Reviving a retired slot (non-evicting pools only): the
                # strategy re-enters the live order at the end, exactly
                # like a histogram re-add.
                self._order[sid] = None
                self._order_array = None
                self._retired.pop(sid, None)
            self._refcounts[sid] += 1
            return sid, False
        if (
            self.cap
            and not self.evict
            and self._retired
            and self.tracked >= self.cap
        ):
            self._evict_oldest_retired()
        if not self._free:
            self._grow()
        sid = self._free.pop()
        table = (
            strategy.table
            if self._tables.dtype == strategy.table.dtype
            else strategy.defect_probabilities()
        )
        self._tables[sid] = table
        self._strategies[sid] = strategy
        self._ids[key] = sid
        self._refcounts[sid] = 1
        self._order[sid] = None
        self._order_array = None
        return sid, True

    def release(self, sid: int) -> bool:
        """Drop one reference; returns True when the strategy left the live
        set (slot recycled when evicting, retired otherwise)."""
        if self._refcounts[sid] <= 0:
            raise SimulationError(f"release of slot {sid} with no references")
        self._refcounts[sid] -= 1
        if self._refcounts[sid] > 0:
            return False
        del self._order[sid]
        self._order_array = None
        if self.evict:
            strategy = self._strategies[sid]
            assert strategy is not None
            del self._ids[strategy.key()]
            self._strategies[sid] = None
            self._free.append(sid)
        else:
            self._retired[sid] = None
        return True

    def _evict_oldest_retired(self) -> None:
        """Recycle the longest-retired slot (cap enforcement).

        The slot's strategy, id, and — through ``on_evict`` — any dependent
        matrix rows are dropped, so a later reappearance of the strategy is
        re-evaluated from scratch (the documented over-cap ulp caveat).
        """
        sid = next(iter(self._retired))
        del self._retired[sid]
        strategy = self._strategies[sid]
        assert strategy is not None
        del self._ids[strategy.key()]
        self._strategies[sid] = None
        self._free.append(sid)
        if self.on_evict is not None:
            self.on_evict(sid)

    def stats(self) -> dict[str, int]:
        """Pool occupancy + memory accounting for reports/benchmarks."""
        return {
            "live": len(self._order),
            "retired": len(self._retired),
            "tracked": self.tracked,
            "capacity": self.capacity,
            "tables_bytes": int(self._tables.nbytes)
            + int(self._refcounts.nbytes),
        }


class FitnessEngine:
    """Dense payoff-matrix fitness over interned strategies.

    Built directly (see ``__init__`` parameters, mirroring
    :class:`~repro.core.payoff_cache.PayoffCache`) or from a configuration
    via :meth:`from_config`, which returns ``None`` for regimes the dense
    kernel cannot serve bit-identically (sampled-stochastic fitness, or
    deterministic fitness under a non-integer payoff matrix) so callers
    fall back to the legacy cache.

    ``hits`` counts fitness queries served from the dense matrix;
    ``misses`` counts ordered pair evaluations performed to fill it (the
    analogue of the legacy cache's evaluation count).
    """

    def __init__(
        self,
        memory_steps: int,
        rounds: int,
        payoff: PayoffMatrix = PAPER_PAYOFF,
        noise: float = 0.0,
        expected: bool = False,
        mixed: bool = False,
        capacity: int = 64,
        pool_cap: int = 0,
        paymat_block: int = 0,
        array_backend: str | None = None,
    ):
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        if not expected:
            if noise > 0.0 or mixed:
                raise ConfigurationError(
                    "stochastic sampled fitness cannot be served from a "
                    "dense payoff matrix (every game is an independent "
                    "draw); use expected=True or the legacy PayoffCache"
                )
            if not is_integer_payoff(payoff):
                raise ConfigurationError(
                    "the deterministic dense kernel is float-exact (hence "
                    "trajectory-identical to the legacy cache) only for "
                    f"integer payoff matrices, got {list(payoff.vector)}; "
                    "use the legacy PayoffCache for non-integer payoffs"
                )
        self.rounds = rounds
        self.payoff = payoff
        self.noise = noise
        self.expected = expected
        #: Deterministic fills may keep float32 block sums in the batched
        #: kernel — exact (hence still bit-identical) while every partial
        #: sum stays under 2**24.
        self._compact_fill = not expected and rounds * max(
            abs(float(v)) for v in payoff.vector
        ) < 2.0**24
        self.pool = StrategyPool(
            memory_steps,
            np.dtype(np.float64) if mixed else np.dtype(np.uint8),
            capacity=capacity,
            # The expected regime retires slots instead of recycling them —
            # see StrategyPool.evict; the legacy cache it mirrors never
            # forgets an evaluated pair either.  ``pool_cap`` bounds the
            # retirement (EvolutionConfig.engine_pool_cap).
            evict=not expected,
            cap=pool_cap,
            on_evict=self._on_slot_evicted,
        )
        capacity = self.pool.capacity
        # The per-run engine's fitness path is scalar and event-driven, so
        # its matrix always lives on host (the ensemble engine is the
        # accelerator path); a requested accelerator backend is recorded
        # for provenance but storage stays NumPy.
        requested = get_array_backend(array_backend)
        self.array_backend = (
            requested.describe()
            if requested.is_numpy
            else f"numpy ({requested.resolved} requested; "
            "per-run engine runs on host)"
        )
        validate_paymat_block(paymat_block)
        if paymat_block and expected:
            raise ConfigurationError(
                "paymat_block serves the deterministic regime only: the "
                "expected regime's matrix must keep every evaluated entry "
                "(re-evaluation drifts by ulps)"
            )
        #: Dense ``capacity x capacity`` float64 matrix, or a
        #: :class:`~repro.core.paymat.BlockedPairStore` speaking the same
        #: indexing dialect when ``paymat_block`` shards it.
        if paymat_block:
            self._paymat: "np.ndarray | BlockedPairStore" = BlockedPairStore(
                capacity,
                paymat_block,
                np.float64,
                get_array_backend(),
                track_evaluated=False,
            )
        else:
            self._paymat = np.zeros((capacity, capacity), dtype=np.float64)
        #: Lazy-regime fill mask; the eager deterministic regime keeps every
        #: live row/column filled by construction and leaves this ``None``.
        self._evaluated: np.ndarray | None = (
            np.zeros((capacity, capacity), dtype=bool) if expected else None
        )
        #: Cross-run shared pair store for this engine's signature (see
        #: :func:`shared_engine_pairs`); deterministic regime only, ``None``
        #: when sharing is off.
        self._shared_pairs: dict[_PairKey, tuple[float, float]] | None = None
        if not expected and _PAIR_SHARE.enabled:
            sig: _ShareSig = (
                memory_steps,
                rounds,
                tuple(float(v) for v in payoff.vector),
            )
            self._shared_pairs = _PAIR_SHARE.store.setdefault(sig, {})
        self.hits = 0
        self.misses = 0
        #: Ordered log of lazy (expected-regime) fill operations, armed by
        #: :meth:`enable_fill_log` when mid-run checkpointing is active.
        #: Each entry is ``("row", sid, missing_list)`` (an
        #: :meth:`_ensure_row` evaluation batch) or ``("self", sid)`` (a
        #: scalar :meth:`_self_payoff` evaluation).  Replaying the log on a
        #: freshly interned pool reproduces the matrix, the evaluated mask,
        #: and every ulp — same kernel, same batch membership — which is how
        #: :mod:`repro.core.runstate` rebuilds the engine deterministically
        #: instead of serialising the float matrix.  ``None`` (the default)
        #: costs nothing on the hot path.
        self._fill_log: list[tuple] | None = None

    def enable_fill_log(self) -> None:
        """Start recording lazy fill operations (idempotent; expected
        regime only — the eager deterministic matrix rebuilds from the
        population alone and needs no history)."""
        if self._fill_log is None:
            self._fill_log = []

    @classmethod
    def from_config(cls, config: EvolutionConfig) -> "FitnessEngine | None":
        """Build the engine for ``config``, or ``None`` when the dense
        kernel cannot reproduce the legacy trajectory bit-for-bit."""
        if not config.engine:
            return None
        if config.is_stochastic:
            # Sampled regime: the legacy path replays one fresh game per
            # probe from the shared games stream; caching would change both
            # the science and the RNG consumption.
            return None
        expected = config.expected_fitness and (
            config.noise > 0.0 or config.mixed_strategies
        )
        if not expected and not is_integer_payoff(config.payoff):
            return None
        return cls(
            memory_steps=config.memory_steps,
            rounds=config.rounds,
            payoff=config.payoff,
            noise=config.noise,
            expected=expected,
            mixed=config.mixed_strategies,
            capacity=max(64, config.n_ssets + 2),
            pool_cap=config.engine_pool_cap,
            paymat_block=0 if expected else config.paymat_block,
            array_backend=config.array_backend,
        )

    # -- matrix maintenance ----------------------------------------------------

    @property
    def paymat(self):
        """The payoff matrix (rows/columns beyond live sids stale): a dense
        ndarray, or the blocked store speaking the same gather dialect."""
        return self._paymat

    def _sync_capacity(self) -> None:
        capacity = self.pool.capacity
        if self._paymat.shape[0] == capacity:
            return
        if isinstance(self._paymat, BlockedPairStore):
            self._paymat.grow(capacity)
            return
        paymat = np.zeros((capacity, capacity), dtype=np.float64)
        old = self._paymat.shape[0]
        paymat[:old, :old] = self._paymat
        self._paymat = paymat
        if self._evaluated is not None:
            evaluated = np.zeros((capacity, capacity), dtype=bool)
            evaluated[:old, :old] = self._evaluated
            self._evaluated = evaluated

    def intern(self, strategy: Strategy) -> int:
        """Intern one strategy occurrence, filling the matrix if new."""
        sid, is_new = self.pool.acquire(strategy)
        if is_new:
            self._sync_capacity()
            if self._evaluated is None:
                self._fill_deterministic(sid)
        return sid

    def intern_all(self, strategies: list[Strategy]) -> np.ndarray:
        """Bulk-intern a population's strategies; returns the sid array.

        Stacks the tables first (:func:`repro.core.vectorgame.stack_tables`)
        so a heterogeneous list fails loudly before any slot is allocated.
        """
        _, memory_steps, any_mixed = stack_tables(strategies)
        if memory_steps != self.pool.memory_steps:
            raise StrategyError(
                f"engine interns memory-{self.pool.memory_steps} strategies, "
                f"got memory-{memory_steps}"
            )
        if any_mixed and self.pool.tables.dtype == np.uint8:
            raise StrategyError(
                "engine was built for pure strategies but the population "
                "holds mixed ones"
            )
        return np.array([self.intern(s) for s in strategies], dtype=np.int64)

    def release(self, sid: int) -> None:
        """Drop one strategy occurrence (slot recycled or retired at zero;
        retired slots keep their evaluated payoffs for reappearances)."""
        self.pool.release(sid)

    def _on_slot_evicted(self, sid: int) -> None:
        """Pool cap recycled a retired slot: invalidate its matrix rows."""
        self._paymat[sid, :] = 0.0
        self._paymat[:, sid] = 0.0
        if self._evaluated is not None:
            self._evaluated[sid, :] = False
            self._evaluated[:, sid] = False

    def _fill_deterministic(self, sid: int) -> None:
        """Eager batched cycle-exact row + column fill for a new sid.

        With pair sharing enabled (:func:`shared_engine_pairs`), pairs a
        previous same-signature engine already evaluated are copied from
        the shared store — the values are float-exact pure functions of the
        strategy pair, so the trajectory is unchanged and only the
        evaluation count (``misses``) shrinks; fresh evaluations are
        published back for the runs that follow.
        """
        live = self.pool.ordered_sids()
        shared = self._shared_pairs
        if shared is None:
            focal = np.full(live.shape, sid, dtype=np.intp)
            pay_new, pay_live = cycle_payoffs_pairs(
                self.pool.tables, focal, live, self.rounds, self.payoff,
                compact_sums=self._compact_fill,
            )
            self._paymat[sid, live] = pay_new
            self._paymat[live, sid] = pay_live
            self.misses += len(live)
            return
        key_new = self.pool.strategy(sid).key()
        todo: list[int] = []
        for j in live.tolist():
            found = shared.get((key_new, self.pool.strategy(j).key()))
            if found is None:
                todo.append(j)
            else:
                self._paymat[sid, j], self._paymat[j, sid] = found
        if todo:
            targets = np.asarray(todo, dtype=np.intp)
            focal = np.full(targets.shape, sid, dtype=np.intp)
            pay_new, pay_live = cycle_payoffs_pairs(
                self.pool.tables, focal, targets, self.rounds, self.payoff,
                compact_sums=self._compact_fill,
            )
            self._paymat[sid, targets] = pay_new
            self._paymat[targets, sid] = pay_live
            for j, to_new, to_j in zip(todo, pay_new, pay_live):
                key_j = self.pool.strategy(j).key()
                shared[(key_new, key_j)] = (float(to_new), float(to_j))
                shared[(key_j, key_new)] = (float(to_j), float(to_new))
            self.misses += len(todo)

    def _ensure_row(self, sid: int, opponents: list[int]) -> "np.floating | None":
        """Lazy expected-regime fill: evaluate the not-yet-known opponents
        from the focal perspective, exactly like the legacy cache evaluates
        its misses (same kernel, same batch, both directions stored).

        Returns the focal-perspective *self-pair* value when the self pair
        was among this call's misses, else ``None``.  Quirk compatibility:
        the legacy cache's reverse-entry store overwrites a freshly
        evaluated ``(a, a)`` entry with the mirrored (opponent-perspective)
        value — which is not always bit-equal, the batched Markov kernel is
        not perspective-symmetric in the last ulp — while the *evaluating
        call itself* accumulates the focal-perspective value.  The matrix
        diagonal therefore keeps the mirrored value (what every later
        probe sees) and the caller patches this return value in for the
        current accumulation only.
        """
        evaluated = self._evaluated
        assert evaluated is not None
        row = evaluated[sid]
        missing = [j for j in opponents if not row[j]]
        if not missing:
            return None
        focal = self.pool.strategy(sid)
        targets = [self.pool.strategy(j) for j in missing]
        to_focal, to_targets = expected_payoffs_many(
            focal, targets, self.rounds, self.payoff, self.noise
        )
        cols = np.asarray(missing, dtype=np.intp)
        self._paymat[sid, cols] = to_focal
        self._paymat[cols, sid] = to_targets
        evaluated[sid, cols] = True
        evaluated[cols, sid] = True
        self.misses += len(missing)
        if self._fill_log is not None:
            self._fill_log.append(("row", int(sid), [int(j) for j in missing]))
        if sid in missing:
            return to_focal[missing.index(sid)]
        return None

    def _self_payoff(self, sid: int) -> float:
        """Payoff of a strategy against itself, legacy scalar semantics.

        The legacy cache reaches self-play through the *scalar*
        ``pair_payoffs`` path (cycle-exact for pure noiseless pairs, scalar
        Markov otherwise).  Quirk compatibility, same as the batched fill:
        on a self-pair the legacy reverse-entry store overwrites the cache
        with the opponent-perspective value, so the *evaluating* call
        returns ``pay_a`` while every later probe sees ``pay_b`` (not
        always bit-equal under the Markov engine).  The matrix keeps
        ``pay_b``; this call returns ``pay_a``.
        """
        if self._evaluated is None:
            return float(self._paymat[sid, sid])
        if self._evaluated[sid, sid]:
            return float(self._paymat[sid, sid])
        strategy = self.pool.strategy(sid)
        if self.noise == 0.0 and strategy.is_pure:
            pay_a, pay_b, _ = exact_payoffs(
                strategy, strategy, self.rounds, self.payoff
            )
        else:
            pay_a, pay_b, _ = expected_payoffs(
                strategy, strategy, self.rounds, self.payoff, noise=self.noise
            )
        self._paymat[sid, sid] = pay_b
        self._evaluated[sid, sid] = True
        self.misses += 1
        if self._fill_log is not None:
            self._fill_log.append(("self", int(sid)))
        return pay_a

    # -- fitness kernels ---------------------------------------------------------

    @property
    def is_eager(self) -> bool:
        """Whether the matrix is eagerly filled (deterministic regime) —
        every live row/column is valid by construction, so batched gathers
        (:meth:`gather_fitness`) can read it without per-pair checks."""
        return self._evaluated is None

    def gather_fitness(
        self,
        structure,
        sids: np.ndarray,
        nodes: np.ndarray | None = None,
        include_self_play: bool = False,
    ) -> np.ndarray:
        """Batched graph fitness over the structure's CSR adjacency.

        ``structure`` is a :class:`~repro.structure.graphs.GraphStructure`;
        the deterministic (eager) regime hands its dense matrix straight to
        :meth:`~repro.structure.graphs.GraphStructure.gather_fitness` — one
        flat gather + segment reduction for all ``nodes`` (default: every
        node), bit-identical to per-node :meth:`fitness_neighbors` calls
        because integer payoffs sum exactly in float64 in any order.  The
        lazy expected regime falls back to per-node evaluation to keep the
        legacy fill-and-accumulation order (and hence bit parity).
        """
        sids = np.asarray(sids)
        if self._evaluated is None:
            count = structure.n_ssets if nodes is None else len(nodes)
            self.hits += count
            return structure.gather_fitness(
                sids, self._paymat, nodes=nodes, include_self_play=include_self_play
            )
        node_list = range(structure.n_ssets) if nodes is None else nodes
        return np.array(
            [
                self.fitness_neighbors(
                    int(sids[i]),
                    sids[structure.neighbors(int(i))],
                    include_self_play,
                )
                for i in node_list
            ],
            dtype=np.float64,
        )

    def fitness_well_mixed(self, sid: int, include_self_play: bool = False) -> float:
        """Fitness of one SSet holding ``sid`` against the whole pool
        multiset: ``counts @ paymat[sid]`` (minus self-play by default)."""
        self.hits += 1
        counts = self.pool.refcounts
        if self._evaluated is None:
            total = self._paymat[sid] @ counts
            if not include_self_play:
                total = total - self._paymat[sid, sid]
            return total
        # Expected regime: replicate the legacy histogram accumulation —
        # same insertion order, same left-to-right float additions (and the
        # same np.float64 scalar type: the golden event hashes repr() it).
        order = self.pool.ordered_sids()
        fresh_self = self._ensure_row(sid, [int(j) for j in order])
        row = self._paymat[sid]
        total = 0.0
        for j in order:
            pay = fresh_self if (fresh_self is not None and j == sid) else row[j]
            total += counts[j] * pay
        if not include_self_play:
            total -= row[sid]
        return total

    def fitness_neighbors(
        self,
        sid: int,
        neighbor_sids: np.ndarray,
        include_self_play: bool = False,
    ) -> float:
        """Fitness of one SSet against a graph neighborhood (one game per
        neighbor): ``paymat[sid, sids[neighbors]].sum()``."""
        self.hits += 1
        if self._evaluated is None:
            total = self._paymat[sid, neighbor_sids].sum()
            if include_self_play:
                total = total + self._self_payoff(sid)
            return total
        # Expected regime: group by first occurrence, mirroring the local
        # neighborhood StrategyHistogram the legacy path builds per call.
        local_counts: dict[int, int] = {}
        for j in neighbor_sids:
            j = int(j)
            local_counts[j] = local_counts.get(j, 0) + 1
        fresh_self = self._ensure_row(sid, list(local_counts))
        row = self._paymat[sid]
        total = 0.0
        for j, count in local_counts.items():
            pay = fresh_self if (fresh_self is not None and j == sid) else row[j]
            total += count * pay
        if include_self_play:
            total += self._self_payoff(sid)
        return total

    # -- introspection -------------------------------------------------------------

    def payoff_between(self, sid_a: int, sid_b: int) -> float:
        """Payoff ``sid_a`` earns against ``sid_b`` (evaluating on demand
        in the lazy regime) — a debugging/testing convenience."""
        self.pool.strategy(sid_a)
        self.pool.strategy(sid_b)
        if self._evaluated is not None:
            self._ensure_row(sid_a, [sid_b])
        return float(self._paymat[sid_a, sid_b])

    def stats(self) -> dict[str, int]:
        """Counters + memory accounting for reports/benchmarks."""
        stats = {
            "distinct": len(self.pool),
            "capacity": self.pool.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }
        if isinstance(self._paymat, BlockedPairStore):
            stats.update(self._paymat.stats())
        else:
            paymat_bytes = int(self._paymat.nbytes)
            if self._evaluated is not None:
                paymat_bytes += int(self._evaluated.nbytes)
            stats["paymat_bytes"] = paymat_bytes
        stats["pool"] = self.pool.stats()
        return stats

    def check_consistent(self, strategies: list[Strategy]) -> None:
        """Verify the pool matches a recount of ``strategies`` exactly
        (counts, insertion is not checked) — test/paranoia helper."""
        counts: dict[bytes, int] = {}
        for s in strategies:
            counts[s.key()] = counts.get(s.key(), 0) + 1
        live = {self.pool.strategy(int(j)).key(): self.pool.count(int(j))
                for j in self.pool.ordered_sids()}
        if counts != live:
            raise SimulationError(
                "strategy pool desynced from the population multiset "
                f"({len(counts)} distinct expected, {len(live)} live)"
            )


class SampledPlan:
    """The sampled games one PC event needs, collected but not yet played.

    Built by :meth:`SampledFitnessEngine.pc_plan` and executed by
    :meth:`SampledFitnessEngine.eval_plans`, which may fuse many plans —
    one per ensemble lane — into a single kernel call.  ``rows`` interns
    the distinct strategy tables the plan's games reference; ``a_idx``
    (always the focal side) and ``b_idx`` index into it.  ``sides`` says
    which of the event's two SSets each game belongs to, ``weights`` the
    histogram multiplicities (including the legacy ``-1`` self-play
    correction game), and ``base`` carries the two sides' deterministic
    (cached, pure-noiseless) payoff contributions.
    """

    __slots__ = ("rows", "_ids", "a_idx", "b_idx", "weights", "sides", "base")

    def __init__(self) -> None:
        self.rows: list[np.ndarray] = []
        self._ids: dict[bytes, int] = {}
        self.a_idx: list[int] = []
        self.b_idx: list[int] = []
        self.weights: list[float] = []
        self.sides: list[int] = []
        self.base = [0.0, 0.0]

    @property
    def n_games(self) -> int:
        return len(self.a_idx)

    def intern(self, strategy: Strategy, table: np.ndarray) -> int:
        key = strategy.key()
        row = self._ids.get(key)
        if row is None:
            row = len(self.rows)
            self.rows.append(table)
            self._ids[key] = row
        return row

    def add_game(self, a_row: int, b_row: int, weight: float, side: int) -> None:
        self.a_idx.append(a_row)
        self.b_idx.append(b_row)
        self.weights.append(weight)
        self.sides.append(side)


class SampledFitnessEngine(PayoffCache):
    """Batched sampled-stochastic fitness (``EvolutionConfig.sampled_batched``).

    A :class:`~repro.core.payoff_cache.PayoffCache` subclass, so every
    legacy entry point (``pair_payoffs`` / ``payoffs_to_many`` / histogram
    fitness / checkpoint eval-log capture) keeps working — but stochastic
    games are evaluated through one vectorised
    :func:`~repro.core.vectorgame.play_pairs_uniforms` call per batch
    instead of the scalar :func:`~repro.core.game.play_game` loop, with
    uniforms pre-drawn from a **dedicated** Philox stream (``("nature",
    "sampled")``).  Pure-noiseless pairs that arise in mixed-strategy
    configurations still go through the inherited deterministic cache
    (those payoffs carry no randomness).

    Contract: per-seed reproducible, and bit-identical between the serial
    drivers and the ensemble driver's per-lane trajectories (pre-drawn
    uniform blocks concatenate along the games axis without changing any
    lane's bits — see :func:`~repro.core.vectorgame.play_pairs_uniforms`).
    Deliberately **not** bit-identical to the scalar legacy sampled path:
    the draws come from a different stream in a different shape, so
    batched-vs-legacy agreement is statistical (KS / CI tests in the
    suite), which is exactly the trade the opt-in flag announces.
    """

    def __init__(
        self,
        rounds: int,
        payoff: PayoffMatrix = PAPER_PAYOFF,
        noise: float = 0.0,
        rng: "np.random.Generator | None" = None,
        mixed: bool = False,
        array_backend: str | None = None,
    ):
        if noise <= 0.0 and not mixed:
            raise ConfigurationError(
                "SampledFitnessEngine serves sampled-stochastic fitness "
                "(noise > 0 or mixed strategies); deterministic "
                "configurations have nothing to sample"
            )
        if rng is None:
            raise ConfigurationError(
                "SampledFitnessEngine needs a dedicated rng (the "
                "('nature', 'sampled') stream)"
            )
        super().__init__(rounds, payoff, noise=noise, rng=rng, expected=False)
        #: The *configuration's* mixed flag, not a property of the live
        #: strategies: mixed runs stack float tables (which consume move
        #: draws) even for pure tables, so the per-round draw count stays
        #: constant across the run and across ensemble lanes.
        self.mixed = mixed
        self.xb = get_array_backend(array_backend)
        self.games_played = 0
        self.batches = 0

    @classmethod
    def from_config(
        cls, config: EvolutionConfig, rng: "np.random.Generator"
    ) -> "SampledFitnessEngine | None":
        """Build the batched sampled engine, or ``None`` when the config
        did not opt in (or is not sampled-stochastic)."""
        if not (config.sampled_batched and config.is_stochastic):
            return None
        return cls(
            rounds=config.rounds,
            payoff=config.payoff,
            noise=config.noise,
            rng=rng,
            mixed=config.mixed_strategies,
            array_backend=config.array_backend,
        )

    # -- batched kernel plumbing ------------------------------------------------

    @property
    def draws_per_round(self) -> int:
        """Uniform draws per game round (fixed per configuration)."""
        return sampled_draws_per_round(self.mixed, self.noise)

    def _table_of(self, strategy: Strategy) -> np.ndarray:
        return (
            strategy.defect_probabilities() if self.mixed else strategy.table
        )

    def draw_uniforms(self, n_games: int) -> np.ndarray:
        """Pre-draw one batch's uniforms from the dedicated stream.

        Shape ``(rounds, draws_per_round, n_games)`` — the layout
        :func:`~repro.core.vectorgame.play_pairs_uniforms` consumes.  The
        ensemble driver calls this per lane and concatenates the blocks
        along the games axis, which keeps every lane's stream consumption
        identical to its serial run.
        """
        return self.rng.random((self.rounds, self.draws_per_round, n_games))

    def _play_games(
        self, games: list[tuple[Strategy, Strategy]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Play independent sampled games in one kernel call."""
        plan = SampledPlan()
        for a, b in games:
            plan.add_game(
                plan.intern(a, self._table_of(a)),
                plan.intern(b, self._table_of(b)),
                1.0,
                0,
            )
        tables = np.stack(plan.rows)
        uniforms = self.draw_uniforms(plan.n_games)
        self.games_played += plan.n_games
        self.batches += 1
        return play_pairs_uniforms(
            tables,
            np.asarray(plan.a_idx, dtype=np.intp),
            np.asarray(plan.b_idx, dtype=np.intp),
            self.rounds,
            self.payoff,
            self.noise,
            uniforms,
            xb=self.xb,
        )

    # -- legacy PayoffCache surface ---------------------------------------------

    def pair_payoffs(self, a: Strategy, b: Strategy) -> tuple[float, float]:
        """One game's ``(to_a, to_b)`` — batched kernel for sampled pairs,
        inherited deterministic cache for pure-noiseless ones."""
        if self._deterministic(a, b):
            return super().pair_payoffs(a, b)
        pay_a, pay_b = self._play_games([(a, b)])
        return float(pay_a[0]), float(pay_b[0])

    def payoffs_to_many(self, a: Strategy, others: list[Strategy]) -> np.ndarray:
        """Payoffs ``a`` earns against each of ``others``.

        Deterministic pairs resolve through the inherited cache (probe
        order preserved, so the eval log replays bit-exactly on restore);
        all sampled pairs run as one kernel batch.
        """
        out = np.empty(len(others), dtype=np.float64)
        games: list[tuple[Strategy, Strategy]] = []
        slots: list[int] = []
        for i, b in enumerate(others):
            if self._deterministic(a, b):
                out[i] = super().pair_payoffs(a, b)[0]
            else:
                games.append((a, b))
                slots.append(i)
        if games:
            pay_a, _ = self._play_games(games)
            out[np.asarray(slots, dtype=np.intp)] = pay_a
        return out

    # -- PC-event plans ----------------------------------------------------------

    def _side_into_plan(
        self,
        plan: SampledPlan,
        side: int,
        population,
        structure,
        sset_id: int,
        include_self_play: bool,
    ) -> None:
        """Collect one SSet's fitness games into ``plan``.

        Mirrors the legacy histogram semantics exactly: one game per
        *distinct* opponent strategy weighted by its multiplicity —
        the global population histogram (insertion order) when well-mixed,
        a local neighborhood histogram (first-occurrence order) on graphs —
        plus the self-play correction game (an independent ``-1``-weighted
        sample when self-play is excluded well-mixed; a ``+1`` game when a
        graph includes it, since graph neighborhoods carry no self-loop).
        """
        me = population[sset_id].strategy
        me_row: int | None = None
        if structure.is_well_mixed:
            hist = population.histogram
            items = [
                (hist.exemplars[key], count)
                for key, count in hist.counts.items()
            ]
            self_weight = 0.0 if include_self_play else -1.0
        else:
            local: dict[bytes, list] = {}
            for j in structure.neighbors(sset_id):
                opp = population[int(j)].strategy
                slot = local.get(opp.key())
                if slot is None:
                    local[opp.key()] = [opp, 1]
                else:
                    slot[1] += 1
            items = [(opp, count) for opp, count in local.values()]
            self_weight = 1.0 if include_self_play else 0.0
        for opp, count in items:
            if self._deterministic(me, opp):
                plan.base[side] += count * super().pair_payoffs(me, opp)[0]
            else:
                if me_row is None:
                    me_row = plan.intern(me, self._table_of(me))
                plan.add_game(
                    me_row,
                    plan.intern(opp, self._table_of(opp)),
                    float(count),
                    side,
                )
        if self_weight:
            if self._deterministic(me, me):
                plan.base[side] += (
                    self_weight * super().pair_payoffs(me, me)[0]
                )
            else:
                if me_row is None:
                    me_row = plan.intern(me, self._table_of(me))
                plan.add_game(me_row, me_row, self_weight, side)

    def pc_plan(
        self,
        population,
        structure,
        sset_a: int,
        sset_b: int,
        include_self_play: bool = False,
    ) -> SampledPlan:
        """Collect both sides' games of one PC event (no draws yet)."""
        plan = SampledPlan()
        self._side_into_plan(
            plan, 0, population, structure, sset_a, include_self_play
        )
        self._side_into_plan(
            plan, 1, population, structure, sset_b, include_self_play
        )
        return plan

    @staticmethod
    def eval_plans(
        pairs: "list[tuple[SampledFitnessEngine, SampledPlan]]",
    ) -> list[tuple[float, float]]:
        """Execute many ``(engine, plan)`` pairs as **one** kernel call.

        Each engine draws its own plan's uniform block (so a lane's stream
        consumption is independent of who else is in the batch), the blocks
        and game lists concatenate along the games axis, and the fused
        kernel preserves every lane's bits — which is what makes each
        ensemble lane bit-identical to its same-seed serial run.  Returns
        one ``(fitness_a, fitness_b)`` per pair, in order.
        """
        offsets: list[int] = []
        rows: list[np.ndarray] = []
        a_idx: list[int] = []
        b_idx: list[int] = []
        blocks: list[np.ndarray] = []
        for engine, plan in pairs:
            offset = len(rows)
            offsets.append(offset)
            rows.extend(plan.rows)
            a_idx.extend(i + offset for i in plan.a_idx)
            b_idx.extend(i + offset for i in plan.b_idx)
            if plan.n_games:
                blocks.append(engine.draw_uniforms(plan.n_games))
                engine.games_played += plan.n_games
                engine.batches += 1
        pay_a: np.ndarray | None = None
        if a_idx:
            head = pairs[0][0]
            uniforms = (
                blocks[0]
                if len(blocks) == 1
                else np.concatenate(blocks, axis=2)
            )
            pay_a, _ = play_pairs_uniforms(
                np.stack(rows),
                np.asarray(a_idx, dtype=np.intp),
                np.asarray(b_idx, dtype=np.intp),
                head.rounds,
                head.payoff,
                head.noise,
                uniforms,
                xb=head.xb,
            )
        results: list[tuple[float, float]] = []
        cursor = 0
        for engine, plan in pairs:
            fits = [plan.base[0], plan.base[1]]
            for k in range(plan.n_games):
                fits[plan.sides[k]] += plan.weights[k] * pay_a[cursor + k]
            cursor += plan.n_games
            results.append((float(fits[0]), float(fits[1])))
        return results

    def pc_pair_fitness(
        self,
        population,
        structure,
        sset_a: int,
        sset_b: int,
        include_self_play: bool = False,
    ) -> tuple[float, float]:
        """Both PC fitness values in one batched kernel call.

        The duck-typed hook :meth:`repro.structure.InteractionModel.
        pair_fitness` dispatches to — the serial drivers reach the batched
        path through it without knowing this engine exists.
        """
        plan = self.pc_plan(
            population, structure, sset_a, sset_b, include_self_play
        )
        return SampledFitnessEngine.eval_plans([(self, plan)])[0]

    def stats(self) -> dict[str, int]:
        """Counters for reports/benchmarks."""
        return {
            "games_played": self.games_played,
            "batches": self.batches,
            "det_cache": len(self),
            "hits": self.hits,
            "misses": self.misses,
        }
