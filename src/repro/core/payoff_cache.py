"""Memoised pairwise payoffs and histogram-based population fitness.

The population model's per-generation work is dominated by IPD games between
*strategies*, not agents: every game between the same two strategy tables
(pure, noiseless) has the same outcome.  Mutations are rare (mu = 0.05), so
the set of distinct strategies present changes slowly and a cache keyed on
strategy bytes turns the per-generation O(S^2 * rounds) game cost into a
handful of cycle-exact evaluations per *new* strategy.

The same observation gives histogram fitness: an SSet's fitness against the
population depends only on how many SSets hold each distinct strategy,

    fitness(a) = sum_b count[b] * pay(a, b)   [- pay(a, a) when self-play
                                               is excluded]

which is what makes the paper's 10^7-generation validation run feasible in
Python (see :func:`repro.core.evolution.run_event_driven`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cycle import exact_payoffs
from .game import play_game
from .markov import expected_payoffs, expected_payoffs_many
from .payoff import PAPER_PAYOFF, PayoffMatrix
from .strategy import Strategy

__all__ = ["PayoffCache", "StrategyHistogram"]


class PayoffCache:
    """Cache of per-game payoffs keyed by ordered strategy pairs.

    Three evaluation regimes:

    * pure strategies, no noise — exact cycle detection, cached;
    * ``expected=True`` — exact *expected* payoffs from the Markov engine
      (:mod:`repro.core.markov`), cached; valid for noisy and/or mixed
      strategies.  This is the many-agents-per-SSet limit: an SSet's
      fitness sums many independent games, so it concentrates on the
      expectation — and it is what makes long noisy validation runs
      (paper Fig. 2) tractable;
    * otherwise — one sampled game via the scalar engine with the supplied
      rng (*not* cached: every game is an independent sample).
    """

    def __init__(
        self,
        rounds: int,
        payoff: PayoffMatrix = PAPER_PAYOFF,
        noise: float = 0.0,
        rng: np.random.Generator | None = None,
        expected: bool = False,
    ):
        self.rounds = rounds
        self.payoff = payoff
        self.noise = noise
        self.rng = rng
        self.expected = expected
        self._cache: dict[tuple[bytes, bytes], tuple[float, float]] = {}
        self.hits = 0
        self.misses = 0
        #: Ordered log of cache-filling evaluations, armed by
        #: :meth:`enable_eval_log` when mid-run checkpointing is active.
        #: Each entry is ``("pair", a, b)`` (a scalar :meth:`pair_payoffs`
        #: miss) or ``("many", a, targets)`` (one batched
        #: :meth:`payoffs_to_many` miss set).  Replaying the log on a fresh
        #: cache reproduces its contents bit-for-bit — same kernels, same
        #: batch membership — so :mod:`repro.core.runstate` rebuilds the
        #: cache deterministically instead of serialising float payoffs.
        #: ``None`` (the default) costs nothing on the hot path.
        self._eval_log: list[tuple] | None = None

    def enable_eval_log(self) -> None:
        """Start recording cache-filling evaluations (idempotent)."""
        if self._eval_log is None:
            self._eval_log = []

    def _deterministic(self, a: Strategy, b: Strategy) -> bool:
        return self.noise == 0.0 and a.is_pure and b.is_pure

    def pair_payoffs(self, a: Strategy, b: Strategy) -> tuple[float, float]:
        """Total game payoffs ``(to_a, to_b)`` for one game of ``rounds``."""
        cacheable = self._deterministic(a, b) or self.expected
        if not cacheable:
            res = play_game(
                a, b, self.rounds, self.payoff, noise=self.noise, rng=self.rng
            )
            return res.payoff_a, res.payoff_b
        key = (a.key(), b.key())
        found = self._cache.get(key)
        if found is not None:
            self.hits += 1
            return found
        self.misses += 1
        if self._eval_log is not None:
            self._eval_log.append(("pair", a, b))
        if self._deterministic(a, b):
            pay_a, pay_b, _ = exact_payoffs(a, b, self.rounds, self.payoff)
        else:
            pay_a, pay_b, _ = expected_payoffs(
                a, b, self.rounds, self.payoff, noise=self.noise
            )
        self._cache[key] = (pay_a, pay_b)
        self._cache[(key[1], key[0])] = (pay_b, pay_a)
        return pay_a, pay_b

    def payoff_to(self, a: Strategy, b: Strategy) -> float:
        """Payoff earned by ``a`` in one game against ``b``."""
        return self.pair_payoffs(a, b)[0]

    @property
    def _supports_batch(self) -> bool:
        """Whether :meth:`_evaluate_missing` applies (else per-pair path)."""
        return self.expected

    def _evaluate_missing(
        self, a: Strategy, targets: list[Strategy]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched evaluation of uncached opponents: ``(to_a, to_targets)``.

        Subclasses substitute other batch evaluators (e.g. a process-pool
        kernel) while reusing the probe/fill bookkeeping of
        :meth:`payoffs_to_many`.
        """
        return expected_payoffs_many(
            a, targets, self.rounds, self.payoff, self.noise
        )

    def payoffs_to_many(self, a: Strategy, others: list[Strategy]) -> np.ndarray:
        """Payoffs ``a`` earns against each of ``others`` (batched).

        In expected mode the uncached opponents are evaluated in one
        vectorised Markov pass (the mixed-strategy fitness kernel); other
        regimes fall back to per-pair evaluation.
        """
        out = np.empty(len(others), dtype=np.float64)
        if not self._supports_batch:
            for i, b in enumerate(others):
                out[i] = self.payoff_to(a, b)
            return out
        key_a = a.key()
        missing: list[int] = []
        for i, b in enumerate(others):
            found = self._cache.get((key_a, b.key()))
            if found is None:
                missing.append(i)
            else:
                self.hits += 1
                out[i] = found[0]
        if missing:
            self.misses += len(missing)
            targets = [others[i] for i in missing]
            if self._eval_log is not None:
                self._eval_log.append(("many", a, list(targets)))
            forward, backward = self._evaluate_missing(a, targets)
            for i, pay_a, pay_b in zip(missing, forward, backward):
                b = others[i]
                self._cache[(key_a, b.key())] = (float(pay_a), float(pay_b))
                self._cache[(b.key(), key_a)] = (float(pay_b), float(pay_a))
                out[i] = pay_a
        return out

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all cached entries (counters are kept)."""
        self._cache.clear()


@dataclass
class StrategyHistogram:
    """Multiset of strategies currently held by the population's SSets."""

    counts: dict[bytes, int] = field(default_factory=dict)
    exemplars: dict[bytes, Strategy] = field(default_factory=dict)

    @classmethod
    def from_strategies(cls, strategies: list[Strategy]) -> "StrategyHistogram":
        hist = cls()
        for s in strategies:
            hist.add(s)
        return hist

    def add(self, strategy: Strategy) -> None:
        key = strategy.key()
        self.counts[key] = self.counts.get(key, 0) + 1
        self.exemplars.setdefault(key, strategy)

    def remove(self, strategy: Strategy) -> None:
        key = strategy.key()
        count = self.counts.get(key, 0)
        if count <= 0:
            raise KeyError("strategy not present in histogram")
        if count == 1:
            del self.counts[key]
            del self.exemplars[key]
        else:
            self.counts[key] = count - 1

    def replace(self, old: Strategy, new: Strategy) -> None:
        """Atomically swap one SSet's strategy (learning or mutation)."""
        if old.key() == new.key():
            return
        self.add(new)
        self.remove(old)

    @property
    def total(self) -> int:
        """Number of SSets represented."""
        return sum(self.counts.values())

    @property
    def distinct(self) -> int:
        """Number of distinct strategies present."""
        return len(self.counts)

    def most_common(self, k: int | None = None) -> list[tuple[Strategy, int]]:
        """Strategies sorted by descending SSet count."""
        items = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if k is not None:
            items = items[:k]
        return [(self.exemplars[key], count) for key, count in items]

    def fitness_of(
        self,
        strategy: Strategy,
        cache: PayoffCache,
        include_self_play: bool = False,
    ) -> float:
        """Population fitness of an SSet holding ``strategy``.

        One game against every SSet's strategy; by default the game against
        the SSet's *own* slot is excluded (the paper's "all the other
        strategies in the population").
        """
        keys = list(self.counts.keys())
        opponents = [self.exemplars[k] for k in keys]
        payoffs = cache.payoffs_to_many(strategy, opponents)
        total = 0.0
        for key, pay in zip(keys, payoffs):
            total += self.counts[key] * pay
        if not include_self_play:
            total -= cache.payoff_to(strategy, strategy)
        return total
