"""Strategies for memory-*n* iterated games (paper Sections III.D–III.E).

A **pure** strategy is a lookup table with one move (0 = C, 1 = D) per game
state; a **mixed** strategy stores, per state, the probability of playing D.
States are indexed by the integer view encoding of :mod:`repro.core.states`
(natural binary order, most recent round in the low bits).

The classic strategies from the paper are provided as factories:

* :func:`all_c`, :func:`all_d` — unconditional play;
* :func:`tft` — Tit-For-Tat (Section I / III.B);
* :func:`wsls` — Win-Stay Lose-Shift (Table V; ``0110`` in natural state
  order, which is the paper's ``0101`` in its Gray-code display order);
* :func:`grim` — Grim trigger;
* :func:`tf2t` — Tit-For-Two-Tats (needs memory >= 2);
* :func:`gtft` — Generous Tit-For-Tat (mixed; paper ref. [14]).

:func:`strategy_space_size` reproduces paper Table IV from the paper's own
formula (``numStates = 4**n``; ``2**numStates`` pure strategies).  Note the
paper's printed table deviates from its own formula for n = 4 and n = 5; see
DESIGN.md section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import StrategyError
from .states import MEMORY_ONE_GRAY_ORDER, num_states, view_to_history

__all__ = [
    "Strategy",
    "strategy_space_size",
    "enumerate_pure_strategies",
    "all_memory_one_strategies",
    "all_c",
    "all_d",
    "tft",
    "wsls",
    "grim",
    "tf2t",
    "gtft",
    "random_pure",
    "random_mixed",
    "CLASSIC_FACTORIES",
]


@dataclass(frozen=True)
class Strategy:
    """A memory-*n* strategy table.

    Parameters
    ----------
    table:
        Length ``4**n`` array.  For a pure strategy, entries are moves in
        ``{0, 1}`` (uint8).  For a mixed strategy, entries are defection
        probabilities in ``[0, 1]`` (float64).
    memory_steps:
        The ``n`` of the memory-*n* model.
    name:
        Optional human-readable label (e.g. ``"WSLS"``).
    """

    table: np.ndarray
    memory_steps: int
    name: str | None = None

    def __post_init__(self) -> None:
        n_states = num_states(self.memory_steps)
        table = np.asarray(self.table)
        if table.shape != (n_states,):
            raise StrategyError(
                f"memory-{self.memory_steps} strategy needs a table of length "
                f"{n_states}, got shape {table.shape}"
            )
        if np.issubdtype(table.dtype, np.integer) or table.dtype == np.bool_:
            # Strategy construction is on the mutation hot path, so the
            # membership test is a single fused pass (np.isin was ~20x
            # slower for these tiny tables).
            if ((table != 0) & (table != 1)).any():
                raise StrategyError("pure strategy moves must be 0 (C) or 1 (D)")
            table = table.astype(np.uint8)  # astype always copies
        elif np.issubdtype(table.dtype, np.floating):
            if not np.isfinite(table).all():
                raise StrategyError("mixed strategy probabilities must be finite")
            if (table < 0).any() or (table > 1).any():
                raise StrategyError(
                    "mixed strategy defection probabilities must lie in [0, 1]"
                )
            table = table.astype(np.float64)  # astype always copies
        else:
            raise StrategyError(f"unsupported table dtype {table.dtype}")
        table.setflags(write=False)
        object.__setattr__(self, "table", table)

    @classmethod
    def _trusted(
        cls, table: np.ndarray, memory_steps: int, name: str | None = None
    ) -> "Strategy":
        """Construct from a table that is valid *by construction*.

        Skips ``__post_init__`` validation and copying: ``table`` must be a
        fresh, correctly-shaped uint8 move table or float64 probability
        table that no caller aliases.  Used by the random-strategy
        factories on the mutation hot path, where re-validating the RNG's
        own output was a measurable cost.
        """
        self = object.__new__(cls)
        table.setflags(write=False)
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "memory_steps", memory_steps)
        object.__setattr__(self, "name", name)
        return self

    # -- identity ---------------------------------------------------------

    @property
    def is_pure(self) -> bool:
        """True when the table holds deterministic moves."""
        return self.table.dtype == np.uint8

    def key(self) -> bytes:
        """Stable bytes identity (used by payoff caches and histograms).

        Cached on first access (frozen dataclass, hence the
        ``object.__setattr__``): histogram and cache probes call this on
        every population event, and re-running ``tobytes()`` each time was
        a measurable hot-path cost.  Safe because the table is frozen
        (read-only) after ``__post_init__``.
        """
        cached = self.__dict__.get("_key_bytes")
        if cached is None:
            cached = self.table.tobytes()
            object.__setattr__(self, "_key_bytes", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Strategy):
            return NotImplemented
        return (
            self.memory_steps == other.memory_steps
            and self.table.dtype == other.table.dtype
            and np.array_equal(self.table, other.table)
        )

    def __hash__(self) -> int:
        return hash((self.memory_steps, self.table.dtype.char, self.key()))

    # -- conversions ------------------------------------------------------

    def move(self, view: int, rng: np.random.Generator | None = None) -> int:
        """The move prescribed for ``view`` (sampling if mixed)."""
        if self.is_pure:
            return int(self.table[view])
        if rng is None:
            raise StrategyError("sampling a mixed strategy requires an rng")
        return int(rng.random() < self.table[view])

    def defect_probabilities(self) -> np.ndarray:
        """The table as defection probabilities (pure tables are cast)."""
        return self.table.astype(np.float64)

    def to_mixed(self) -> "Strategy":
        """Return the equivalent mixed-representation strategy."""
        return Strategy(self.defect_probabilities(), self.memory_steps, self.name)

    def lift(self, memory_steps: int) -> "Strategy":
        """Embed into a longer-memory model.

        The lifted strategy conditions only on its original ``n`` most recent
        rounds: ``lifted[v] = table[v & (4**n - 1)]``.  It plays identically
        to the original against any opponent.
        """
        if memory_steps < self.memory_steps:
            raise StrategyError(
                f"cannot lift memory-{self.memory_steps} down to "
                f"memory-{memory_steps}"
            )
        if memory_steps == self.memory_steps:
            return self
        mask = num_states(self.memory_steps) - 1
        views = np.arange(num_states(memory_steps))
        return Strategy(self.table[views & mask], memory_steps, self.name)

    # -- display ----------------------------------------------------------

    def bits(self, order: tuple[int, ...] | None = None) -> str:
        """Move string over states, e.g. WSLS -> ``"0110"`` naturally.

        Pass ``order=MEMORY_ONE_GRAY_ORDER`` (memory-one only) to reproduce
        the paper's Table V / Figure 2 ordering where WSLS reads ``"0101"``.
        """
        if not self.is_pure:
            raise StrategyError("bits() is only defined for pure strategies")
        table = self.table if order is None else self.table[np.asarray(order)]
        return "".join(str(int(m)) for m in table)

    def letters(self, order: tuple[int, ...] | None = None) -> str:
        """Like :meth:`bits` but with C/D letters (paper Table III style)."""
        return self.bits(order).replace("0", "C").replace("1", "D")

    def describe(self) -> str:
        """Multi-line per-state description for debugging."""
        lines = [f"Strategy(memory={self.memory_steps}, name={self.name!r})"]
        for v in range(num_states(self.memory_steps)):
            hist = view_to_history(v, self.memory_steps)
            play = (
                "CD"[int(self.table[v])]
                if self.is_pure
                else f"P(D)={float(self.table[v]):.3f}"
            )
            lines.append(f"  state {v:>4} {hist} -> {play}")
        return "\n".join(lines)

    def responds_to_own_history(self) -> bool:
        """True if any pair of states differing only in *own* past moves maps
        to different actions (i.e. the strategy uses its own history, like
        WSLS, not only the opponent's, like TFT)."""
        n = self.memory_steps
        table = self.table
        for v in range(num_states(n)):
            for k in range(n):
                flipped = v ^ (1 << (2 * k + 1))  # flip own move in round k
                if table[v] != table[flipped]:
                    return True
        return False


# -- strategy space (Table IV) ---------------------------------------------


def strategy_space_size(memory_steps: int) -> int:
    """Number of pure memory-*n* strategies, ``2**(4**n)`` (paper Table IV).

    n = 1 -> 2**4, n = 2 -> 2**16, n = 3 -> 2**64, n = 6 -> 2**4096.  The
    paper's printed rows for n = 4 (2**1024) and n = 5 (2**2048) disagree
    with its own formula (2**256 and 2**1024); we follow the formula.
    """
    return 2 ** num_states(memory_steps)


def enumerate_pure_strategies(memory_steps: int) -> Iterator[Strategy]:
    """Yield every pure memory-*n* strategy (feasible for n <= 2).

    The table for strategy ``i`` is the base-2 digits of ``i`` with state 0
    in the least-significant position.  Memory-one yields the 16 strategies
    of paper Table III; memory-two yields 65,536; anything larger is refused
    (memory-three already has 2**64 strategies).
    """
    n_states = num_states(memory_steps)
    if n_states > 16:
        raise StrategyError(
            f"enumerating 2**{n_states} strategies is infeasible; "
            "only memory-one/two can be enumerated"
        )
    for i in range(2**n_states):
        table = np.array([(i >> s) & 1 for s in range(n_states)], dtype=np.uint8)
        yield Strategy(table, memory_steps)


def all_memory_one_strategies() -> list[Strategy]:
    """The 16 pure memory-one strategies (paper Table III)."""
    return list(enumerate_pure_strategies(1))


# -- classic strategies ------------------------------------------------------


def all_c(memory_steps: int = 1) -> Strategy:
    """Unconditional cooperation (ALLC)."""
    return Strategy(
        np.zeros(num_states(memory_steps), dtype=np.uint8), memory_steps, "ALLC"
    )


def all_d(memory_steps: int = 1) -> Strategy:
    """Unconditional defection (ALLD)."""
    return Strategy(
        np.ones(num_states(memory_steps), dtype=np.uint8), memory_steps, "ALLD"
    )


def tft(memory_steps: int = 1) -> Strategy:
    """Tit-For-Tat: copy the opponent's previous move (paper Section I)."""
    views = np.arange(num_states(memory_steps))
    return Strategy((views & 1).astype(np.uint8), memory_steps, "TFT")


def wsls(memory_steps: int = 1) -> Strategy:
    """Win-Stay Lose-Shift (paper Table V).

    Cooperate after mutual outcomes (CC -> was rewarded, DD -> shift back to
    C), defect after mixed outcomes.  In natural state order the memory-one
    table is ``[C, D, D, C]``; in the paper's Gray-code display order that is
    the ``0101`` of Figure 2.
    """
    base = Strategy(np.array([0, 1, 1, 0], dtype=np.uint8), 1, "WSLS")
    return base.lift(memory_steps)


def grim(memory_steps: int = 1) -> Strategy:
    """Grim trigger: cooperate only while the last round was mutual C.

    (With memory limited to n rounds, "grim" can only condition on the most
    recent round, so this is the memory-truncated grim trigger.)
    """
    base = Strategy(np.array([0, 1, 1, 1], dtype=np.uint8), 1, "GRIM")
    return base.lift(memory_steps)


def tf2t(memory_steps: int = 2) -> Strategy:
    """Tit-For-Two-Tats: defect only after two consecutive opponent defections."""
    if memory_steps < 2:
        raise StrategyError("TF2T needs at least two memory steps")
    views = np.arange(num_states(memory_steps))
    opp_last = views & 1
    opp_prev = (views >> 2) & 1
    return Strategy((opp_last & opp_prev).astype(np.uint8), memory_steps, "TF2T")


def gtft(generosity: float = 1.0 / 3.0, memory_steps: int = 1) -> Strategy:
    """Generous Tit-For-Tat (mixed): forgive a defection with ``generosity``.

    After an opponent cooperation, cooperate; after an opponent defection,
    defect with probability ``1 - generosity``.
    """
    if not 0.0 <= generosity <= 1.0:
        raise StrategyError(f"generosity must lie in [0, 1], got {generosity}")
    views = np.arange(num_states(memory_steps))
    probs = np.where(views & 1, 1.0 - generosity, 0.0)
    return Strategy(probs.astype(np.float64), memory_steps, "GTFT")


def random_pure(
    rng: np.random.Generator, memory_steps: int, name: str | None = None
) -> Strategy:
    """A uniformly random pure strategy (the Nature Agent's ``gen_new_strat``)."""
    table = rng.integers(0, 2, size=num_states(memory_steps), dtype=np.uint8)
    return Strategy._trusted(table, memory_steps, name)


def random_mixed(
    rng: np.random.Generator, memory_steps: int, name: str | None = None
) -> Strategy:
    """A random mixed strategy with iid uniform defection probabilities."""
    return Strategy._trusted(
        rng.random(num_states(memory_steps)), memory_steps, name
    )


#: Named factories used by classification and the examples.
CLASSIC_FACTORIES = {
    "ALLC": all_c,
    "ALLD": all_d,
    "TFT": tft,
    "WSLS": wsls,
    "GRIM": grim,
}


def paper_table_v_rows() -> list[tuple[int, str, int]]:
    """Reproduce paper Table V: (state id, state bits, WSLS move).

    Rows follow the paper's Gray-code ordering, which is why the strategy
    column reads 0, 1, 0, 1.
    """
    w = wsls(1)
    rows = []
    for display_idx, state in enumerate(MEMORY_ONE_GRAY_ORDER):
        hist = view_to_history(state, 1)[0]
        rows.append((display_idx, f"{hist[0]}{hist[1]}", int(w.table[state])))
    return rows
