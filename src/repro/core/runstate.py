"""Mid-run checkpoint state: capture and restore a run, bit-identically.

The v1 checkpoint (:mod:`repro.io.checkpoint`) persists only a *final*
population — resuming from it replays nothing and proves nothing.  This
module defines the v2 **run-state** snapshot: everything a driver needs to
continue an interrupted run on the *exact* trajectory of the uninterrupted
one — same events, same snapshots, same counters, same final population:

* the population (strategy matrix, per-SSet counters, and the histogram's
  insertion order, which the legacy fitness accumulation is sensitive to);
* every RNG position as a raw bit-generator state (the Nature Agent's four
  Philox streams; the ensemble's per-lane raw-decoder cursors including
  their half-word carry);
* the accumulated result (event stream, snapshots, event counters);
* the fitness evaluator's *fill history* — not its float matrix.  Payoff
  state is **rebuilt deterministically**: deterministic engines re-derive
  their live pairs from the population (integer-exact in any batch order),
  while lazy expected-regime engines and legacy caches replay an ordered
  evaluation log (same kernels, same batch membership, hence the same
  ulps).  Snapshots therefore stay small and carry no derived floats.

Drivers discover their checkpoint **sink** through a thread-local scope
(:func:`checkpoint_scope`), mirroring :mod:`repro.core.progress`: backends
and ``run_sweep`` stay call-compatible and a service worker thread
checkpoints only its own job.  A sink exposes ``save(unit, generation,
meta, arrays)`` and ``load_latest(unit) -> (meta, arrays) | None``; the
production implementation is :class:`repro.io.run_checkpoint.RunCheckpointer`.

The **unit key** identifies a resumable unit of work: the sha256 of the
run's config dict(s) with execution-only fields stripped
(:data:`RESUME_NEUTRAL_FIELDS`), so a snapshot is only ever offered to a
run asking the same science question.  :func:`validate_resume_config`
produces the did-you-mean mismatch report the CLI surfaces.

Unsupported regimes (:func:`checkpointing_supported`) simply do not arm —
the run executes exactly as before, no snapshots are written, and a
service replay falls back to full re-execution: cross-run engine pair
sharing (the shared store cannot be rebuilt from one run's snapshot) and
a capped expected-regime pool (slot recycling erases the fill history the
replay needs).
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Protocol

import numpy as np

from ..errors import CheckpointError
from ..rng import make_rng
from .config import EvolutionConfig
from .engine import (
    FitnessEngine,
    SampledFitnessEngine,
    is_integer_payoff,
    pair_sharing_active,
)
from .payoff_cache import PayoffCache, StrategyHistogram
from .population import Population
from .strategy import Strategy

__all__ = [
    "RUN_STATE_VERSION",
    "RESUME_NEUTRAL_FIELDS",
    "CheckpointSink",
    "checkpoint_scope",
    "checkpoint_sink",
    "encode_bitgen",
    "decode_bitgen",
    "generator_state",
    "restore_generator",
    "unit_key",
    "config_mismatches",
    "validate_resume_config",
    "checkpointing_supported",
    "capture_population",
    "restore_population",
    "capture_events",
    "restore_events",
    "capture_snapshots",
    "restore_snapshots",
    "capture_evaluator",
    "restore_evaluator",
]

#: Run-state snapshot format version (v1 is the final-population ``.npz``).
RUN_STATE_VERSION = 2

#: Config fields a resume may change freely: execution knobs whose value
#: does not perturb the science trajectory (``engine`` is *not* here — it
#: swaps the evaluator implementation and with it the hit/miss counters
#: that are part of the result payload).
RESUME_NEUTRAL_FIELDS = frozenset(
    {"checkpoint_every", "array_backend", "paymat_block", "engine_pool_cap"}
)


class CheckpointSink(Protocol):
    """Where drivers put snapshots and look for one to resume from."""

    def save(
        self,
        unit: str,
        generation: int,
        meta: dict[str, Any],
        arrays: dict[str, np.ndarray],
    ) -> None:  # pragma: no cover - protocol
        ...

    def load_latest(
        self, unit: str
    ) -> tuple[dict[str, Any], dict[str, np.ndarray]] | None:  # pragma: no cover
        ...


#: Per-thread sink stack (a list so scopes nest), exactly like the
#: progress-listener stack in :mod:`repro.core.progress`.
_LOCAL = threading.local()


def checkpoint_sink() -> CheckpointSink | None:
    """The innermost active sink of this thread, or ``None``.

    Drivers read this once at run start — installing a scope mid-run has no
    effect on runs already executing, by design.
    """
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        return None
    return stack[-1]


@contextmanager
def checkpoint_scope(sink: CheckpointSink) -> Iterator[CheckpointSink]:
    """Install ``sink`` as this thread's checkpoint sink for the block."""
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    stack.append(sink)
    try:
        yield sink
    finally:
        stack.pop()


# -- RNG bit-generator state ---------------------------------------------------


def encode_bitgen(state: Mapping[str, Any]) -> dict[str, Any]:
    """JSON-compatible form of a Philox ``bit_generator.state`` dict.

    The counter/key/buffer words are uint64 (beyond float precision), so
    they are carried as exact Python int lists — ``json`` round-trips
    arbitrary-precision ints losslessly.
    """
    name = str(state["bit_generator"])
    if name != "Philox":  # every repro stream is Philox (repro.rng.make_rng)
        raise CheckpointError(
            f"can only checkpoint Philox bit-generator state, got {name}"
        )
    inner = state["state"]
    return {
        "bit_generator": name,
        "counter": [int(x) for x in inner["counter"]],
        "key": [int(x) for x in inner["key"]],
        "buffer": [int(x) for x in state["buffer"]],
        "buffer_pos": int(state["buffer_pos"]),
        "has_uint32": int(state["has_uint32"]),
        "uinteger": int(state["uinteger"]),
    }


def decode_bitgen(data: Mapping[str, Any]) -> dict[str, Any]:
    """Invert :func:`encode_bitgen` into a settable state dict."""
    name = str(data["bit_generator"])
    if name != "Philox":
        raise CheckpointError(
            f"can only restore Philox bit-generator state, got {name}"
        )
    return {
        "bit_generator": name,
        "state": {
            "counter": np.array(data["counter"], dtype=np.uint64),
            "key": np.array(data["key"], dtype=np.uint64),
        },
        "buffer": np.array(data["buffer"], dtype=np.uint64),
        "buffer_pos": int(data["buffer_pos"]),
        "has_uint32": int(data["has_uint32"]),
        "uinteger": int(data["uinteger"]),
    }


def generator_state(rng: np.random.Generator) -> dict[str, Any]:
    """Snapshot one Generator's full bit-generator position."""
    return encode_bitgen(rng.bit_generator.state)


def restore_generator(rng: np.random.Generator, data: Mapping[str, Any]) -> None:
    """Rewind ``rng`` to a position captured by :func:`generator_state`."""
    rng.bit_generator.state = decode_bitgen(data)


# -- unit identity + config validation ----------------------------------------


def _stripped(config_dict: Mapping[str, Any]) -> dict[str, Any]:
    return {
        k: v for k, v in config_dict.items() if k not in RESUME_NEUTRAL_FIELDS
    }


def unit_key(config_dicts: list[dict[str, Any]]) -> str:
    """Content hash identifying a resumable unit of work.

    Covers every science-bearing config field of the run (one dict for a
    single run, the ordered lane dicts for an ensemble group) and nothing
    else — so the same question asked with a different checkpoint cadence
    or array backend still finds its snapshot, while any science change
    misses cleanly.
    """
    blob = json.dumps(
        [_stripped(d) for d in config_dicts],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def config_mismatches(
    saved: Mapping[str, Any], current: Mapping[str, Any]
) -> list[str]:
    """Human-readable list of science-bearing fields that differ."""
    out = []
    for key in sorted(set(saved) | set(current)):
        if key in RESUME_NEUTRAL_FIELDS:
            continue
        sv = saved.get(key, "<missing>")
        cv = current.get(key, "<missing>")
        if sv != cv:
            out.append(f"{key}: checkpoint has {sv!r}, run has {cv!r}")
    return out


def validate_resume_config(
    saved_dicts: list[dict[str, Any]],
    current_dicts: list[dict[str, Any]],
    *,
    source: str = "checkpoint",
) -> None:
    """Refuse a resume whose config differs in any science-bearing field.

    The error names every differing field with both values (the CLI's
    did-you-mean message), so a near-miss — wrong seed, wrong structure
    spec — is diagnosable without opening the snapshot.
    """
    if len(saved_dicts) != len(current_dicts):
        raise CheckpointError(
            f"{source} holds state for {len(saved_dicts)} run(s), the "
            f"current request has {len(current_dicts)}"
        )
    problems: list[str] = []
    for i, (saved, current) in enumerate(zip(saved_dicts, current_dicts)):
        for line in config_mismatches(saved, current):
            prefix = f"run {i}: " if len(saved_dicts) > 1 else ""
            problems.append(prefix + line)
    if problems:
        raise CheckpointError(
            f"{source} does not match the requested configuration — "
            "did you mean to change these fields?\n  "
            + "\n  ".join(problems)
        )


def _engine_regime(config: EvolutionConfig) -> str | None:
    """``"det"``, ``"expected"``, or ``None`` (legacy cache) — mirrors the
    regime split of :meth:`FitnessEngine.from_config`."""
    if not config.engine or config.is_stochastic:
        return None
    expected = config.expected_fitness and (
        config.noise > 0.0 or config.mixed_strategies
    )
    if not expected and not is_integer_payoff(config.payoff):
        return None
    return "expected" if expected else "det"


def checkpointing_supported(config: EvolutionConfig) -> bool:
    """Whether mid-run checkpointing can guarantee a bit-identical resume
    for ``config`` in this execution context.

    Two refusals (the run simply executes without snapshots):

    * deterministic engine under cross-run pair sharing
      (:func:`~repro.core.engine.shared_engine_pairs`) — a resume rebuilds
      only its live pairs, so the shared store (and with it the sweep's
      later evaluation counters) would diverge from an uninterrupted
      process;
    * expected regime with ``engine_pool_cap > 0`` — slot recycling erases
      exactly the fill history a deterministic rebuild must replay.
    """
    regime = _engine_regime(config)
    if regime == "det" and pair_sharing_active():
        return False
    if regime == "expected" and config.engine_pool_cap > 0:
        return False
    return True


# -- population ----------------------------------------------------------------


def capture_population(
    population: Population,
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Snapshot a population: strategies, per-SSet counters, histogram order.

    The histogram's dict insertion order is science-bearing (the legacy
    fitness accumulation adds payoffs in that order, and float addition is
    order-sensitive in the expected regime), so it is captured as the
    first-holder SSet index of each key in current order and rebuilt
    verbatim on restore.
    """
    ssets = population.ssets
    matrix = population.strategy_matrix()
    key_to_first: dict[bytes, int] = {}
    for i, sset in enumerate(ssets):
        key_to_first.setdefault(sset.strategy.key(), i)
    hist_order = [key_to_first[k] for k in population.histogram.counts]
    meta = {
        "memory_steps": population.memory_steps,
        "histogram_order": hist_order,
    }
    arrays = {
        "strategy_matrix": matrix,
        "sset_n_agents": np.array([s.n_agents for s in ssets], dtype=np.int64),
        "sset_adoptions": np.array([s.adoptions for s in ssets], dtype=np.int64),
        "sset_mutations": np.array([s.mutations for s in ssets], dtype=np.int64),
        "sset_fitness": np.array([s.fitness for s in ssets], dtype=np.float64),
    }
    return meta, arrays


def restore_population(
    meta: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> Population:
    """Rebuild the population captured by :func:`capture_population`
    (no engine bound yet — see :func:`restore_evaluator`)."""
    matrix = np.asarray(arrays["strategy_matrix"])
    memory_steps = int(meta["memory_steps"])
    strategies = [
        Strategy._trusted(np.array(row), memory_steps) for row in matrix
    ]
    population = Population.from_strategies(strategies)
    n_agents = arrays["sset_n_agents"]
    adoptions = arrays["sset_adoptions"]
    mutations = arrays["sset_mutations"]
    fitness = arrays["sset_fitness"]
    for i, sset in enumerate(population.ssets):
        sset.n_agents = int(n_agents[i])
        sset.adoptions = int(adoptions[i])
        sset.mutations = int(mutations[i])
        sset.fitness = float(fitness[i])
    # Rebuild the histogram in its captured insertion order (the fresh one
    # is in SSet order, which is not in general the historical order).
    rebuilt = population.histogram
    ordered = StrategyHistogram()
    for idx in meta["histogram_order"]:
        strategy = strategies[int(idx)]
        key = strategy.key()
        ordered.counts[key] = rebuilt.counts[key]
        ordered.exemplars[key] = strategy
    if len(ordered.counts) != len(rebuilt.counts):
        raise CheckpointError(
            "run checkpoint histogram order is inconsistent with its "
            "strategy matrix"
        )
    population.histogram = ordered
    return population


# -- events and snapshots ------------------------------------------------------

_EVENT_KINDS = ("pc", "mutation")


def capture_events(events: list) -> dict[str, np.ndarray]:
    """Column-encode the accumulated :class:`EventRecord` stream."""
    try:
        kinds = np.array(
            [_EVENT_KINDS.index(e.kind) for e in events], dtype=np.uint8
        )
    except ValueError:  # pragma: no cover - future event kinds
        raise CheckpointError(
            "run checkpoint cannot encode an unknown event kind; known: "
            f"{_EVENT_KINDS}"
        ) from None
    return {
        "events_generation": np.array(
            [e.generation for e in events], dtype=np.int64
        ),
        "events_kind": kinds,
        "events_source": np.array([e.source for e in events], dtype=np.int64),
        "events_target": np.array([e.target for e in events], dtype=np.int64),
        "events_applied": np.array([e.applied for e in events], dtype=np.bool_),
        "events_teacher_fitness": np.array(
            [e.teacher_fitness for e in events], dtype=np.float64
        ),
        "events_learner_fitness": np.array(
            [e.learner_fitness for e in events], dtype=np.float64
        ),
    }


def restore_events(arrays: Mapping[str, np.ndarray]) -> list:
    """Invert :func:`capture_events` (float fitness survives bit-exactly —
    the columns are float64 end to end)."""
    from .evolution import EventRecord  # deferred: evolution imports us

    return [
        EventRecord(
            generation=int(g),
            kind=_EVENT_KINDS[int(k)],
            source=int(s),
            target=int(t),
            applied=bool(a),
            teacher_fitness=float(tf),
            learner_fitness=float(lf),
        )
        for g, k, s, t, a, tf, lf in zip(
            arrays["events_generation"],
            arrays["events_kind"],
            arrays["events_source"],
            arrays["events_target"],
            arrays["events_applied"],
            arrays["events_teacher_fitness"],
            arrays["events_learner_fitness"],
        )
    ]


def capture_snapshots(snapshots: list) -> dict[str, np.ndarray]:
    """Stack the accumulated :class:`Snapshot` records into arrays."""
    arrays = {
        "snap_generation": np.array(
            [s.generation for s in snapshots], dtype=np.int64
        ),
        "snap_dominant_share": np.array(
            [s.dominant_share for s in snapshots], dtype=np.float64
        ),
    }
    if snapshots:
        arrays["snap_matrix"] = np.stack(
            [s.strategy_matrix for s in snapshots]
        )
    return arrays


def restore_snapshots(arrays: Mapping[str, np.ndarray]) -> list:
    """Invert :func:`capture_snapshots`."""
    from .evolution import Snapshot  # deferred: evolution imports us

    generations = arrays["snap_generation"]
    if len(generations) == 0:
        return []
    shares = arrays["snap_dominant_share"]
    matrices = np.asarray(arrays["snap_matrix"])
    return [
        Snapshot(
            generation=int(generations[i]),
            strategy_matrix=np.array(matrices[i]),
            dominant_share=float(shares[i]),
        )
        for i in range(len(generations))
    ]


# -- evaluator state -----------------------------------------------------------


def _encode_ref_ops(
    ops: list[tuple], strategies: list[Strategy], refs: dict[bytes, int]
) -> None:
    """(helper) intern every strategy an op references, in first-use order."""
    for op in ops:
        for strategy in op[1:]:
            if isinstance(strategy, Strategy):
                key = strategy.key()
                if key not in refs:
                    refs[key] = len(strategies)
                    strategies.append(strategy)
            else:
                for s in strategy:
                    key = s.key()
                    if key not in refs:
                        refs[key] = len(strategies)
                        strategies.append(s)


def capture_evaluator(
    evaluator: "FitnessEngine | PayoffCache", population: Population
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Snapshot the fitness evaluator's *rebuildable* state.

    * Deterministic :class:`FitnessEngine` — counters only; the eager
      live-pair matrix re-derives from the population (integer-exact in
      any batch order).
    * Expected-regime :class:`FitnessEngine` — the pool's slot strategies,
      refcounts and both insertion orders (live + retired), the per-SSet
      sid binding, and the ordered fill log (see
      :attr:`FitnessEngine._fill_log`).
    * Legacy :class:`PayoffCache` — the ordered evaluation log with a
      strategy reference table; the sampled-stochastic regime never caches,
      so its log is empty and only the counters travel.
    * Batched :class:`SampledFitnessEngine` — the same ordered log (it only
      ever records the *deterministic* probes its inherited cache served;
      sampled games are never cached, so replaying the log consumes no
      randomness) plus the dedicated sampled stream's raw bit-generator
      state, which lives here rather than in the Nature Agent's stream
      snapshot so legacy checkpoint payloads stay byte-stable.
    """
    if isinstance(evaluator, FitnessEngine):
        meta: dict[str, Any] = {
            "type": "engine",
            "expected": evaluator.expected,
            "hits": evaluator.hits,
            "misses": evaluator.misses,
        }
        if not evaluator.expected:
            return meta, {}
        pool = evaluator.pool
        tracked = pool.tracked
        if evaluator._fill_log is None:
            raise CheckpointError(
                "expected-regime engine has no fill log; checkpointing "
                "must be armed from run start"
            )
        # Non-evicting uncapped pools assign slots 0..tracked-1 in first-
        # intern order and never free one — the property the rebuild relies
        # on (a capped pool is refused by checkpointing_supported).
        tables = np.stack(
            [pool._strategies[k].table for k in range(tracked)]
        ) if tracked else np.zeros((0, pool.n_states), dtype=pool.tables.dtype)
        kinds, sids_col, flat, offsets = _encode_fill_log(evaluator._fill_log)
        meta["live_order"] = [int(s) for s in pool._order]
        meta["retired_order"] = [int(s) for s in pool._retired]
        arrays = {
            "eval_pool_tables": tables,
            "eval_pool_refcounts": pool._refcounts[:tracked].copy(),
            "eval_fill_kind": kinds,
            "eval_fill_sid": sids_col,
            "eval_fill_flat": flat,
            "eval_fill_offsets": offsets,
            "eval_sids": population.sids.copy(),
        }
        return meta, arrays

    # Legacy PayoffCache.
    if evaluator._eval_log is None:
        raise CheckpointError(
            "payoff cache has no evaluation log; checkpointing must be "
            "armed from run start"
        )
    strategies: list[Strategy] = []
    refs: dict[bytes, int] = {}
    _encode_ref_ops(evaluator._eval_log, strategies, refs)
    kinds_list: list[int] = []
    a_refs: list[int] = []
    flat_refs: list[int] = []
    offsets_list: list[int] = [0]
    for op in evaluator._eval_log:
        if op[0] == "pair":
            kinds_list.append(0)
            a_refs.append(refs[op[1].key()])
            flat_refs.append(refs[op[2].key()])
        else:
            kinds_list.append(1)
            a_refs.append(refs[op[1].key()])
            flat_refs.extend(refs[s.key()] for s in op[2])
        offsets_list.append(len(flat_refs))
    if strategies:
        tables = np.stack([s.table for s in strategies])
    else:
        tables = np.zeros((0, 0), dtype=np.uint8)
    meta = {
        "type": "cache",
        "hits": evaluator.hits,
        "misses": evaluator.misses,
    }
    if isinstance(evaluator, SampledFitnessEngine):
        # Only deterministic probes ever reach the log (the batched games
        # are redrawn, not cached), so the logged strategies are all pure
        # and the replay consumes no randomness — the stream position
        # snapshot alone carries the sampled state.
        meta["type"] = "sampled"
        meta["rng"] = generator_state(evaluator.rng)
        meta["games_played"] = evaluator.games_played
        meta["batches"] = evaluator.batches
    arrays = {
        "eval_tables": tables,
        "eval_op_kind": np.array(kinds_list, dtype=np.uint8),
        "eval_op_a": np.array(a_refs, dtype=np.int64),
        "eval_op_flat": np.array(flat_refs, dtype=np.int64),
        "eval_op_offsets": np.array(offsets_list, dtype=np.int64),
    }
    return meta, arrays


def _encode_fill_log(
    ops: list[tuple],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    kinds = np.zeros(len(ops), dtype=np.uint8)
    sids = np.zeros(len(ops), dtype=np.int64)
    flat: list[int] = []
    offsets = [0]
    for i, op in enumerate(ops):
        if op[0] == "row":
            kinds[i] = 0
            sids[i] = op[1]
            flat.extend(op[2])
        else:
            kinds[i] = 1
            sids[i] = op[1]
        offsets.append(len(flat))
    return (
        kinds,
        sids,
        np.array(flat, dtype=np.int64),
        np.array(offsets, dtype=np.int64),
    )


def restore_evaluator(
    config: EvolutionConfig,
    meta: Mapping[str, Any],
    arrays: Mapping[str, np.ndarray],
    population: Population,
    games_rng: np.random.Generator | None,
) -> "FitnessEngine | PayoffCache":
    """Rebuild the evaluator captured by :func:`capture_evaluator` and bind
    it to ``population`` (the restored population of the same snapshot).

    ``games_rng`` is the Nature Agent's (already rewound) games stream,
    handed to a sampled-regime cache exactly like
    :func:`~repro.core.evolution._make_cache` does.
    """
    if meta["type"] == "engine":
        engine = FitnessEngine.from_config(config)
        if engine is None:
            raise CheckpointError(
                "run checkpoint was written by a FitnessEngine run but the "
                "current configuration resolves to the legacy cache"
            )
        if bool(meta["expected"]) != engine.expected:
            raise CheckpointError(
                "run checkpoint evaluator regime does not match the "
                "current configuration"
            )
        if not engine.expected:
            # Eager deterministic rebuild: intern in SSet order and refill
            # every live pair (float-exact regardless of batch shape).
            population.bind_engine(engine)
            engine.hits = int(meta["hits"])
            engine.misses = int(meta["misses"])
            return engine
        tables = np.asarray(arrays["eval_pool_tables"])
        for row in tables:
            engine.intern(Strategy._trusted(np.array(row), config.memory_steps))
        pool = engine.pool
        tracked = len(tables)
        pool._refcounts[:tracked] = arrays["eval_pool_refcounts"]
        pool._order = dict.fromkeys(int(s) for s in meta["live_order"])
        pool._order_array = None
        pool._retired = dict.fromkeys(int(s) for s in meta["retired_order"])
        engine.enable_fill_log()
        kinds = arrays["eval_fill_kind"]
        sids = arrays["eval_fill_sid"]
        flat = arrays["eval_fill_flat"]
        offsets = arrays["eval_fill_offsets"]
        for i in range(len(kinds)):
            if int(kinds[i]) == 0:
                missing = [
                    int(j) for j in flat[int(offsets[i]):int(offsets[i + 1])]
                ]
                engine._ensure_row(int(sids[i]), missing)
            else:
                engine._self_payoff(int(sids[i]))
        engine.hits = int(meta["hits"])
        engine.misses = int(meta["misses"])
        # Bind without re-interning: the pool already carries the exact
        # refcounts; the captured per-SSet sid array is the binding.
        population._engine = engine
        population._sids = np.asarray(arrays["eval_sids"], dtype=np.int64).copy()
        return engine

    # Legacy PayoffCache — or its batched sampled subclass.
    population.bind_engine(None)
    if meta["type"] == "sampled":
        cache = SampledFitnessEngine.from_config(config, make_rng(0))
        if cache is None:
            raise CheckpointError(
                "run checkpoint was written by a sampled_batched run but "
                "the current configuration resolves to a different "
                "evaluator"
            )
    else:
        cache = PayoffCache(
            rounds=config.rounds,
            payoff=config.payoff,
            noise=config.noise,
            rng=games_rng if config.is_stochastic else None,
            expected=config.expected_fitness,
        )
    cache.enable_eval_log()
    tables = np.asarray(arrays["eval_tables"])
    strategies = [
        Strategy._trusted(np.array(row), config.memory_steps) for row in tables
    ]
    kinds = arrays["eval_op_kind"]
    a_refs = arrays["eval_op_a"]
    flat = arrays["eval_op_flat"]
    offsets = arrays["eval_op_offsets"]
    for i in range(len(kinds)):
        span = flat[int(offsets[i]):int(offsets[i + 1])]
        focal = strategies[int(a_refs[i])]
        if int(kinds[i]) == 0:
            cache.pair_payoffs(focal, strategies[int(span[0])])
        else:
            cache.payoffs_to_many(focal, [strategies[int(j)] for j in span])
    cache.hits = int(meta["hits"])
    cache.misses = int(meta["misses"])
    if meta["type"] == "sampled":
        # Replay above consumed no randomness (deterministic probes only);
        # pinning the captured stream position makes the resumed run's
        # batched draws bit-identical to the uninterrupted one.
        restore_generator(cache.rng, meta["rng"])
        cache.games_played = int(meta["games_played"])
        cache.batches = int(meta["batches"])
    return cache
