"""The Fermi pairwise-comparison rule (paper Eq. 1).

    p = 1 / (1 + exp(-beta * (pi_T - pi_L)))

``pi_T`` / ``pi_L`` are the teacher's and learner's fitness and ``beta`` the
intensity of selection: beta -> 0 gives a coin flip, beta -> infinity always
adopts the fitter strategy (paper Section IV.B, following Traulsen et al.,
ref. [13]).
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = ["fermi_probability", "PAPER_BETA"]

#: Default selection intensity.  The paper does not print its beta; 0.1 is
#: the conventional intermediate-selection value in the cited literature
#: (Traulsen, Pacheco & Nowak 2007) and is the package default.
PAPER_BETA: float = 0.1


def fermi_probability(
    teacher_fitness: float, learner_fitness: float, beta: float
) -> float:
    """Adoption probability of the teacher's strategy by the learner.

    Overflow-safe for any finite ``beta`` and fitness gap.
    """
    if beta < 0:
        raise ConfigurationError(f"beta must be non-negative, got {beta}")
    x = beta * (teacher_fitness - learner_fitness)
    # 1/(1+exp(-x)) without overflow for very negative x.
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    ex = math.exp(x)
    return ex / (1.0 + ex)
