"""Configuration of the evolutionary simulation (paper Section V.C).

Defaults follow the paper's production parameters: payoff [3,0,4,1],
200 rounds per generation, pairwise-comparison rate 0.1, mutation rate
mu = 0.05, pure strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from ..errors import ConfigurationError
from ..structure import InteractionModel, build_structure, validate_structure
from ..xp import KNOWN_BACKENDS
from .fermi import PAPER_BETA
from .payoff import PAPER_PAYOFF, PayoffMatrix

__all__ = ["EvolutionConfig", "PAPER_PC_RATE", "PAPER_MUTATION_RATE"]

#: Paper Section V.C: "Strategy evolution across the population was
#: controlled by a pairwise comparison rate of 10%".
PAPER_PC_RATE: float = 0.10
#: Paper Section V.C: "Random mutation ... was set to mu = 0.05".
PAPER_MUTATION_RATE: float = 0.05


@dataclass(frozen=True)
class EvolutionConfig:
    """Parameters of one evolutionary-game-dynamics run.

    Parameters
    ----------
    memory_steps:
        ``n`` of the memory-*n* strategy model (paper: 1..6).
    n_ssets:
        Number of Strategy Sets in the population.
    generations:
        Number of generations to simulate.
    agents_per_sset:
        Agents per SSet.  Fitness is independent of this (each SSet's agents
        collectively play one game per opponent strategy); it matters for
        decomposition granularity in the parallel framework.
    rounds:
        IPD rounds per generation (paper: 200).
    pc_rate:
        Per-generation probability of a pairwise-comparison learning event.
    mutation_rate:
        Per-generation probability that a random SSet receives a brand-new
        random strategy.
    beta:
        Fermi selection intensity (Eq. 1).
    payoff:
        The 2x2 game payoffs.
    noise:
        Trembling-hand execution error probability per move.
    mixed_strategies:
        When true, initial and mutant strategies are mixed (per-state
        defection probabilities) rather than pure.
    include_self_play:
        Include the game against the SSet's own strategy slot in fitness.
    allow_downhill_learning:
        When true, the Fermi rule alone decides adoption (standard in the
        cited literature).  The paper's listing additionally requires the
        teacher to be strictly fitter; ``False`` (default) keeps that gate.
    expected_fitness:
        Evaluate fitness as the exact *expected* game payoff (Markov
        engine) instead of one sampled game.  This is the many-agents-per-
        SSet limit (an SSet's fitness sums its agents' games) and makes
        long noisy runs (the Fig. 2 validation) tractable; it also keeps
        noisy dynamics deterministic given the seed.
    structure:
        Population-structure spec (:mod:`repro.structure`):
        ``"well-mixed"`` (the paper's population, default), ``"complete"``,
        ``"ring:k=4"``, ``"grid"``/``"grid:rows=8,cols=8"``, or
        ``"regular:d=4,seed=7"`` — or a hand-constructed, already-bound
        :class:`~repro.structure.InteractionModel`.  Structured populations
        evaluate fitness over graph neighborhoods and pick PC teachers from
        the learner's neighbors.
    seed:
        Master seed for all random streams.
    record_every:
        Record a population snapshot every this many generations
        (0 = record only the initial and final states).
    engine:
        Use the interned-strategy :class:`~repro.core.engine.FitnessEngine`
        (dense payoff-matrix fitness) when the configuration supports it
        (default).  The engine follows the bit-identical trajectory of the
        legacy :class:`~repro.core.payoff_cache.PayoffCache` path; drivers
        fall back to the legacy cache automatically for regimes the dense
        kernel cannot serve (sampled-stochastic fitness, non-integer
        payoff matrices).  ``False`` forces the legacy reference path.
    record_events:
        Keep per-event :class:`~repro.core.evolution.EventRecord` entries in
        ``EvolutionResult.events`` (default).  Long benchmark/experiment
        runs pass ``False`` so 10^7-generation runs stop accumulating
        millions of record objects; the scalar counters
        (``n_pc_events``/``n_adoptions``/``n_mutations``) are kept either
        way and the trajectory is unaffected.
    engine_pool_cap:
        Bound on the number of distinct strategies the expected-regime
        :class:`~repro.core.engine.StrategyPool` tracks (0 = unbounded, the
        default).  The expected regime *retires* dead strategies instead of
        recycling their slots so reappearances reuse previously evaluated
        payoffs bit-identically; very long deep-memory runs therefore grow
        without bound.  With a cap, once live + retired strategies reach the
        cap the oldest retired slot is recycled (its evaluated payoffs are
        dropped).  Runs whose distinct-strategy count never exceeds the cap
        are bit-identical to uncapped runs; runs that do exceed it may
        re-evaluate reappearing pairs from a different perspective and
        drift by ulps — which is why the cap is opt-in.  Deterministic-regime
        pools recycle at zero references already and ignore the cap —
        except under a blocked paymat (``paymat_block``), where the cap
        bounds the number of *resident payoff blocks* instead (LRU
        eviction; deterministic refills are bit-exact, so capped runs stay
        on the uncapped trajectory).
    paymat_block:
        0 (default) keeps the payoff matrix as one dense ``K x K``
        allocation.  A power of two >= 4 shards it into
        ``paymat_block x paymat_block`` blocks allocated on first write
        (:class:`~repro.core.paymat.BlockedPairStore`), so very large
        ``R x n_ssets`` ensembles stop paying O(K²) memory up front.
        Deterministic-regime only (the expected regime's matrix must never
        drop entries); trajectories are bit-identical to the dense layout.
    array_backend:
        Array namespace for the hot-path payoff storage and fitness
        gathers: ``"numpy"`` (default), ``"cupy"``, or ``"jax"``
        (:mod:`repro.xp`).  A requested accelerator stack that is not
        importable falls back to NumPy, recorded in the backend report.
        RNG decoding stays on host either way, so every lane remains
        bit-identical to its same-seed serial ``event`` run.
    sampled_batched:
        Opt in to the batched sampled-stochastic fitness engine
        (:class:`~repro.core.engine.SampledFitnessEngine`): every sampled
        game a pairwise-comparison event needs is evaluated as one
        vectorised program over :func:`repro.core.vectorgame.play_pairs`,
        drawing game noise from a dedicated ``("nature", "sampled")``
        seed stream.  Trajectories are reproducible per seed and every
        ensemble lane is bit-identical to its same-seed serial run, but
        the mode is deliberately *not* bit-identical to the scalar legacy
        sampled path (the draws come from a different stream in a
        different order) — equivalence to legacy is statistical, pinned
        by distribution tests.  Requires a sampled-stochastic
        configuration (``is_stochastic``); it also unlocks the
        ``ensemble`` backend for noisy workloads.
    checkpoint_every:
        Emit a mid-run run-state checkpoint every this many generations
        (0 = never, the default).  Checkpoints capture the full run state
        (population, RNG bit-generator positions, evaluator fill history,
        event log cursor) so an interrupted run resumes **bit-identically**
        — same events, same trajectory, same final population as the
        uninterrupted same-seed run.  Only takes effect when a checkpoint
        sink is installed (:func:`repro.core.runstate.checkpoint_scope`,
        the CLI ``--checkpoint-every``/``--checkpoint-dir`` flags, or
        ``repro serve --checkpoint-dir``); the cadence does not perturb
        the science trajectory.
    """

    memory_steps: int = 1
    n_ssets: int = 64
    generations: int = 10_000
    agents_per_sset: int = 4
    rounds: int = 200
    pc_rate: float = PAPER_PC_RATE
    mutation_rate: float = PAPER_MUTATION_RATE
    beta: float = PAPER_BETA
    payoff: PayoffMatrix = field(default_factory=lambda: PAPER_PAYOFF)
    noise: float = 0.0
    mixed_strategies: bool = False
    include_self_play: bool = False
    allow_downhill_learning: bool = False
    expected_fitness: bool = False
    structure: "str | InteractionModel" = "well-mixed"
    seed: int = 2013
    record_every: int = 0
    engine: bool = True
    record_events: bool = True
    engine_pool_cap: int = 0
    paymat_block: int = 0
    array_backend: str = "numpy"
    sampled_batched: bool = False
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if self.memory_steps < 1:
            raise ConfigurationError(
                f"memory_steps must be >= 1, got {self.memory_steps}"
            )
        if self.n_ssets < 2:
            raise ConfigurationError(
                f"need at least 2 SSets for pairwise comparison, got {self.n_ssets}"
            )
        if self.generations < 0:
            raise ConfigurationError(
                f"generations must be >= 0, got {self.generations}"
            )
        if self.agents_per_sset < 1:
            raise ConfigurationError(
                f"agents_per_sset must be >= 1, got {self.agents_per_sset}"
            )
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        for name, value in (
            ("pc_rate", self.pc_rate),
            ("mutation_rate", self.mutation_rate),
            ("noise", self.noise),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
        if self.beta < 0:
            raise ConfigurationError(f"beta must be >= 0, got {self.beta}")
        if self.record_every < 0:
            raise ConfigurationError(
                f"record_every must be >= 0, got {self.record_every}"
            )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0 (0 = never), got "
                f"{self.checkpoint_every}"
            )
        if self.engine_pool_cap < 0:
            raise ConfigurationError(
                f"engine_pool_cap must be >= 0 (0 = unbounded), got "
                f"{self.engine_pool_cap}"
            )
        if self.paymat_block < 0 or (
            self.paymat_block
            and (
                self.paymat_block < 4
                or self.paymat_block & (self.paymat_block - 1)
            )
        ):
            raise ConfigurationError(
                f"paymat_block must be 0 (dense) or a power of two >= 4, "
                f"got {self.paymat_block}"
            )
        if self.array_backend not in KNOWN_BACKENDS:
            raise ConfigurationError(
                f"unknown array_backend {self.array_backend!r}; known: "
                f"{', '.join(KNOWN_BACKENDS)}"
            )
        if self.sampled_batched and not self.is_stochastic:
            raise ConfigurationError(
                "sampled_batched batches sampled-stochastic games and needs "
                "a sampled regime (noise > 0 or mixed_strategies, without "
                "expected_fitness); this configuration evaluates fitness "
                "deterministically, so there is nothing to sample"
            )
        # Parse + bind eagerly so a bad spec (or one incompatible with
        # n_ssets) fails at construction, not mid-run.
        validate_structure(self.structure, self.n_ssets)

    @property
    def is_well_mixed(self) -> bool:
        """Whether the population is the paper's well-mixed one.

        Goes through the bound model (cached) rather than spec parsing, so
        it also works when ``structure`` is a hand-constructed
        :class:`~repro.structure.InteractionModel` instance.
        """
        return build_structure(self.structure, self.n_ssets).is_well_mixed

    def canonical_structure(self) -> str:
        """The bound structure's canonical spec (checkpoints persist this)."""
        return build_structure(self.structure, self.n_ssets).spec()

    def summary(self) -> str:
        """One-line human description of the science configuration."""
        parts = [
            f"memory={self.memory_steps}",
            f"ssets={self.n_ssets}",
            f"generations={self.generations:,}",
            f"structure={self.canonical_structure()}",
            f"seed={self.seed}",
        ]
        if self.noise > 0.0:
            parts.append(f"noise={self.noise}")
        if self.mixed_strategies:
            parts.append("mixed")
        if self.expected_fitness:
            parts.append("expected-fitness")
        if self.sampled_batched:
            parts.append("sampled-batched")
        if not self.engine:
            parts.append("legacy-cache")
        if self.engine_pool_cap:
            parts.append(f"pool-cap={self.engine_pool_cap}")
        if self.paymat_block:
            parts.append(f"paymat-block={self.paymat_block}")
        if self.array_backend != "numpy":
            parts.append(f"array-backend={self.array_backend}")
        if self.checkpoint_every:
            parts.append(f"checkpoint-every={self.checkpoint_every}")
        return " ".join(parts)

    @property
    def population_size(self) -> int:
        """Total number of agents."""
        return self.n_ssets * self.agents_per_sset

    @property
    def is_stochastic(self) -> bool:
        """True when fitness evaluation consumes random draws.

        Noisy/mixed games sample unless ``expected_fitness`` replaces the
        samples with exact Markov expectations.
        """
        if self.expected_fitness:
            return False
        return self.noise > 0.0 or self.mixed_strategies

    def with_updates(self, **changes: Any) -> "EvolutionConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # -- dict / JSON round-trip -----------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict of every field (``from_dict`` inverts it).

        The payoff matrix becomes a plain dict of its four values (plus
        ``require_dilemma``) and the structure its canonical spec string —
        including hand-constructed :class:`~repro.structure.InteractionModel`
        instances, which serialise as their ``spec()``.  The dict is the
        canonical wire form used by job specs
        (:mod:`repro.service.jobspec`) and result artifacts.
        """
        data: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "payoff":
                value = {
                    "reward": value.reward,
                    "sucker": value.sucker,
                    "temptation": value.temptation,
                    "punishment": value.punishment,
                    "require_dilemma": value.require_dilemma,
                }
            elif f.name == "structure":
                value = self.canonical_structure()
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvolutionConfig":
        """Build a config from :meth:`to_dict` output (strict validation).

        Unknown keys and wrong-typed values are rejected with a
        :class:`~repro.errors.ConfigurationError` that names the offending
        field; omitted fields take their defaults, so hand-written partial
        dicts (``{"memory_steps": 2, "seed": 7}``) work too.  ``payoff``
        accepts the :meth:`to_dict` mapping or a 4-item ``[R, S, T, P]``
        list; ``structure`` must be a spec string (instances do not
        round-trip through JSON).
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"EvolutionConfig.from_dict needs a mapping, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown EvolutionConfig field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        kwargs: dict[str, Any] = {}
        for name, value in data.items():
            if name in _INT_FIELDS:
                kwargs[name] = _coerce_int(name, value)
            elif name in _FLOAT_FIELDS:
                kwargs[name] = _coerce_float(name, value)
            elif name in _BOOL_FIELDS:
                kwargs[name] = _coerce_bool(name, value)
            elif name in _STR_FIELDS:
                kwargs[name] = _coerce_str(name, value)
            elif name == "payoff":
                kwargs[name] = _coerce_payoff(value)
            elif name == "structure":
                if not isinstance(value, str):
                    raise ConfigurationError(
                        f"field 'structure': expected a spec string (e.g. "
                        f"'well-mixed', 'ring:k=4'), got "
                        f"{type(value).__name__}; InteractionModel "
                        "instances do not round-trip through dicts"
                    )
                kwargs[name] = value
        # Range/consistency validation (values in [0,1], structure spec
        # parse, ...) happens in __post_init__ as usual and already names
        # the offending field in its messages.
        return cls(**kwargs)


#: Field classification for :meth:`EvolutionConfig.from_dict` coercion.
_INT_FIELDS = frozenset({
    "memory_steps", "n_ssets", "generations", "agents_per_sset", "rounds",
    "seed", "record_every", "engine_pool_cap", "paymat_block",
    "checkpoint_every",
})
_FLOAT_FIELDS = frozenset({"pc_rate", "mutation_rate", "beta", "noise"})
_BOOL_FIELDS = frozenset({
    "mixed_strategies", "include_self_play", "allow_downhill_learning",
    "expected_fitness", "engine", "record_events", "sampled_batched",
})
_STR_FIELDS = frozenset({"array_backend"})
# A future EvolutionConfig field that is not classified above (and is not
# one of the two structured fields) would silently fall out of the dict
# round-trip; fail at import instead.
_UNCLASSIFIED = (
    {f.name for f in fields(EvolutionConfig)}
    - _INT_FIELDS - _FLOAT_FIELDS - _BOOL_FIELDS - _STR_FIELDS
    - {"payoff", "structure"}
)
if _UNCLASSIFIED:  # pragma: no cover - tripwire for future fields
    raise TypeError(
        f"EvolutionConfig fields missing from_dict classification: "
        f"{sorted(_UNCLASSIFIED)}"
    )


def _coerce_int(name: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"field {name!r}: expected an integer, got {value!r}"
        )
    return value


def _coerce_float(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"field {name!r}: expected a number, got {value!r}"
        )
    return float(value)


def _coerce_str(name: str, value: Any) -> str:
    if not isinstance(value, str):
        raise ConfigurationError(
            f"field {name!r}: expected a string, got {value!r}"
        )
    return value


def _coerce_bool(name: str, value: Any) -> bool:
    if not isinstance(value, bool):
        raise ConfigurationError(
            f"field {name!r}: expected a boolean, got {value!r}"
        )
    return value


def _coerce_payoff(value: Any) -> PayoffMatrix:
    if isinstance(value, PayoffMatrix):
        return value
    if isinstance(value, (list, tuple)):
        if len(value) != 4:
            raise ConfigurationError(
                f"field 'payoff': a payoff list needs exactly 4 values "
                f"[R, S, T, P], got {len(value)}"
            )
        r, s, t, p = (
            _coerce_float(f"payoff[{i}]", v) for i, v in enumerate(value)
        )
        return PayoffMatrix(reward=r, sucker=s, temptation=t, punishment=p)
    if isinstance(value, Mapping):
        allowed = {
            "reward", "sucker", "temptation", "punishment", "require_dilemma"
        }
        unknown = sorted(set(value) - allowed)
        if unknown:
            raise ConfigurationError(
                f"field 'payoff': unknown key(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        kwargs: dict[str, Any] = {}
        for key, v in value.items():
            if key == "require_dilemma":
                kwargs[key] = _coerce_bool(f"payoff.{key}", v)
            else:
                kwargs[key] = _coerce_float(f"payoff.{key}", v)
        return PayoffMatrix(**kwargs)
    raise ConfigurationError(
        f"field 'payoff': expected a mapping, 4-item list, or "
        f"PayoffMatrix, got {type(value).__name__}"
    )
