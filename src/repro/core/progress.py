"""In-run progress hooks: observe a run's trajectory while it executes.

Long runs were previously opaque until they returned.  The sweep service
(:mod:`repro.service`) needs a per-job generation counter and partial
metrics *while* a job runs, so the drivers emit lightweight
:class:`ProgressTick` records at every event generation — the same
granularity as the :class:`~repro.core.evolution.EventRecord` stream the
recorder persists, so tick counts match event-generation counts exactly
across backends (pinned by the ensemble-hook tests).

The hook is installed per thread with :func:`progress_scope` rather than
threaded through every driver signature: backends, ``run_sweep``, and the
ensemble driver all stay call-compatible, and a service worker thread
observes only its own job.  Emission costs one thread-local read at driver
start plus one callback per event generation — nothing on the no-listener
path, and never inside the vectorised batch scans.

Usage::

    from repro.core.progress import progress_scope

    def watch(tick):
        print(f"run {tick.run_index}: generation {tick.generation}")

    with progress_scope(watch):
        run_sweep(configs, backend="ensemble")

Scopes nest; the innermost callback wins (the ensemble driver uses this to
remap lane-local run indices to sweep-level config indices).  Callbacks
must not raise — an exception would abort the run mid-trajectory.

Cooperative cancellation rides the same cadence: a :class:`CancelToken`
installed with :func:`cancel_scope` is checked by every driver at each
event generation — the granularity progress ticks already use — so a
cancelled or timed-out run aborts within one event generation without any
polling thread reaching into driver internals.  The sweep service uses
this for job timeouts, ``DELETE /jobs/<id>``, and drain deadlines; the
check costs one thread-local read per run plus one comparison per event
generation, and nothing at all when no token is installed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Iterator

from ..errors import JobCancelledError, JobTimeoutError

__all__ = [
    "ProgressTick",
    "progress_scope",
    "progress_callback",
    "CancelToken",
    "cancel_scope",
    "cancel_token",
]


@dataclass(frozen=True)
class ProgressTick:
    """Partial metrics of one run at one event generation.

    ``run_index`` identifies the run within the batch that is executing:
    ``0`` for a single :class:`~repro.api.Simulation` run, the config index
    for a lane-batched ensemble (remapped from lane-local to sweep-level by
    :func:`repro.ensemble.run_ensemble_detailed`).
    """

    run_index: int
    generation: int
    #: Total generations the run is configured for (progress denominator).
    generations: int
    n_pc_events: int
    n_adoptions: int
    n_mutations: int

    @property
    def fraction(self) -> float:
        """Completed fraction of the run (0.0 when generations == 0)."""
        if self.generations <= 0:
            return 1.0
        return min(1.0, self.generation / self.generations)

    def with_run_index(self, run_index: int) -> "ProgressTick":
        return replace(self, run_index=run_index)


#: Per-thread listener stack (a list so scopes nest).
_LOCAL = threading.local()

ProgressCallback = Callable[[ProgressTick], None]


def progress_callback() -> ProgressCallback | None:
    """The innermost active callback of this thread, or ``None``.

    Drivers read this once at run start — installing a scope mid-run has no
    effect on runs already executing, by design.
    """
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        return None
    return stack[-1]


@contextmanager
def progress_scope(callback: ProgressCallback) -> Iterator[ProgressCallback]:
    """Install ``callback`` as this thread's progress listener for the block."""
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    stack.append(callback)
    try:
        yield callback
    finally:
        stack.pop()


# -- cooperative cancellation --------------------------------------------------


class CancelToken:
    """A cancel request and/or wall-clock deadline a run checks cooperatively.

    Thread-safe: any thread may :meth:`cancel`; the executing thread calls
    :meth:`check` at event-generation cadence and the run aborts with
    :class:`~repro.errors.JobCancelledError` (or
    :class:`~repro.errors.JobTimeoutError` past the deadline).  ``deadline``
    is a :func:`time.monotonic` instant; ``None`` means no timeout.
    """

    def __init__(self, deadline: float | None = None) -> None:
        self.deadline = deadline
        self._cancelled = threading.Event()
        self.reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        self.reason = reason or "cancelled"
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def wait(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds; True if cancelled meanwhile
        (retry backoffs sleep through this so cancels cut them short)."""
        return self._cancelled.wait(timeout)

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def check(self) -> None:
        """Raise if this token was cancelled or its deadline passed."""
        if self._cancelled.is_set():
            raise JobCancelledError(self.reason)
        if self.expired():
            raise JobTimeoutError(
                "run exceeded its wall-clock timeout and was cancelled "
                "cooperatively"
            )


#: Per-thread token stack, exactly like the progress-listener stack.
_CANCEL_LOCAL = threading.local()


def cancel_token() -> CancelToken | None:
    """The innermost active token of this thread, or ``None``.

    Drivers read this once at run start — like :func:`progress_callback`,
    installing a scope mid-run has no effect on runs already executing.
    """
    stack = getattr(_CANCEL_LOCAL, "stack", None)
    if not stack:
        return None
    return stack[-1]


@contextmanager
def cancel_scope(token: CancelToken) -> Iterator[CancelToken]:
    """Install ``token`` as this thread's cancellation token for the block."""
    stack = getattr(_CANCEL_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _CANCEL_LOCAL.stack = stack
    stack.append(token)
    try:
        yield token
    finally:
        stack.pop()
