"""Traditional baseline: one agent per strategy, serial game loop.

The paper (Section IV.A) describes the pre-SSet state of the art:

    "Traditionally, the strategies being represented in a population would
    be assigned to an individual agent.  This agent would simulate the
    interaction with all other strategies in the population in a serial
    manner and then handle the mutation and selections steps at the end of
    each round."

This module implements that algorithm as the comparison baseline: no
strategy-set grouping, no payoff cache, no cycle detection — every game is
replayed round by round with the scalar engine, every generation.  It is
deliberately naive; the ablation benchmark
(``benchmarks/test_ablation_sset_vs_baseline.py``) measures how much the
paper's SSet abstraction + our caching buy.

For identical seeds and configurations the baseline follows the same
trajectory as :func:`repro.core.evolution.run_serial` (same Nature Agent
decision streams, same fitness values for deterministic games) — the test
suite pins this, which is what makes the speed comparison apples-to-apples.
"""

from __future__ import annotations

import time

from ..errors import ConfigurationError
from ..rng import SeedSequenceTree
from .config import EvolutionConfig
from .evolution import EventRecord, EvolutionResult, _maybe_snapshot
from .game import play_game
from .nature import NatureAgent
from .population import Population

__all__ = ["run_baseline"]


def _agent_fitness(
    population: Population, agent_id: int, config: EvolutionConfig
) -> float:
    """Serial all-opponents fitness of one agent, replaying every game."""
    me = population[agent_id].strategy
    total = 0.0
    for other in population.ssets:
        if other.sset_id == agent_id and not config.include_self_play:
            continue
        result = play_game(me, other.strategy, config.rounds, config.payoff)
        total += result.payoff_a
    return total


def run_baseline(
    config: EvolutionConfig, population: Population | None = None
) -> EvolutionResult:
    """Run the traditional one-agent-per-strategy serial algorithm.

    Restricted to deterministic configurations (pure strategies, no noise);
    the point of the baseline is cost structure, not stochastic modelling.
    """
    if config.is_stochastic:
        raise NotImplementedError(
            "the traditional baseline is implemented for deterministic "
            "configurations only"
        )
    if not config.is_well_mixed:
        raise ConfigurationError(
            "the traditional baseline models the pre-SSet *well-mixed* "
            f"algorithm only (got structure={config.structure!r}); use the "
            "serial or event driver for structured populations"
        )
    started = time.perf_counter()
    tree = SeedSequenceTree(config.seed)
    nature = NatureAgent(config, tree)
    if population is None:
        population = Population.random(config, tree.generator("init"))
    result = EvolutionResult(config=config, population=population)
    _maybe_snapshot(result, population, 0, force=True)

    for generation in range(config.generations):
        events = nature.generation_events()
        if events.pc:
            decision = nature.pc_selection(len(population))
            fit_t = _agent_fitness(population, decision.teacher, config)
            fit_l = _agent_fitness(population, decision.learner, config)
            adopted = nature.decide_learning(decision, fit_t, fit_l)
            if adopted:
                population.adopt(
                    decision.learner, population[decision.teacher].strategy
                )
            result.n_pc_events += 1
            result.n_adoptions += int(adopted)
            if config.record_events:
                result.events.append(
                    EventRecord(
                        generation=generation,
                        kind="pc",
                        source=decision.teacher,
                        target=decision.learner,
                        applied=adopted,
                        teacher_fitness=fit_t,
                        learner_fitness=fit_l,
                    )
                )
        if events.mutation:
            decision = nature.mutation_selection(len(population))
            population.mutate(decision.target, decision.strategy)
            result.n_mutations += 1
            if config.record_events:
                result.events.append(
                    EventRecord(
                        generation=generation,
                        kind="mutation",
                        source=decision.target,
                        target=decision.target,
                        applied=True,
                    )
                )
        if config.record_every > 0 and generation > 0:
            _maybe_snapshot(result, population, generation, force=False)

    result.generations_run = config.generations
    _maybe_snapshot(result, population, config.generations, force=True)
    result.wallclock_seconds = time.perf_counter() - started
    return result
