"""Exact evaluation of deterministic games via cycle detection.

A game between two *pure* strategies with no noise is fully determined by
the joint history, and the joint history is captured by a single player's
view (the opponent's view is its bit-swapped mirror).  The view trajectory
therefore lives in a space of ``4**n`` states and must enter a cycle within
at most ``4**n`` rounds.  This lets us evaluate a 200-round — or a
200-million-round — game in O(transient + cycle) time, exactly.

This is the engine behind :class:`repro.core.payoff_cache.PayoffCache`,
which in turn is what makes the 10^7-generation validation run (paper
Figure 2) tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, StrategyError
from .payoff import PAPER_PAYOFF, PayoffMatrix
from .states import advance_view
from .strategy import Strategy

__all__ = ["CycleStructure", "find_cycle", "exact_payoffs"]


@dataclass(frozen=True)
class CycleStructure:
    """Transient + cycle decomposition of a deterministic game.

    ``per_round`` arrays hold, for every simulated round until the cycle
    closes, the payoffs to each player and the number of cooperative moves.
    """

    transient_length: int
    cycle_length: int
    per_round_pay_a: np.ndarray
    per_round_pay_b: np.ndarray
    per_round_cooperations: np.ndarray

    @property
    def rounds_simulated(self) -> int:
        """Rounds actually simulated (= transient + one full cycle)."""
        return self.transient_length + self.cycle_length


def _check_pure(strategy_a: Strategy, strategy_b: Strategy) -> int:
    if not (strategy_a.is_pure and strategy_b.is_pure):
        raise StrategyError("cycle detection requires pure strategies")
    if strategy_a.memory_steps != strategy_b.memory_steps:
        raise StrategyError(
            "strategies must share memory_steps, got "
            f"{strategy_a.memory_steps} vs {strategy_b.memory_steps}"
        )
    return strategy_a.memory_steps


def find_cycle(
    strategy_a: Strategy,
    strategy_b: Strategy,
    payoff: PayoffMatrix = PAPER_PAYOFF,
) -> CycleStructure:
    """Simulate until the joint state repeats; return the cycle structure."""
    n = _check_pure(strategy_a, strategy_b)
    table_a = strategy_a.table
    table_b = strategy_b.table
    vec = payoff.vector

    seen: dict[tuple[int, int], int] = {}
    pay_a: list[float] = []
    pay_b: list[float] = []
    coops: list[int] = []
    view_a = 0
    view_b = 0
    round_idx = 0
    while (view_a, view_b) not in seen:
        seen[(view_a, view_b)] = round_idx
        move_a = int(table_a[view_a])
        move_b = int(table_b[view_b])
        pay_a.append(float(vec[2 * move_a + move_b]))
        pay_b.append(float(vec[2 * move_b + move_a]))
        coops.append((move_a == 0) + (move_b == 0))
        view_a = advance_view(view_a, move_a, move_b, n)
        view_b = advance_view(view_b, move_b, move_a, n)
        round_idx += 1

    start = seen[(view_a, view_b)]
    return CycleStructure(
        transient_length=start,
        cycle_length=round_idx - start,
        per_round_pay_a=np.asarray(pay_a),
        per_round_pay_b=np.asarray(pay_b),
        per_round_cooperations=np.asarray(coops, dtype=np.int64),
    )


def exact_payoffs(
    strategy_a: Strategy,
    strategy_b: Strategy,
    rounds: int,
    payoff: PayoffMatrix = PAPER_PAYOFF,
) -> tuple[float, float, float]:
    """Exact ``(payoff_a, payoff_b, cooperation_rate)`` over ``rounds`` rounds.

    Equivalent to :func:`repro.core.game.play_game` for pure noiseless
    strategies, but with cost independent of ``rounds`` once the cycle is
    known (O(4**n) worst case instead of O(rounds)).
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    cyc = find_cycle(strategy_a, strategy_b, payoff)
    t, c = cyc.transient_length, cyc.cycle_length

    def total(series: np.ndarray) -> float:
        if rounds <= cyc.rounds_simulated:
            return float(series[:rounds].sum())
        head = float(series[:t].sum())
        cycle = series[t : t + c]
        full_cycles, rem = divmod(rounds - t, c)
        return head + full_cycles * float(cycle.sum()) + float(cycle[:rem].sum())

    pay_a = total(cyc.per_round_pay_a)
    pay_b = total(cyc.per_round_pay_b)
    coop = total(cyc.per_round_cooperations.astype(np.float64))
    return pay_a, pay_b, coop / (2 * rounds)
